#!/usr/bin/env python3
"""Shared validator for the committed/fresh BENCH_*.json datapoints.

CI previously carried three near-identical inline Python validators (one
per smoke job); this script is the single source of truth they now call:

    python3 scripts/check_bench.py <kind> <file> [<file> ...]

Kinds: train, serve, online, router. Each check enforces the report
schema plus the perf/correctness floors the corresponding bench gates on
(nonzero throughput, zero failed requests, bit-identity flags, delta
ratio). When a serve/online call passes a fresh file followed by the
committed datapoint, the fresh run's headline throughput must also stay
within noise of the committed one (>= 50% — wide enough for runner
variance, tight enough to catch instrumentation wrecking a hot path).
Exits nonzero with a pointed message on the first violation.
"""

import json
import sys


class CheckFailure(AssertionError):
    pass


def ensure(condition, message):
    if not condition:
        raise CheckFailure(message)


def require_keys(obj, keys, where):
    for key in keys:
        ensure(key in obj, f"{where} lacks {key}")


def check_train(r, path):
    ensure(r["bench"] == "train", f"{path}: bench kind is not train")
    ensure(
        r["bit_identical_to_reference"] is True,
        f"{path}: pool diverged from the reference weights",
    )
    ensure(r["scenarios"], f"{path}: no scenarios")
    for s in r["scenarios"]:
        where = f"{path}:{s.get('name')}"
        require_keys(
            s,
            (
                "name",
                "config",
                "reference",
                "reference_serial",
                "pool",
                "best_speedup_vs_reference",
                "bit_identical_to_reference",
            ),
            where,
        )
        ensure(s["reference"]["samples_per_sec"] > 0, f"{where}: zero reference throughput")
        ensure(s["reference"]["epoch_p50_us"] > 0, f"{where}: zero reference epoch time")
        ensure(s["pool"], f"{where}: no pool entries")
        for p in s["pool"]:
            ensure(
                p["samples_per_sec"] > 0,
                f"{where}: zero throughput at w{p['workers']}",
            )
    ensure("allocs_note" in r, f"{path} lacks allocs_note")
    cl = next(s for s in r["scenarios"] if s["name"] == "cl_phase")
    return (
        f"CL-phase pool best "
        f"{max(p['samples_per_sec'] for p in cl['pool']):.0f} samples/s "
        f"({cl['best_speedup_vs_reference']:.2f}x vs reference), "
        f"bit-identical weights"
    )


def check_serve(r, path):
    ensure(r["bench"] == "serve", f"{path}: bench kind is not serve")
    require_keys(
        r,
        (
            "requests_ok",
            "requests_failed",
            "requests_per_sec",
            "latency_us",
            "hot_swap",
            "requests_by_model_version",
        ),
        path,
    )
    for q in ("p50", "p95", "p99", "mean"):
        ensure(q in r["latency_us"], f"{path} lacks latency_us.{q}")
    ensure(r["requests_ok"] > 0, f"{path}: zero throughput")
    ensure(r["requests_failed"] == 0, f"{path}: requests failed")
    if r["hot_swap"].get("requested"):
        ensure(r["hot_swap"]["succeeded"] is True, f"{path}: hot swap failed")
    return (
        f"{r['requests_ok']} requests at {r['requests_per_sec']:.0f} req/s, "
        f"p99 {r['latency_us']['p99']} us"
        + (" across a hot swap" if r["hot_swap"].get("requested") else "")
    )


def check_online(r, path):
    ensure(r["bench"] == "online", f"{path}: bench kind is not online")
    require_keys(
        r,
        (
            "config",
            "ingest",
            "increments",
            "swap",
            "checkpoint",
            "final_version",
            "event_digest",
        ),
        path,
    )
    ensure(r["ingest"]["events_per_sec"] > 0, f"{path}: zero ingest throughput")
    ensure(r["ingest"]["warm_events_per_sec"] > 0, f"{path}: zero warm throughput")
    ensure(r["increments"], f"{path}: no increments")
    for inc in r["increments"]:
        ensure(inc["train_wall_ms"] > 0, f"{path}: an increment trained in zero time")
    ensure(r["swap"]["stall_free"] is True, f"{path}: swap stalled")
    ensure(r["swap"]["predictions_failed"] == 0, f"{path}: predictions dropped")
    ensure(r["checkpoint"]["round_trip_ok"] is True, f"{path}: checkpoint round trip failed")
    ensure(r["final_version"] >= 2, f"{path}: no increment reached the registry")
    return (
        f"{r['ingest']['events_per_sec']:.0f} events/s, "
        f"swap {r['swap']['latency_us_max']} us max, "
        f"checkpoint {r['checkpoint']['bytes']} bytes"
    )


def check_router(r, path):
    ensure(r["bench"] == "router", f"{path}: bench kind is not router")
    require_keys(
        r,
        (
            "replicas",
            "direct",
            "routed",
            "background",
            "delta",
            "propagation",
            "follower_bit_identical",
        ),
        path,
    )
    ensure(r["replicas"] >= 2, f"{path}: a fleet needs at least 2 replicas")
    for phase in ("direct", "routed"):
        ensure(r[phase]["requests_ok"] > 0, f"{path}: zero {phase} throughput")
        ensure(r[phase]["requests_failed"] == 0, f"{path}: {phase} requests failed")
    ensure(
        r["background"]["requests_failed"] == 0,
        f"{path}: routed requests failed during replication",
    )
    delta = r["delta"]
    ensure(delta["increments"] >= 1, f"{path}: no increments ran")
    ensure(
        delta["max_ratio"] <= 0.10,
        f"{path}: delta ratio {delta['max_ratio']:.1%} exceeds the 10% gate",
    )
    for inc in delta["per_increment"]:
        ensure(inc["propagated"] is True, f"{path}: v{inc['version']} never propagated")
        ensure(
            inc["delta_bytes"] < inc["full_checkpoint_bytes"],
            f"{path}: v{inc['version']} delta is not smaller than the checkpoint",
        )
    ensure(
        r["follower_bit_identical"] is True,
        f"{path}: follower diverged from the published checkpoint",
    )
    ensure("p50_ms" in r["propagation"], f"{path} lacks propagation.p50_ms")
    return (
        f"{delta['increments']} increment(s), delta ratio "
        f"{delta['max_ratio']:.1%} of full checkpoint, propagation p50 "
        f"{r['propagation']['p50_ms']} ms, routed p50 {r['routed']['p50_us']} us "
        f"(direct {r['direct']['p50_us']} us), bit-identical follower"
    )


def check_fleet(r, path):
    ensure(r["bench"] == "fleet", f"{path}: bench kind is not fleet")
    require_keys(
        r,
        ("replicas", "failover", "background", "survivors_bit_identical", "rejoin"),
        path,
    )
    ensure(r["replicas"] >= 3, f"{path}: failover needs at least 3 replicas")
    fo = r["failover"]
    require_keys(
        fo,
        ("rounds", "detection_to_promotion_ms", "p50_ms", "promotions", "demotions", "final_epoch"),
        f"{path}:failover",
    )
    ensure(fo["rounds"] >= 1, f"{path}: no failover rounds ran")
    ensure(
        len(fo["detection_to_promotion_ms"]) == fo["rounds"],
        f"{path}: one latency sample per round",
    )
    # Initial election + one promotion per round; every promotion bumps
    # the epoch, so the final epoch tracks the promotion count.
    ensure(
        fo["promotions"] == fo["rounds"] + 1,
        f"{path}: expected {fo['rounds'] + 1} promotions, saw {fo['promotions']}",
    )
    ensure(
        fo["final_epoch"] == fo["promotions"],
        f"{path}: epoch {fo['final_epoch']} does not track promotions",
    )
    ensure(r["background"]["requests_ok"] > 0, f"{path}: zero background throughput")
    ensure(
        r["background"]["requests_failed"] == 0,
        f"{path}: client requests failed during failover",
    )
    ensure(
        r["survivors_bit_identical"] is True,
        f"{path}: survivors diverged after the failover rounds",
    )
    rejoin = r["rejoin"]
    delta, full = rejoin["delta"], rejoin["full_sync"]
    ensure(delta["converged"] is True, f"{path}: delta catch-up did not converge")
    ensure(full["converged"] is True, f"{path}: full-sync catch-up did not converge")
    ensure(
        delta["full_syncs"] == 0 and delta["deltas_applied"] == rejoin["ring"],
        f"{path}: lag == ring must catch up on deltas alone",
    )
    ensure(
        full["full_syncs"] == 1 and full["deltas_applied"] == 0,
        f"{path}: lag past the ring must take exactly one full sync",
    )
    ensure(
        delta["bytes_per_hop"] <= full["bytes"],
        f"{path}: a delta hop shipped more than a full checkpoint",
    )
    return (
        f"{fo['rounds']} failover round(s), detection->promotion p50 "
        f"{fo['p50_ms']} ms (max {fo['max_ms']} ms), epoch {fo['final_epoch']}, "
        f"rejoin delta {delta['bytes_per_hop']} B/hop vs full {full['bytes']} B, "
        f"zero failed requests"
    )


CHECKS = {
    "train": check_train,
    "serve": check_serve,
    "online": check_online,
    "router": check_router,
    "fleet": check_fleet,
}

# kind -> (label, extractor) for the headline throughput of a report.
THROUGHPUT = {
    "serve": ("requests/s", lambda r: r["requests_per_sec"]),
    # Warm-phase ingest: the steady-state hot path, independent of how
    # many events amortize the increment's fixed train/checkpoint cost
    # (overall events/s is not comparable between --quick and full runs).
    "online": ("warm events/s", lambda r: r["ingest"]["warm_events_per_sec"]),
}

# A fresh run may be slower than the committed datapoint (different
# runner, cold caches), but not catastrophically: instrumentation on
# the hot path must stay within noise, not halve throughput.
NOISE_FLOOR = 0.5


def check_throughput_noise(kind, fresh_path, committed_path):
    label, extract = THROUGHPUT[kind]
    with open(fresh_path) as handle:
        fresh = extract(json.load(handle))
    with open(committed_path) as handle:
        committed = extract(json.load(handle))
    ensure(
        fresh >= committed * NOISE_FLOOR,
        f"{fresh_path}: {fresh:.0f} {label} is below "
        f"{NOISE_FLOOR:.0%} of the committed {committed:.0f} {label} "
        f"({committed_path})",
    )
    print(
        f"{kind} throughput within noise: fresh {fresh:.0f} vs "
        f"committed {committed:.0f} {label}"
    )


def main(argv):
    if len(argv) < 3 or argv[1] not in CHECKS:
        kinds = "|".join(sorted(CHECKS))
        print(f"usage: check_bench.py <{kinds}> <file> [<file> ...]", file=sys.stderr)
        return 2
    kind, paths = argv[1], argv[2:]
    check = CHECKS[kind]
    for path in paths:
        try:
            with open(path) as handle:
                report = json.load(handle)
            summary = check(report, path)
        except CheckFailure as failure:
            print(f"check_bench: FAILED: {failure}", file=sys.stderr)
            return 1
        except (OSError, ValueError, KeyError, StopIteration) as problem:
            print(f"check_bench: FAILED: {path}: {problem!r}", file=sys.stderr)
            return 1
        print(f"{kind} bench ok ({path}): {summary}")
    if len(paths) >= 2 and kind in THROUGHPUT:
        try:
            check_throughput_noise(kind, paths[0], paths[-1])
        except CheckFailure as failure:
            print(f"check_bench: FAILED: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
