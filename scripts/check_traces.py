#!/usr/bin/env python3
"""Validator for the router's stitched `traces` wire reply.

    python3 scripts/check_traces.py <traces.json> [<metrics.json>]

`<traces.json>` holds the one-line JSON reply of the `traces` op asked
of ncl-router. The reply must be a stitched fleet view, and at least
one trace must be a real multi-hop capture: spans recorded on two or
more distinct nodes (the router plus a replica), including the
replica-side `queue_wait` and `forward` stages, with zero orphan spans
and every child interval nested inside its parent on the unified
timeline. That is exactly what a traced `ncl-loadgen --trace` predict
through the fleet produces, and the tail sampler's always-keep-first
rule guarantees the first one survives on every node.

`<metrics.json>`, when given, is the same node's `metrics` reply; the
exposition must surface the tail sampler's accounting
(`obs_traces_dropped_total` / `obs_traces_kept_total`, with at least
one fragment kept).

Exits nonzero with a pointed message on the first violation.
"""

import json
import sys


class CheckFailure(AssertionError):
    pass


def ensure(condition, message):
    if not condition:
        raise CheckFailure(message)


def check_tree(trace):
    """Structural invariants of one stitched trace."""
    spans = trace.get("spans", [])
    ensure(spans, f"trace {trace.get('id')} has no spans")
    by_id = {s["id"]: s for s in spans}
    ensure(len(by_id) == len(spans), "duplicate span ids in one trace")
    roots = [s for s in spans if "parent" not in s]
    ensure(len(roots) == 1, f"expected one root, got {len(roots)}")
    root = roots[0]
    ensure(root["id"] == trace["root"], "root field matches the parentless span")
    ensure(root["start_us"] == 0, "root starts the unified timeline")
    ensure(
        trace["duration_us"] == root["duration_us"],
        "trace duration is the root span's",
    )
    for span in spans:
        parent_id = span.get("parent")
        if parent_id is None:
            continue
        ensure(parent_id in by_id, f"span {span['id']} has a dangling parent")
        parent = by_id[parent_id]
        child_end = span["start_us"] + span["duration_us"]
        parent_end = parent["start_us"] + parent["duration_us"]
        ensure(
            span["start_us"] >= parent["start_us"] and child_end <= parent_end,
            f"span {span['id']} [{span['start_us']}, {child_end}] escapes "
            f"its parent [{parent['start_us']}, {parent_end}]",
        )


def is_multi_hop(trace):
    spans = trace.get("spans", [])
    nodes = {s.get("node") for s in spans}
    stages = {s.get("stage") for s in spans}
    return (
        len(nodes) >= 2
        and {"queue_wait", "forward"} <= stages
        and trace.get("orphan_spans") == 0
    )


def check_traces(reply):
    ensure(reply.get("ok") is True, f"traces op replied {reply}")
    ensure(
        reply.get("stitched") is True,
        "the router must serve stitched traces (raw fragments mean the "
        "fleet assembly path is broken)",
    )
    traces = reply.get("traces", [])
    ensure(traces, "no traces captured — did loadgen run with --trace?")
    for trace in traces:
        check_tree(trace)
    multi_hop = [t for t in traces if is_multi_hop(t)]
    ensure(
        multi_hop,
        "no stitched multi-hop trace: every capture stayed on one node "
        "or lost its queue_wait/forward spans — trace-context "
        "propagation across the wire is broken",
    )
    sample = multi_hop[0]
    nodes = sorted({s["node"] for s in sample["spans"]})
    print(
        f"traces ok: {len(traces)} stitched, {len(multi_hop)} multi-hop; "
        f"slowest multi-hop {sample['id']} spans {nodes} "
        f"in {sample['duration_us']}us"
    )


def check_sampler_metrics(path):
    with open(path) as fh:
        reply = json.load(fh)
    exposition = reply.get("exposition", "")
    values = {}
    for line in exposition.splitlines():
        for name in ("obs_traces_dropped_total", "obs_traces_kept_total"):
            if line.startswith(name + " "):
                values[name] = float(line.rsplit(" ", 1)[1])
    for name in ("obs_traces_dropped_total", "obs_traces_kept_total"):
        ensure(name in values, f"{name} missing from the exposition")
    ensure(
        values["obs_traces_kept_total"] >= 1,
        "the tail sampler kept zero fragments on a node serving traces",
    )
    print(
        "sampler ok: kept {obs_traces_kept_total:.0f}, "
        "dropped {obs_traces_dropped_total:.0f}".format(**values)
    )


def main():
    if len(sys.argv) not in (2, 3):
        print(
            "usage: check_traces.py <traces.json> [<metrics.json>]",
            file=sys.stderr,
        )
        return 2
    with open(sys.argv[1]) as fh:
        reply = json.load(fh)
    try:
        check_traces(reply)
        if len(sys.argv) == 3:
            check_sampler_metrics(sys.argv[2])
    except CheckFailure as failure:
        print(f"check_traces: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
