#!/usr/bin/env python3
"""Validator for the `metrics` wire op's Prometheus text exposition.

    python3 scripts/check_metrics.py <role> <file>

`<file>` holds either the raw exposition text or the one-line JSON
reply from the `metrics` op (in which case the `exposition` field is
extracted). `<role>` picks the layer coverage the scrape must show:

    serve     a bare model server            -> serve_*
    learner   ncl-learnd / learner replica   -> serve_*, online_*, snn_*
    follower  a follower replica             -> serve_*, online_*, replica_*
    router    the fleet router               -> router_*, plus per-replica
              serve_* series stamped with a replica="N" label

Every role must also expose the registry's own obs_* self-metrics
(ring occupancy/drops and the trace tail-sampler counters).

Beyond coverage, the exposition itself is checked for well-formedness:
every sample parses, every family has exactly one HELP and TYPE comment
before its samples, histogram buckets are cumulative and end at +Inf
with the family's _count. Every fleet-prefixed family must also appear
in scripts/expected_metrics.json — the registration inventory generated
by `ncl-lint --dump-metrics` — so a scrape can never expose a family
the linter (and the README metrics table it enforces) does not know
about. Exits nonzero with a pointed message on the first violation.
"""

import json
import os
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})? "
    r"(?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')

ROLE_PREFIXES = {
    "serve": ["serve_", "obs_"],
    "learner": ["serve_", "online_", "snn_", "obs_"],
    "follower": ["serve_", "online_", "replica_", "obs_"],
    "router": ["router_", "obs_"],
}

# Every prefix the fleet owns; families under these must be in the
# expected-metrics inventory (scripts/expected_metrics.json).
FLEET_PREFIXES = ["serve_", "router_", "replica_", "online_", "snn_", "obs_"]

EXPECTED_METRICS_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "expected_metrics.json"
)


class CheckFailure(AssertionError):
    pass


def ensure(condition, message):
    if not condition:
        raise CheckFailure(message)


def parse_labels(raw):
    if not raw:
        return {}
    labels = {}
    for pair in raw.split(","):
        m = LABEL_RE.match(pair)
        ensure(m, f"malformed label pair {pair!r}")
        labels[m.group(1)] = m.group(2)
    return labels


def parse_exposition(text):
    """Returns (families, samples).

    families: name -> type; samples: list of (name, labels, value).
    """
    families = {}
    helps = set()
    samples = []
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            ensure(name not in helps, f"{where}: duplicate HELP for {name}")
            helps.add(name)
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            ensure(len(parts) == 4, f"{where}: malformed TYPE comment")
            name, kind = parts[2], parts[3]
            ensure(
                kind in ("counter", "gauge", "histogram"),
                f"{where}: unknown metric type {kind!r}",
            )
            ensure(name not in families, f"{where}: duplicate TYPE for {name}")
            ensure(name in helps, f"{where}: TYPE for {name} lacks a HELP")
            families[name] = kind
            continue
        ensure(not line.startswith("#"), f"{where}: unknown comment {line!r}")
        m = SAMPLE_RE.match(line)
        ensure(m, f"{where}: unparseable sample {line!r}")
        name, labels = m.group("name"), parse_labels(m.group("labels"))
        try:
            value = float(m.group("value"))
        except ValueError:
            raise CheckFailure(f"{where}: non-numeric value in {line!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
        ensure(family in families, f"{where}: sample {name} has no TYPE")
        samples.append((name, labels, value))
    ensure(samples, "exposition holds no samples at all")
    return families, samples


def check_histograms(families, samples):
    """Buckets cumulative, terminated by le=+Inf matching _count."""
    for family, kind in families.items():
        if kind != "histogram":
            continue
        by_series = {}
        for name, labels, value in samples:
            if name != f"{family}_bucket":
                continue
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            by_series.setdefault(key, []).append((labels.get("le"), value))
        counts = {
            tuple(sorted(labels.items())): value
            for name, labels, value in samples
            if name == f"{family}_count"
        }
        ensure(counts, f"histogram {family} lacks _count samples")
        for key, buckets in by_series.items():
            prev = -1.0
            for le, cumulative in buckets:
                ensure(le is not None, f"{family}: bucket without le label")
                ensure(
                    cumulative >= prev,
                    f"{family}{dict(key)}: bucket counts not cumulative",
                )
                prev = cumulative
            ensure(
                buckets[-1][0] == "+Inf",
                f"{family}{dict(key)}: buckets do not end at +Inf",
            )
            ensure(
                counts.get(key) == buckets[-1][1],
                f"{family}{dict(key)}: +Inf bucket disagrees with _count",
            )


def check_expected(families):
    """Fleet-prefixed families must be in the ncl-lint inventory."""
    ensure(
        os.path.exists(EXPECTED_METRICS_PATH),
        f"{EXPECTED_METRICS_PATH} is missing — regenerate it with "
        "`cargo run -p ncl_lint --bin ncl-lint -- --dump-metrics`",
    )
    with open(EXPECTED_METRICS_PATH) as fh:
        expected = set(json.load(fh)["metrics"])
    for name in sorted(families):
        if any(name.startswith(p) for p in FLEET_PREFIXES):
            ensure(
                name in expected,
                f"family {name} is exposed but absent from "
                "expected_metrics.json — if it is a new metric, register "
                "it, then regenerate the inventory with "
                "`ncl-lint --dump-metrics` (the metric-drift lint rule "
                "will also want a README table row)",
            )


def check_role(role, families, samples):
    for prefix in ROLE_PREFIXES[role]:
        ensure(
            any(name.startswith(prefix) for name in families),
            f"role {role}: no {prefix}* family in the exposition",
        )
    if role == "router":
        replicas = {
            labels["replica"]
            for name, labels, _ in samples
            if name.startswith("serve_") and "replica" in labels
        }
        ensure(
            replicas,
            "role router: no replica-stamped serve_* series "
            "(is the fleet merge broken?)",
        )
        ups = {
            labels["replica"]: value
            for name, labels, value in samples
            if name == "router_replica_up"
        }
        ensure(ups, "role router: no router_replica_up gauge")
        print(
            f"router fleet view: replicas {sorted(replicas)}, "
            f"up={ups}"
        )


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ROLE_PREFIXES:
        roles = "|".join(ROLE_PREFIXES)
        print(f"usage: check_metrics.py <{roles}> <file>", file=sys.stderr)
        return 2
    role, path = sys.argv[1], sys.argv[2]
    with open(path) as fh:
        text = fh.read()
    if text.lstrip().startswith("{"):
        reply = json.loads(text)
        ensure(reply.get("ok") is True, f"{path}: metrics op replied {reply}")
        ensure(
            reply.get("format") == "prometheus-text-0.0.4",
            f"{path}: unexpected format {reply.get('format')!r}",
        )
        text = reply["exposition"]
    try:
        families, samples = parse_exposition(text)
        check_histograms(families, samples)
        check_role(role, families, samples)
        check_expected(families)
    except CheckFailure as failure:
        print(f"check_metrics: {path}: {failure}", file=sys.stderr)
        return 1
    print(
        f"check_metrics: {path} ok as {role}: "
        f"{len(families)} families, {len(samples)} samples"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
