//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`] with `measurement_time`/
//! `warm_up_time`/`bench_function`/`finish`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — as a plain
//! wall-clock harness: warm up, then measure batches until the
//! measurement budget is spent, and print mean/min ns per iteration.
//! No statistical analysis, plots or HTML reports.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Top-level benchmark harness handle.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes everything after `--` to us;
        // accept an optional substring filter and ignore harness flags.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (warm_up, measurement) = (self.default_warm_up, self.default_measurement);
        self.run_one(id, warm_up, measurement, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        warm_up: Duration,
        measurement: Duration,
        mut f: impl FnMut(&mut Bencher),
    ) {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher {
            warm_up,
            measurement,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        let (warm_up, measurement) = (self.warm_up, self.measurement);
        self.criterion.run_one(&full, warm_up, measurement, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling batches until the
    /// measurement budget is exhausted.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates a batch size targeting ~10ms batches.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || iters == 0 {
            std_black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let batch = ((0.01 / per_iter.max(1e-12)) as u64).max(1);

        let run_start = Instant::now();
        while run_start.elapsed() < self.measurement {
            let batch_start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples
                .push(batch_start.elapsed() / u32::try_from(batch).unwrap_or(u32::MAX));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id:<40} no samples (routine never ran?)");
            return;
        }
        let mean = self.samples.iter().sum::<Duration>().as_secs_f64() / self.samples.len() as f64;
        let min = self.samples.iter().min().expect("non-empty").as_secs_f64();
        println!(
            "  {id:<40} mean {:>12.1} ns/iter   min {:>12.1} ns/iter   ({} samples)",
            mean * 1e9,
            min * 1e9,
            self.samples.len()
        );
    }
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.default_warm_up = Duration::from_millis(1);
        c.default_measurement = Duration::from_millis(2);
        let mut group = c.benchmark_group("g");
        group
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            default_warm_up: Duration::from_millis(1),
            default_measurement: Duration::from_millis(1),
        };
        // Must return without ever invoking the routine.
        c.bench_function("other", |_b| panic!("should be filtered out"));
    }
}
