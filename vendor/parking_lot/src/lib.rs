//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a thread panicked while holding it)
//! is treated as still usable, matching `parking_lot` semantics.

use std::sync;

/// Poison-free mutex with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
