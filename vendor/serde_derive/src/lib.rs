//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` stand-in implements `Serialize`/`Deserialize` as
//! blanket marker traits, so these derives only need to *exist* for
//! `#[derive(Serialize, Deserialize)]` attributes to compile; they emit no
//! code. Swap the workspace `serde` dependency for the real crates.io
//! package to get actual serialization.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
