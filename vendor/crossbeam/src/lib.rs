//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope`/`Scope::spawn` — the only surface
//! the workspace uses (per-sample gradient parallelism in
//! `ncl_snn::trainer`) — implemented on top of `std::thread::scope`,
//! which has subsumed crossbeam's scoped threads since Rust 1.63.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or a joined scoped thread; `Err` carries the
    /// panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle to a scope, used to spawn threads that may borrow from the
    /// enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Owned handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let nested = Scope { inner };
                    f(&nested)
                }),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads; all threads are
    /// joined before this returns. Returns `Err` with the panic payload
    /// if the closure (or an unjoined child) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_environment() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope ok");
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope ok");
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_surfaces_via_join() {
        let result = thread::scope(|scope| scope.spawn(|_| panic!("boom")).join());
        assert!(result.expect("scope itself fine").is_err());
    }
}
