//! Offline stand-in for `serde`.
//!
//! This environment builds without network access, so the workspace
//! vendors the exact API surface it uses: the `Serialize`/`Deserialize`
//! traits as names that `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` resolve against. The traits are
//! blanket-implemented markers and the derives emit nothing, which is
//! sufficient while no code path performs actual serialization (binary
//! model serialization is hand-rolled in `ncl_snn::serialize`). Swapping
//! the workspace dependency for the real crates.io `serde` is a drop-in
//! change.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
