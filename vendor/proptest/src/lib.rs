//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property
//! suites use — the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, numeric range strategies, tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], `prop::num::{f32,f64}::ANY`,
//! and the `prop_assert*`/`prop_assume!` macros — on a deterministic
//! seeded RNG.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the panic message from the
//!   first failing input; it is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   file/name, so runs are reproducible without a `proptest-regressions`
//!   directory. Set `PROPTEST_CASES` to change the default case count.

pub mod test_runner {
    //! Deterministic test-case runner plumbing.

    /// Default number of cases per property (overridable via the
    /// `PROPTEST_CASES` environment variable or
    /// [`Config::with_cases`]).
    pub fn default_cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runner configuration (stand-in for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: default_cases(),
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property's assertions failed for this input.
        Fail(String),
        /// The input was rejected by `prop_assume!`; try another.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// An input rejection.
        #[must_use]
        pub fn reject(condition: &str) -> Self {
            TestCaseError::Reject(condition.to_owned())
        }
    }

    /// Deterministic xoshiro256**-style RNG used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Seeds via SplitMix64, matching common xoshiro seeding practice.
        #[must_use]
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                state: [next(), next(), next(), next()],
            }
        }

        /// Stable per-test seed derived from source location and name.
        #[must_use]
        pub fn for_test(file: &str, name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in file.bytes().chain([b':']).chain(name.bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::seed_from_u64(h)
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n2 = s2 ^ s0;
            let mut n3 = s3 ^ s1;
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.state = [n0, n1, n2, n3];
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty range");
            // Rejection sampling below the largest multiple of `bound`
            // keeps the modulo unbiased.
            let limit = u64::MAX - u64::MAX % bound;
            loop {
                let v = self.next_u64();
                if v < limit {
                    return v % bound;
                }
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// Type of the generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Full-width range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy of a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    /// The canonical strategy of `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite by construction; use `prop::num::f32::ANY` for raw
            // bit patterns (NaN/infinities included).
            ((rng.unit_f64() - 0.5) * 2e6) as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2e12
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy generates.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a size
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive.saturating_sub(self.size.min).max(1);
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    //! Raw-bit-pattern numeric strategies (`prop::num::f32::ANY`).

    /// `f32` strategies.
    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Every `f32` bit pattern, including NaN and the infinities.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBits;

        /// Strategy over all `f32` bit patterns.
        pub const ANY: AnyBits = AnyBits;

        impl Strategy for AnyBits {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                f32::from_bits(rng.next_u64() as u32)
            }
        }
    }

    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Every `f64` bit pattern, including NaN and the infinities.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBits;

        /// Strategy over all `f64` bit patterns.
        pub const ANY: AnyBits = AnyBits;

        impl Strategy for AnyBits {
            type Value = f64;

            fn generate(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy modules (`prop::num::f32::ANY`).
    pub mod prop {
        pub use crate::{collection, num, strategy};
    }
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for many generated inputs.
///
/// Supports the real macro's `#![proptest_config(...)]` header to set the
/// case count.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(cond)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).max(1024),
                            "property `{}` rejected too many inputs (last: {})",
                            stringify!($name),
                            cond,
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), passed, msg)
                    }
                }
            }
        }
    )*};
}

/// `assert!` that fails the current generated case (stand-in: no
/// shrinking, the failure aborts the test with this message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current generated case, drawing a fresh input instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("f.rs", "t");
        let mut b = crate::test_runner::TestRng::for_test("f.rs", "t");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f32..2.0, z in 1u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=9).contains(&z));
        }

        #[test]
        fn vec_strategy_honors_exact_len(len in 0usize..12) {
            let v = crate::collection::vec(0u8..255, len).generate(
                &mut crate::test_runner::TestRng::seed_from_u64(len as u64),
            );
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn flat_map_threads_outer_value(n in 1usize..6) {
            let strat = (1usize..4).prop_flat_map(|k| {
                crate::collection::vec(0usize..10, k).prop_map(move |v| (k, v))
            });
            let (k, v) = strat.generate(&mut crate::test_runner::TestRng::seed_from_u64(n as u64));
            prop_assert_eq!(v.len(), k);
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
