//! Offline stand-in for `serde_json`.
//!
//! No workspace code calls `serde_json` yet (reports are plain text and
//! model caching uses the hand-rolled binary format in
//! `ncl_snn::serialize`), but the manifest slot is reserved for report
//! emission. Until the real crate can be fetched, this stand-in offers a
//! tree-building [`Value`] with a compact and a pretty JSON writer —
//! enough to dump metrics/reports as JSON without derive support.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document tree (object keys are sorted, for deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s lossy mode).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Writes the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Writes the value as two-space-indented JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_pad, close_pad, item_sep): (String, String, &str) = match indent {
            Some(w) => (
                format!("\n{}", " ".repeat(w * (depth + 1))),
                format!("\n{}", " ".repeat(w * depth)),
                ",",
            ),
            None => (String::new(), String::new(), ","),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(item_sep);
                    }
                    out.push_str(&open_pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(item_sep);
                    }
                    out.push_str(&open_pad);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<f32> for Value {
    fn from(n: f32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

impl<V: Into<Value>> FromIterator<(String, V)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, V)>>(iter: I) -> Self {
        Value::Object(iter.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_deterministic() {
        let v: Value = vec![
            ("b".to_owned(), Value::from(1.5)),
            ("a".to_owned(), Value::from("x\"y")),
        ]
        .into_iter()
        .collect();
        assert_eq!(v.to_json(), "{\"a\":\"x\\\"y\",\"b\":1.5}");
    }

    #[test]
    fn pretty_output_indents() {
        let v: Value = vec![1u64, 2].into_iter().collect();
        assert_eq!(v.to_json_pretty(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
    }
}
