//! Offline stand-in for `serde_json`.
//!
//! Offers the surface the workspace uses: a tree-building [`Value`] with
//! a compact and a pretty JSON writer (used by `ncl_runtime`'s suite
//! reports) plus a recursive-descent [`from_str`] parser and the usual
//! `as_*`/[`Value::get`] accessors (used by the suite-file loader). One
//! deliberate deviation from the real crate: `from_str` is not generic
//! over `Deserialize` (the vendored `serde` derives are no-ops), it
//! always produces a [`Value`] tree that callers walk by hand.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document tree (object keys are sorted, for deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s lossy mode).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Writes the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Writes the value as two-space-indented JSON.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (open_pad, close_pad, item_sep): (String, String, &str) = match indent {
            Some(w) => (
                format!("\n{}", " ".repeat(w * (depth + 1))),
                format!("\n{}", " ".repeat(w * depth)),
                ",",
            ),
            None => (String::new(), String::new(), ","),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(item_sep);
                    }
                    out.push_str(&open_pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(item_sep);
                    }
                    out.push_str(&open_pad);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

impl Value {
    /// Member lookup on an object; `None` for missing keys and non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a JSON string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a JSON number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer
    /// that `f64` storage represents exactly (at most 2^53). Larger
    /// integers already lost precision during parsing in this stand-in's
    /// lossy number mode, so returning them would silently corrupt values
    /// like 64-bit seeds — callers get `None` and can reject the input
    /// instead.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a JSON boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is a JSON array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member map, if this is a JSON object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Parse failure, with the 1-based line/column where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line of the offending character.
    pub line: usize,
    /// 1-based column of the offending character.
    pub column: usize,
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.msg, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into a [`Value`] tree.
///
/// Accepts exactly one top-level value (trailing non-whitespace is an
/// error). Duplicate object keys keep the last occurrence, matching
/// `serde_json`'s map behaviour.
///
/// # Errors
///
/// Returns [`Error`] with the line/column of the first syntax violation.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        chars: s.chars().collect(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos < parser.chars.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Maximum container nesting depth, matching the real crate's recursion
/// limit — a hostile deeply-nested document must fail with a parse error,
/// not a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: &str) -> Error {
        let (mut line, mut column) = (1, 1);
        for c in self.chars.iter().take(self.pos) {
            if *c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error {
            line,
            column,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{c}'")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.peek() {
            Some('{') => self.parse_object(depth),
            Some('[') => self.parse_array(depth),
            Some('"') => Ok(Value::String(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", Value::Bool(true)),
            Some('f') => self.parse_keyword("false", Value::Bool(false)),
            Some('n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        for expected in word.chars() {
            if self.bump() != Some(expected) {
                return Err(self.error(&format!("invalid literal (expected '{word}')")));
            }
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let value: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        // Numbers are stored as f64 (the stand-in's lossy mode). An
        // integer literal beyond f64's exact range (2^53) would silently
        // round — fatal for values like 64-bit seeds — so reject it
        // instead of corrupting it. The check must use the literal text:
        // e.g. 2^53 + 1 parses to exactly 2^53, hiding the rounding.
        let is_integer_literal = !text.contains(['.', 'e', 'E']);
        if is_integer_literal {
            let exact = text
                .parse::<i128>()
                .is_ok_and(|i| i.unsigned_abs() <= 1u128 << 53);
            if !exact {
                return Err(self.error("integer beyond f64's exact range (2^53)"));
            }
        }
        Ok(Value::Number(value))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{0008}'),
                    Some('f') => out.push('\u{000c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let unit = self.parse_hex4()?;
                        // Decode surrogate pairs; lone surrogates are an error.
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            if self.bump() != Some('\\') || self.bump() != Some('u') {
                                return Err(self.error("unpaired surrogate escape"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let code = 0x10000
                                + ((u32::from(unit) - 0xD800) << 10)
                                + (u32::from(low) - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(u32::from(unit))
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let mut unit: u16 = 0;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|c| c.to_digit(16))
                .ok_or_else(|| self.error("invalid \\u escape (need 4 hex digits)"))?;
            unit = (unit << 4) | digit as u16;
        }
        Ok(unit)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<f32> for Value {
    fn from(n: f32) -> Self {
        Value::Number(f64::from(n))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

impl<V: Into<Value>> FromIterator<(String, V)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, V)>>(iter: I) -> Self {
        Value::Object(iter.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_is_deterministic() {
        let v: Value = vec![
            ("b".to_owned(), Value::from(1.5)),
            ("a".to_owned(), Value::from("x\"y")),
        ]
        .into_iter()
        .collect();
        assert_eq!(v.to_json(), "{\"a\":\"x\\\"y\",\"b\":1.5}");
    }

    #[test]
    fn pretty_output_indents() {
        let v: Value = vec![1u64, 2].into_iter().collect();
        assert_eq!(v.to_json_pretty(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn parses_every_value_kind() {
        let v = from_str(
            r#"{"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null, "d": "x\n\"y\"", "e": false}"#,
        )
        .unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("nested"))
                .and_then(Value::as_bool),
            Some(true)
        );
        assert!(v.get("c").unwrap().is_null());
        assert_eq!(v.get("d").and_then(Value::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("e").and_then(Value::as_bool), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn round_trips_through_writer() {
        let original = from_str(r#"{"jobs":[{"label":"a","seed":7}],"name":"s"}"#).unwrap();
        let reparsed = from_str(&original.to_json()).unwrap();
        assert_eq!(original, reparsed);
        let reparsed_pretty = from_str(&original.to_json_pretty()).unwrap();
        assert_eq!(original, reparsed_pretty);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        let v = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
        assert!(from_str(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(from_str(r#""\ud83dxx""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed_documents_with_position() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\u{0001}\"", ""] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
        let err = from_str("{\"a\": 1,\n \"b\": }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn numeric_accessor_edges() {
        assert_eq!(from_str("3.5").unwrap().as_u64(), None);
        assert_eq!(from_str("-1").unwrap().as_u64(), None);
        assert_eq!(from_str("12").unwrap().as_u64(), Some(12));
        assert!(from_str("12").unwrap().as_str().is_none());
        // Integer literals beyond f64's exact range are rejected at parse
        // time (they would otherwise round silently before as_u64 could
        // detect it); values that sneak in as Number are still bounded.
        assert_eq!(
            from_str("9007199254740992").unwrap().as_u64(),
            Some(1 << 53)
        );
        assert!(from_str("9007199254740993").is_err());
        assert!(from_str("18446744073709551616").is_err());
        assert!(from_str("-9007199254740993").is_err());
        assert!(from_str("9.2e18").is_ok(), "float notation stays lossy");
        assert_eq!(Value::Number(1e19).as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"));
        // Nesting within the limit still parses.
        let ok = "[".repeat(64) + &"]".repeat(64);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = from_str(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }
}
