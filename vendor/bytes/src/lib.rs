//! Offline stand-in for `bytes`.
//!
//! Provides the [`Buf`]/[`BufMut`] trait surface the workspace's binary
//! model format (`ncl_snn::serialize`) uses, implemented for `&[u8]`
//! (reading advances the slice) and `Vec<u8>` (writing appends). Like the
//! real crate, reads past the end of a buffer panic — callers are expected
//! to check [`Buf::remaining`] first.

/// Read side: a cursor over bytes. Implemented for `&[u8]`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side: an append-only byte sink. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, value: f32) {
        self.put_slice(&value.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(-1.5);
        buf.put_slice(b"xyz");

        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 1 + 4 + 8 + 4 + 3);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 3);
        assert_eq!(cursor.get_f32_le(), -1.5);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
