//! End-to-end serving integration: a live `ncl_serve::Server` on an
//! ephemeral localhost port, driven over real TCP — sustained
//! multi-connection load, a checkpoint hot swap mid-stream (the
//! acceptance bar: zero failed requests across the swap), protocol
//! error handling, and clean shutdown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ncl_serve::batcher::BatchConfig;
use ncl_serve::client::NclClient;
use ncl_serve::protocol;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::server::{Server, ServerConfig};
use ncl_snn::{serialize, Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use serde_json::Value;

const INPUTS: usize = 16;
const CLASSES: usize = 4;

fn serving_net(seed: u64) -> Network {
    let mut config = NetworkConfig::tiny(INPUTS, CLASSES);
    config.seed = seed;
    Network::new(config).unwrap()
}

fn start_server() -> Server {
    let registry = Arc::new(ModelRegistry::new(serving_net(1), "initial"));
    Server::start(
        registry,
        ServerConfig {
            port: 0,
            batch: BatchConfig {
                batch_size: 4,
                max_wait: Duration::from_micros(300),
                workers: 2,
            },
        },
    )
    .expect("bind ephemeral port")
}

fn raster(seed: usize) -> SpikeRaster {
    SpikeRaster::from_fn(INPUTS, 12, |n, t| (n * 5 + t * 3 + seed).is_multiple_of(4))
}

#[test]
fn hot_swap_under_sustained_load_drops_nothing() {
    let server = start_server();
    let addr = server.local_addr();

    // Write the replacement checkpoint the swap op will load.
    let swap_dir = std::env::temp_dir().join("ncl-serve-integration");
    std::fs::create_dir_all(&swap_dir).unwrap();
    let ckpt = swap_dir.join("increment.bin");
    serialize::to_file(&serving_net(2), &ckpt).unwrap();

    let stop = AtomicBool::new(false);
    let totals = std::thread::scope(|scope| {
        // 3 sustained client connections hammering predicts.
        let workers: Vec<_> = (0..3)
            .map(|w| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = NclClient::connect(addr).expect("connect");
                    let mut ok = 0u64;
                    let mut failed = 0u64;
                    let mut versions = std::collections::BTreeSet::new();
                    let mut id = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let line =
                            protocol::predict_request_line(id, &raster(w * 1000 + id as usize));
                        let reply = client.round_trip(&line).unwrap();
                        if reply.get("ok").and_then(Value::as_bool) == Some(true)
                            && reply.get("id").and_then(Value::as_u64) == Some(id)
                        {
                            ok += 1;
                            if let Some(v) = reply.get("model_version").and_then(Value::as_u64) {
                                versions.insert(v);
                            }
                        } else {
                            failed += 1;
                        }
                        id += 1;
                    }
                    (ok, failed, versions)
                })
            })
            .collect();

        // Let load build up, swap mid-stream, let load continue, stop.
        std::thread::sleep(Duration::from_millis(150));
        let mut control = NclClient::connect(addr).expect("connect");
        let swap_line = protocol::object(vec![
            ("op", Value::from("swap")),
            ("path", Value::from(ckpt.display().to_string())),
        ])
        .to_json();
        let swap_reply = control.round_trip(&swap_line).unwrap();
        assert_eq!(
            swap_reply.get("ok").and_then(Value::as_bool),
            Some(true),
            "swap failed: {swap_reply:?}"
        );
        assert_eq!(
            swap_reply.get("model_version").and_then(Value::as_u64),
            Some(2)
        );
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);

        workers
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Vec<_>>()
    });

    let mut all_versions = std::collections::BTreeSet::new();
    let mut total_ok = 0;
    for (ok, failed, versions) in totals {
        assert_eq!(failed, 0, "a request failed during the hot swap");
        assert!(ok > 0, "every connection made progress");
        total_ok += ok;
        all_versions.extend(versions);
    }
    assert!(
        all_versions.contains(&1) && all_versions.contains(&2),
        "load must span the swap (saw versions {all_versions:?})"
    );

    // Server-side accounting agrees: everything served, nothing failed.
    let mut control = NclClient::connect(addr).expect("connect");
    let stats = control.stats().unwrap();
    let serving = stats.get("serving").expect("serving block");
    assert_eq!(
        serving.get("requests_ok").and_then(Value::as_u64),
        Some(total_ok)
    );
    assert_eq!(
        serving.get("requests_failed").and_then(Value::as_u64),
        Some(0)
    );
    assert_eq!(serving.get("swaps").and_then(Value::as_u64), Some(1));
    let latency = serving.get("latency_us").expect("latency block");
    assert!(latency.get("p50").and_then(Value::as_u64).unwrap() > 0);
    assert!(
        latency.get("p99").and_then(Value::as_u64).unwrap()
            >= latency.get("p50").and_then(Value::as_u64).unwrap()
    );

    std::fs::remove_file(&ckpt).ok();
    server.shutdown();
}

#[test]
fn incompatible_swap_is_rejected_and_serving_continues() {
    let server = start_server();
    let addr = server.local_addr();

    let swap_dir = std::env::temp_dir().join("ncl-serve-integration");
    std::fs::create_dir_all(&swap_dir).unwrap();
    let bad_ckpt = swap_dir.join("wrong-shape.bin");
    serialize::to_file(
        &Network::new(NetworkConfig::tiny(INPUTS + 1, CLASSES)).unwrap(),
        &bad_ckpt,
    )
    .unwrap();

    let mut client = NclClient::connect(addr).expect("connect");
    let swap_line = protocol::object(vec![
        ("op", Value::from("swap")),
        ("path", Value::from(bad_ckpt.display().to_string())),
    ])
    .to_json();
    let reply = client.round_trip(&swap_line).unwrap();
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));
    assert!(reply
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("incompatible"));

    // A missing checkpoint also fails softly.
    let gone = protocol::object(vec![
        ("op", Value::from("swap")),
        ("path", Value::from("does/not/exist.bin")),
    ])
    .to_json();
    assert_eq!(
        client
            .round_trip(&gone)
            .unwrap()
            .get("ok")
            .and_then(Value::as_bool),
        Some(false)
    );

    // Still version 1, still serving correctly on the same connection.
    let input = raster(3);
    let reply = client
        .round_trip(&protocol::predict_request_line(77, &input))
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(reply.get("model_version").and_then(Value::as_u64), Some(1));
    let direct = server.registry().current().network.predict(&input).unwrap();
    assert_eq!(
        reply.get("prediction").and_then(Value::as_u64),
        Some(direct as u64)
    );

    std::fs::remove_file(&bad_ckpt).ok();
    server.shutdown();
}

#[test]
fn predictions_over_tcp_match_in_process_inference() {
    let server = start_server();
    let addr = server.local_addr();
    let mut client = NclClient::connect(addr).expect("connect");
    let snapshot = server.registry().current();
    for i in 0..10 {
        let input = raster(i);
        let reply = client
            .round_trip(&protocol::predict_request_line(i as u64, &input))
            .unwrap();
        let logits: Vec<f32> = reply
            .get("logits")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as f32)
            .collect();
        let direct = snapshot.network.forward(&input).unwrap();
        // JSON numbers travel as f64; f32 logits survive exactly.
        assert_eq!(logits, direct, "request {i}");
    }
    server.shutdown();
}

#[test]
fn malformed_lines_answer_errors_and_shutdown_op_stops() {
    let server = start_server();
    let addr = server.local_addr();
    let mut client = NclClient::connect(addr).expect("connect");
    for bad in [
        "garbage",
        r#"{"op":"predict","input":[[99]]}"#,
        r#"{"op":"nope"}"#,
    ] {
        let reply = client.round_trip(bad).unwrap();
        assert_eq!(
            reply.get("ok").and_then(Value::as_bool),
            Some(false),
            "{bad} must answer an error"
        );
    }
    let bye = client.shutdown().unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    server.wait();
}
