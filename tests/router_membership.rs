//! Membership churn under live dispatch: two replicas repeatedly join
//! and leave a running fleet while client load flows through the
//! router. The invariants under test:
//!
//! * the router never routes a request to a backend after its `leave`
//!   settles (its per-backend counters freeze while load continues);
//! * ids are never reused — every join draws a fresh monotonic id, and
//!   retrying a `join` for an address that is already a member returns
//!   the existing id instead of double-registering it;
//! * the churn itself never fails a client request.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ncl_router::backend::Backend;
use ncl_router::router::{Router, RouterConfig};
use ncl_serve::client::NclClient;
use ncl_serve::protocol;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::server::{Server, ServerConfig};
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use serde_json::Value;

fn make_server() -> Server {
    let network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
    let registry = Arc::new(ModelRegistry::new(network, "test"));
    Server::start(registry, ServerConfig::default()).unwrap()
}

#[test]
fn churn_never_routes_to_removed_backends_and_never_reuses_ids() {
    const ROUNDS: usize = 4;

    let anchor = make_server();
    let churn: Vec<Server> = (0..2).map(|_| make_server()).collect();

    let router = Router::start(
        vec![Arc::new(Backend::new(0, anchor.local_addr()))],
        RouterConfig {
            sync_interval: Duration::from_millis(20),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let addr = router.local_addr();

    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let raster = SpikeRaster::from_fn(6, 8, |n, t| (n + t) % 3 == 0);

    let mut all_ids: Vec<u64> = vec![0];
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let Ok(mut client) = NclClient::connect(addr) else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let mut id = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match client.round_trip(&protocol::predict_request_line(id, &raster)) {
                        Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    id += 1;
                }
            });
        }

        let router = &router;
        let churners: Vec<_> = churn
            .iter()
            .map(|server| {
                let target = server.local_addr().to_string();
                scope.spawn(move || -> Vec<u64> {
                    let mut client = NclClient::connect(addr).unwrap();
                    let mut mine = Vec::new();
                    for _ in 0..ROUNDS {
                        let joined = client.join(&target).unwrap();
                        assert_eq!(joined.get("ok").and_then(Value::as_bool), Some(true));
                        assert_eq!(
                            joined.get("already_member").and_then(Value::as_bool),
                            Some(false),
                            "the address left the fleet, so this join must be fresh"
                        );
                        let id = joined.get("id").and_then(Value::as_u64).expect("join id");
                        mine.push(id);

                        // Retrying the join (a client that timed out
                        // and cannot tell) must not double-register.
                        let dup = client.join(&target).unwrap();
                        assert_eq!(dup.get("id").and_then(Value::as_u64), Some(id));
                        assert_eq!(
                            dup.get("already_member").and_then(Value::as_bool),
                            Some(true)
                        );

                        // Serve for a bit, then leave and verify the
                        // router stops routing here: the backend's own
                        // success counter freezes while load continues.
                        std::thread::sleep(Duration::from_millis(30));
                        let handle = router
                            .backends()
                            .into_iter()
                            .find(|b| b.id == id as usize)
                            .expect("joined backend is in the fleet");
                        let left = client.leave(id).unwrap();
                        assert_eq!(left.get("ok").and_then(Value::as_bool), Some(true));
                        std::thread::sleep(Duration::from_millis(40));
                        let frozen = handle.ok_count();
                        std::thread::sleep(Duration::from_millis(60));
                        assert_eq!(
                            handle.ok_count(),
                            frozen,
                            "the router must never route to a removed backend"
                        );
                    }
                    mine
                })
            })
            .collect();
        for churner in churners {
            all_ids.extend(churner.join().unwrap());
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(ok.load(Ordering::Relaxed) > 0, "load made progress");
    assert_eq!(
        failed.load(Ordering::Relaxed),
        0,
        "membership churn must not fail a single request"
    );
    let unique: HashSet<u64> = all_ids.iter().copied().collect();
    assert_eq!(
        unique.len(),
        all_ids.len(),
        "ids must never be reused across joins: {all_ids:?}"
    );

    // The fleet is back to the anchor alone, and the router counted
    // every membership change.
    let mut control = NclClient::connect(addr).unwrap();
    let members = control.members().unwrap();
    let rows = members
        .get("members")
        .and_then(Value::as_array)
        .expect("members table");
    assert_eq!(rows.len(), 1, "only the anchor remains");
    let stats = control.stats().unwrap();
    let serving = stats.get("serving").expect("serving block");
    assert_eq!(
        serving.get("requests_failed").and_then(Value::as_u64),
        Some(0)
    );
    assert_eq!(
        serving.get("joins").and_then(Value::as_u64),
        Some(2 * ROUNDS as u64)
    );
    assert_eq!(
        serving.get("leaves").and_then(Value::as_u64),
        Some(2 * ROUNDS as u64)
    );

    router.shutdown();
    anchor.shutdown();
    for server in churn {
        server.shutdown();
    }
}
