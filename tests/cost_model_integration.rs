//! Integration tests of the cost-model stack: simulated activity feeding
//! op counts, latency/energy evaluation, and the orderings every paper
//! figure relies on.

use ncl_hw::{CostReport, HardwareProfile, OpCounts};
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use replay4ncl::{cache, methods::MethodSpec, scenario, ScenarioConfig};

fn traced_ops(steps: usize, density: f64) -> OpCounts {
    let net = Network::new(NetworkConfig::tiny(12, 3)).unwrap();
    let mut rng = Rng::seed_from_u64(31);
    let input = SpikeRaster::from_fn(12, steps, |_, _| rng.bernoulli(density));
    let (_, activity) = net.forward_from_traced(0, &input, None).unwrap();
    OpCounts::forward(&activity, true)
}

#[test]
fn more_timesteps_cost_more() {
    let short = traced_ops(20, 0.3);
    let long = traced_ops(80, 0.3);
    assert!(long.synaptic_ops > short.synaptic_ops);
    assert_eq!(long.neuron_updates, 4 * short.neuron_updates);
    let profile = HardwareProfile::embedded();
    assert!(CostReport::of(&long, &profile).latency > CostReport::of(&short, &profile).latency);
    assert!(CostReport::of(&long, &profile).energy > CostReport::of(&short, &profile).energy);
}

#[test]
fn denser_spikes_cost_more_energy() {
    let sparse = traced_ops(40, 0.05);
    let dense = traced_ops(40, 0.5);
    assert!(dense.synaptic_ops > sparse.synaptic_ops);
    // Neuron updates are density-independent (dense membrane updates).
    assert_eq!(dense.neuron_updates, sparse.neuron_updates);
}

#[test]
fn orderings_are_profile_invariant() {
    let a = traced_ops(20, 0.2);
    let b = traced_ops(60, 0.2);
    for profile in [
        HardwareProfile::embedded(),
        HardwareProfile::loihi_like(),
        HardwareProfile::edge_gpu_like(),
    ] {
        let ca = CostReport::of(&a, &profile);
        let cb = CostReport::of(&b, &profile);
        assert!(cb.latency > ca.latency, "profile {}", profile.name);
        assert!(cb.energy > ca.energy, "profile {}", profile.name);
    }
}

#[test]
fn scenario_costs_decompose_into_prep_plus_epochs() {
    let mut config = ScenarioConfig::smoke();
    config.seed = 777;
    config.pretrain_epochs = 4;
    config.cl_epochs = 3;
    let (network, acc) = cache::pretrained_network(&config).expect("pretrain");
    let r = scenario::run_method(&config, &MethodSpec::spiking_lr(2), &network, acc).unwrap();

    let mut manual = r.prep_ops;
    for e in &r.epochs {
        manual += e.ops;
    }
    assert_eq!(manual, r.total_ops());

    // The replay read traffic appears every epoch.
    for e in &r.epochs {
        assert!(e.ops.mem_read_bits >= r.memory.payload_bits_per_sample);
    }
    // Preparation wrote the latent store.
    assert!(r.prep_ops.mem_write_bits > 0);
}

#[test]
fn spiking_lr_pays_decompression_replay4ncl_does_not() {
    let mut config = ScenarioConfig::smoke();
    config.seed = 778;
    config.pretrain_epochs = 4;
    config.cl_epochs = 3;
    let (network, acc) = cache::pretrained_network(&config).expect("pretrain");

    let sota = scenario::run_method(&config, &MethodSpec::spiking_lr(2), &network, acc).unwrap();
    let ours = scenario::run_method(
        &config,
        &MethodSpec::replay4ncl(2, config.data.steps * 2 / 5).with_lr_divisor(2.0),
        &network,
        acc,
    )
    .unwrap();

    let sota_epoch_codec = sota.epochs[0].ops.codec_frames;
    let ours_epoch_codec = ours.epochs[0].ops.codec_frames;
    assert!(
        sota_epoch_codec > ours_epoch_codec,
        "SpikingLR re-expands per epoch: {sota_epoch_codec} vs {ours_epoch_codec}"
    );
}

#[test]
fn baseline_is_cheaper_than_replay_methods() {
    // Fig. 2(a): replay costs a multiple of the no-NCL baseline.
    let mut config = ScenarioConfig::smoke();
    config.seed = 779;
    config.pretrain_epochs = 4;
    config.cl_epochs = 3;
    let (network, acc) = cache::pretrained_network(&config).expect("pretrain");
    let baseline = scenario::run_method(&config, &MethodSpec::baseline(), &network, acc).unwrap();
    let sota = scenario::run_method(&config, &MethodSpec::spiking_lr(3), &network, acc).unwrap();
    let b = baseline.total_cost();
    let s = sota.total_cost();
    assert!(s.normalized_latency(&b) > 1.0);
    assert!(s.normalized_energy(&b) > 1.0);
}
