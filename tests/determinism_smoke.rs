//! Workspace-level determinism smoke test.
//!
//! Every figure binary and bench assumes the seeded-RNG contract: the same
//! `ScenarioConfig` (same seed) produces bit-identical results, including
//! across the trainer's parallel per-sample gradient workers. This test
//! runs the full smoke pipeline twice — deliberately bypassing
//! `replay4ncl::cache` so pre-training itself is exercised both times —
//! and asserts the outcomes are identical.

use replay4ncl::{methods::MethodSpec, phases, scenario, ScenarioConfig};

fn config() -> ScenarioConfig {
    let mut c = ScenarioConfig::smoke();
    c.seed = 0x0D0C_5EED;
    c.pretrain_epochs = 4;
    c.cl_epochs = 6;
    c.batch_size = 4;
    c
}

#[test]
fn same_seed_same_results_end_to_end() {
    let config = config();
    let spec = MethodSpec::replay4ncl(2, (config.data.steps * 2 / 5).max(1));

    let run = || {
        let pre = phases::pretrain(&config).expect("pretrain");
        let result =
            scenario::run_method(&config, &spec, &pre.network, pre.test_acc).expect("scenario");
        (pre.test_acc, pre.epoch_losses, result)
    };

    let (acc_a, losses_a, result_a) = run();
    let (acc_b, losses_b, result_b) = run();

    assert_eq!(
        acc_a.to_bits(),
        acc_b.to_bits(),
        "pre-training accuracy must be bit-identical"
    );
    assert_eq!(
        losses_a, losses_b,
        "per-epoch pre-training losses must be identical"
    );
    assert_eq!(
        result_a, result_b,
        "full scenario results (accuracy/ops/memory) must be identical"
    );
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the degenerate way to pass the test above: a pipeline
    // that ignores its seed entirely.
    let mut a = config();
    let mut b = config();
    b.seed ^= 1;
    a.pretrain_epochs = 2;
    b.pretrain_epochs = 2;
    let la = phases::pretrain(&a).expect("pretrain a").epoch_losses;
    let lb = phases::pretrain(&b).expect("pretrain b").epoch_losses;
    assert_ne!(
        la, lb,
        "changing the seed must change the training trajectory"
    );
}
