//! Worker-count invariance of the experiment engine.
//!
//! The `ncl_runtime` engine promises that a suite's report is a pure
//! function of the suite — worker count and completion order must not
//! leak into the results. This extends the seeded-RNG contract of
//! `determinism_smoke.rs` to the concurrency layer: the same smoke suite
//! is run with 1, 2 and 4 workers and the three serialized `SuiteReport`s
//! must be **byte-identical** (not merely approximately equal — float
//! summation order and result assembly are part of the contract).

use ncl_runtime::{suites, Engine, Job, Suite};
use replay4ncl::{MethodSpec, ScenarioConfig};

fn smoke_suite() -> Suite {
    let mut config = ScenarioConfig::smoke();
    config.pretrain_epochs = 3;
    config.cl_epochs = 3;
    config.seed = 0x1A4B_0DE7;
    let t_star = (config.data.steps * 2 / 5).max(1);

    // 8 jobs: both replay methods at every insertion layer (6 cells, the
    // Fig. 10 grid in miniature) plus the baseline and a naive reduction.
    let methods = [MethodSpec::spiking_lr(2), MethodSpec::replay4ncl(2, t_star)];
    let mut suite = suites::insertion_sweep(&config, &methods);
    suite.name = "determinism-smoke".into();
    suite.push(Job::new("baseline", config.clone(), MethodSpec::baseline()));
    suite.push(Job::new(
        "naive-reduction",
        config,
        MethodSpec::spiking_lr_reduced(2, t_star / 2),
    ));
    suite
}

#[test]
fn worker_count_does_not_change_the_report() {
    let suite = smoke_suite();
    assert_eq!(suite.len(), 8, "the acceptance grid is 8 jobs");

    let serialized: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            Engine::new(workers)
                .run(&suite)
                .expect("suite runs")
                .to_json()
                .to_json()
        })
        .collect();

    assert_eq!(
        serialized[0], serialized[1],
        "1 vs 2 workers must serialize byte-identically"
    );
    assert_eq!(
        serialized[0], serialized[2],
        "1 vs 4 workers must serialize byte-identically"
    );
    // Sanity: the report actually contains all 8 jobs.
    let parsed = serde_json::from_str(&serialized[0]).expect("valid JSON");
    assert_eq!(
        parsed
            .get("jobs")
            .and_then(serde_json::Value::as_array)
            .map(Vec::len),
        Some(8)
    );
}

#[test]
fn engine_matches_the_serial_scenario_driver() {
    // The engine is plumbing, not methodology: a job's result must equal
    // what `scenario::run_method` produces directly.
    let mut config = ScenarioConfig::smoke();
    config.pretrain_epochs = 3;
    config.cl_epochs = 3;
    config.seed = 0x1A4B_0DE8;
    let method = MethodSpec::replay4ncl(2, (config.data.steps * 2 / 5).max(1));

    let suite = Suite::new("one-job").with_job(Job::new("cell", config.clone(), method.clone()));
    let report = Engine::new(2).run(&suite).expect("suite runs");

    let (network, pretrain_acc) = replay4ncl::cache::pretrained_network(&config).expect("pretrain");
    let direct = replay4ncl::scenario::run_method(&config, &method, &network, pretrain_acc)
        .expect("scenario");

    assert_eq!(report.jobs[0].result, direct);
}
