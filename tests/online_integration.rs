//! End-to-end tests of the online continual-learning daemon: a live
//! `OnlineLearner` + `ncl-serve` pair ingests a stream, learns a novel
//! class, hot-swaps under prediction load with zero failures, survives a
//! kill/restore cycle bit-exactly, and produces byte-identical
//! checkpoints at every worker count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ncl_online::daemon::{OnlineConfig, OnlineLearner};
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_online::Checkpoint;
use ncl_serve::client::NclClient;
use ncl_serve::protocol;
use ncl_serve::server::{Server, ServerConfig};
use ncl_snn::serialize;
use serde_json::Value;

/// Daemon + stream configuration small enough for debug-mode CI but
/// still exercising every path (bounded store, known-class refresh,
/// novel arrival, increment, checkpoint).
fn test_config(parallelism: usize) -> (OnlineConfig, StreamConfig) {
    let mut config = OnlineConfig::smoke();
    config.scenario.pretrain_epochs = 4;
    config.scenario.cl_epochs = 3;
    config.scenario.parallelism = parallelism;
    config.arrival_threshold = 3;
    let stream = StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: 10,
        total_events: 26,
        novel_every: 2,
        seed: 0x0DDB,
    };
    (config, stream)
}

fn temp_checkpoint(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ncl-online-integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn live_daemon_learns_swaps_without_drops_and_restores_bit_exactly() {
    let (mut config, stream_config) = test_config(2);
    let ckpt_path = temp_checkpoint("live-daemon.ckpt");
    std::fs::remove_file(&ckpt_path).ok();
    config.checkpoint_path = Some(ckpt_path.clone());
    let stream = SampleStream::generate(&stream_config).unwrap();

    let mut learner = OnlineLearner::bootstrap(config.clone()).unwrap();
    let server = Server::start(learner.registry(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Background prediction traffic spanning bootstrap-serving, the
    // increment's training window and the hot swap itself.
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let probe = stream.events()[0].raster.clone();
    let traffic = {
        let (stop, ok, failed) = (Arc::clone(&stop), Arc::clone(&ok), Arc::clone(&failed));
        std::thread::spawn(move || {
            let Ok(mut client) = NclClient::connect(addr) else {
                failed.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let mut id = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match client.round_trip(&protocol::predict_request_line(id, &probe)) {
                    Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                id += 1;
            }
        })
    };

    let summary = learner.run_stream(&stream).unwrap();
    assert!(
        !summary.increments.is_empty(),
        "the novel class must trigger an increment"
    );
    assert_eq!(summary.events_applied, stream.len());
    assert_eq!(learner.version(), 2);
    assert_eq!(
        learner.registry().version(),
        2,
        "the increment hot-swapped into the serving registry"
    );
    assert!(learner.known_classes().contains(&stream.novel_class()));

    // The swapped model must actually serve over the wire.
    let mut client = NclClient::connect(addr).unwrap();
    let pong = client.ping().unwrap();
    assert_eq!(pong.get("model_version").and_then(Value::as_u64), Some(2));

    stop.store(true, Ordering::Relaxed);
    traffic.join().unwrap();
    assert!(ok.load(Ordering::Relaxed) > 0, "traffic flowed");
    assert_eq!(
        failed.load(Ordering::Relaxed),
        0,
        "zero dropped predictions across training + hot swap"
    );
    server.shutdown();

    // "Kill" the daemon: capture its state, drop it, restore from the
    // checkpoint the increment wrote. Everything must come back
    // bit-identically.
    learner.write_checkpoint().unwrap();
    let model_bytes = serialize::to_bytes(learner.network());
    let buffer_before = learner.buffer().clone();
    let (cursor, version, digest) = (learner.cursor(), learner.version(), learner.event_digest());
    let checkpoint_bytes = learner.checkpoint_bytes();
    drop(learner);

    let restored = OnlineLearner::resume(config).unwrap();
    assert_eq!(
        serialize::to_bytes(restored.network()),
        model_bytes,
        "restored model is byte-identical"
    );
    assert_eq!(
        restored.buffer(),
        &buffer_before,
        "restored replay buffer is identical"
    );
    assert_eq!(restored.cursor(), cursor);
    assert_eq!(restored.version(), version);
    assert_eq!(restored.event_digest(), digest);
    assert_eq!(
        restored.registry().version(),
        version,
        "wire-visible model_version must not regress across a restart"
    );
    assert_eq!(
        restored.checkpoint_bytes(),
        checkpoint_bytes,
        "re-encoded checkpoint is byte-identical (canonical form)"
    );
    // The restored daemon keeps going: feeding it the already-consumed
    // stream applies nothing, a longer stream resumes mid-way.
    let mut restored = restored;
    let replay_summary = restored.run_stream(&stream).unwrap();
    assert_eq!(replay_summary.events_applied, 0);
    std::fs::remove_file(&ckpt_path).ok();
}

#[test]
fn one_and_four_worker_runs_write_byte_identical_checkpoints() {
    let mut checkpoints = Vec::new();
    let mut digests = Vec::new();
    for parallelism in [1usize, 4] {
        let (config, stream_config) = test_config(parallelism);
        let stream = SampleStream::generate(&stream_config).unwrap();
        let mut learner = OnlineLearner::bootstrap(config).unwrap();
        let summary = learner.run_stream(&stream).unwrap();
        assert!(!summary.increments.is_empty());
        checkpoints.push(learner.checkpoint_bytes());
        digests.push(learner.event_digest());
    }
    assert_eq!(digests[0], digests[1], "event logs agree");
    assert_eq!(
        checkpoints[0], checkpoints[1],
        "1-worker and 4-worker daemons must checkpoint byte-identically"
    );
}

#[test]
fn mid_pending_checkpoint_resumes_identically_to_an_uninterrupted_run() {
    let (config, stream_config) = test_config(2);
    let stream = SampleStream::generate(&stream_config).unwrap();

    // Find an event index where novel samples are pending but the
    // threshold has not fired yet (warmup 10, novel every 2nd, threshold
    // 3: the first arrival is seq 10, so cutting after seq 12 leaves 2
    // pending).
    let cut = 13u64;

    // Run A: uninterrupted.
    let mut uninterrupted = OnlineLearner::bootstrap(config.clone()).unwrap();
    uninterrupted.run_stream(&stream).unwrap();

    // Run B: checkpoint mid-pending, "die", resume, finish.
    let ckpt_path = temp_checkpoint("mid-pending.ckpt");
    std::fs::remove_file(&ckpt_path).ok();
    let mut cfg_b = config;
    cfg_b.checkpoint_path = Some(ckpt_path.clone());
    let mut first_half = OnlineLearner::bootstrap(cfg_b.clone()).unwrap();
    for event in stream.events().iter().take(cut as usize) {
        first_half.ingest(event).unwrap();
    }
    assert!(
        first_half.pending_samples() > 0,
        "the cut must land mid-arrival for this test to bite"
    );
    first_half.write_checkpoint().unwrap();
    drop(first_half);
    let mut resumed = OnlineLearner::resume(cfg_b).unwrap();
    assert!(resumed.pending_samples() > 0, "pending latents restored");
    resumed.run_stream(&stream).unwrap();

    assert_eq!(resumed.event_digest(), uninterrupted.event_digest());
    assert_eq!(
        resumed.checkpoint_bytes(),
        uninterrupted.checkpoint_bytes(),
        "a mid-pending kill/resume must converge to the uninterrupted run's exact state"
    );
    std::fs::remove_file(&ckpt_path).ok();
}

#[test]
fn corrupted_checkpoint_files_never_restore() {
    let (mut config, stream_config) = test_config(2);
    let ckpt_path = temp_checkpoint("corrupt-restore.ckpt");
    std::fs::remove_file(&ckpt_path).ok();
    config.checkpoint_path = Some(ckpt_path.clone());
    let stream = SampleStream::generate(&stream_config).unwrap();
    let mut learner = OnlineLearner::bootstrap(config.clone()).unwrap();
    learner.run_stream(&stream).unwrap();
    learner.write_checkpoint().unwrap();
    drop(learner);

    let good = std::fs::read(&ckpt_path).unwrap();
    assert!(Checkpoint::from_bytes(&good).is_ok());
    // One flipped byte anywhere — header, model, RLE payload, CRC — must
    // fail the restore; spot-check positions across every region.
    for i in [0, 9, 47, good.len() / 3, good.len() / 2, good.len() - 1] {
        let mut corrupt = good.clone();
        corrupt[i] ^= 0x10;
        std::fs::write(&ckpt_path, &corrupt).unwrap();
        assert!(
            OnlineLearner::resume(config.clone()).is_err(),
            "corruption at byte {i} restored"
        );
    }
    std::fs::remove_file(&ckpt_path).ok();
}
