//! Worker-count invariance of the training pool.
//!
//! The `ncl_snn` trainer promises that trained weights are a pure
//! function of (network, samples, options, rng seed) — the persistent
//! worker pool, the per-worker arenas and the recycled gradient buffers
//! must not leak scheduling or buffer-reuse effects into the results.
//! This extends the engine contract of `engine_determinism.rs` down to
//! the gradient level: the same training run at 1, 2 and 4 workers must
//! produce **byte-identical** serialized models, and all of them must be
//! byte-identical to the seed-era per-sample-allocation reference path
//! (`train_epoch_reference`), which the zero-allocation rewrite kept as
//! its oracle.

use ncl_snn::optimizer::Optimizer;
use ncl_snn::trainer::{self, TrainOptions, TrainScratch};
use ncl_snn::{serialize, Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;

/// A small but non-trivial training setup: recurrent net, two classes,
/// batch size that does not divide the sample count.
fn setup() -> (Network, Vec<(SpikeRaster, u16)>) {
    let config = NetworkConfig {
        input_size: 12,
        hidden_sizes: vec![14, 10],
        output_size: 3,
        recurrent: true,
        lif: ncl_snn::LifConfig::default(),
        readout: ncl_snn::ReadoutConfig::default(),
        seed: 0xD0_0DAD,
    };
    let net = Network::new(config).unwrap();
    let mut rng = Rng::seed_from_u64(77);
    let data = (0..22)
        .map(|i| {
            let label = (i % 3) as u16;
            let raster = SpikeRaster::from_fn(12, 16, |n, _| {
                (n % 3 == label as usize) && rng.bernoulli(0.5)
            });
            (raster, label)
        })
        .collect();
    (net, data)
}

fn train(parallelism: usize, reference: bool) -> (Vec<u8>, Vec<trainer::EpochReport>) {
    let (mut net, data) = setup();
    let refs: Vec<(&SpikeRaster, u16)> = data.iter().map(|(r, l)| (r, *l)).collect();
    let mut optimizer = Optimizer::adam(2e-3);
    let options = TrainOptions {
        batch_size: 5,
        parallelism,
        ..TrainOptions::default()
    };
    let mut rng = Rng::seed_from_u64(0x5EED);
    let mut scratch = TrainScratch::new();
    let mut reports = Vec::new();
    for _ in 0..4 {
        let report = if reference {
            trainer::train_epoch_reference(&mut net, &refs, &mut optimizer, &options, &mut rng)
                .unwrap()
        } else {
            trainer::train_epoch_with(
                &mut net,
                &refs,
                &mut optimizer,
                &options,
                &mut rng,
                &mut scratch,
            )
            .unwrap()
        };
        reports.push(report);
    }
    (serialize::to_bytes(&net), reports)
}

#[test]
fn worker_count_does_not_change_trained_weights() {
    let (reference_bytes, reference_reports) = train(1, true);
    for workers in [1usize, 2, 4] {
        let (bytes, reports) = train(workers, false);
        assert_eq!(
            bytes, reference_bytes,
            "{workers}-worker pool must serialize byte-identically to the reference path"
        );
        assert_eq!(
            reports, reference_reports,
            "{workers}-worker epoch reports must equal the reference path"
        );
    }
}
