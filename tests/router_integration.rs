//! End-to-end sharded-serving integration: a live learner + two
//! follower replicas behind an `ncl_router::Router`, over real TCP.
//! One follower is killed mid-load (the acceptance bar: zero failed
//! requests — failover absorbs the loss), the learner runs a real
//! continual-learning increment, and the surviving follower converges
//! to the learner's published checkpoint **bit-identically** via the
//! delta path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::publish::DeltaPublisher;
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_online::Checkpoint;
use ncl_router::backend::Backend;
use ncl_router::replica::{FollowerReplica, LearnerReplica};
use ncl_router::router::{Router, RouterConfig};
use ncl_serve::client::NclClient;
use ncl_serve::protocol;
use ncl_serve::server::{Server, ServerConfig};
use ncl_serve::sync::ReplicaSync;
use serde_json::Value;

/// Same debug-CI-sized configuration the online integration tests use:
/// small enough to bootstrap in seconds, big enough to produce a real
/// increment (novel class + threshold arrivals) on this stream.
fn test_config() -> (OnlineConfig, StreamConfig) {
    let mut config = OnlineConfig::smoke();
    config.scenario.pretrain_epochs = 4;
    config.scenario.cl_epochs = 3;
    config.scenario.parallelism = 2;
    config.arrival_threshold = 3;
    let stream = StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: 10,
        total_events: 26,
        novel_every: 2,
        seed: 0x0DDB,
    };
    (config, stream)
}

struct FollowerNode {
    replica: Arc<FollowerReplica>,
    server: Server,
}

/// Boots a follower from checkpoint *bytes* — the exact payload a cold
/// replica would fetch over the wire.
fn start_follower(bytes: &[u8]) -> FollowerNode {
    let ckpt = Checkpoint::from_bytes(bytes).expect("decode bootstrap checkpoint");
    let replica = Arc::new(FollowerReplica::new(ckpt));
    let sync: Arc<dyn ReplicaSync> = Arc::clone(&replica) as Arc<dyn ReplicaSync>;
    let server = Server::start_with_sync(replica.registry(), ServerConfig::default(), Some(sync))
        .expect("follower server");
    FollowerNode { replica, server }
}

#[test]
fn fleet_survives_replica_loss_and_converges_bit_identically() {
    let (config, stream_config) = test_config();
    let stream = SampleStream::generate(&stream_config).unwrap();

    // Learner replica: daemon + delta publisher + replication handler.
    let mut learner = OnlineLearner::bootstrap(config).unwrap();
    let publisher = Arc::new(DeltaPublisher::new(learner.checkpoint()));
    let learner_sync: Arc<dyn ReplicaSync> = Arc::new(LearnerReplica::new(Arc::clone(&publisher)));
    let learner_server = Server::start_with_sync(
        learner.registry(),
        ServerConfig::default(),
        Some(learner_sync),
    )
    .unwrap();

    // Two followers from the learner's bootstrap bytes (identical
    // configs yield bit-identical bases — the delta chain's anchor).
    let bootstrap = learner.checkpoint_bytes();
    let survivor = start_follower(&bootstrap);
    let casualty = start_follower(&bootstrap);

    let backends = vec![
        Arc::new(Backend::new(0, learner_server.local_addr())),
        Arc::new(Backend::new(1, survivor.server.local_addr())),
        Arc::new(Backend::new(2, casualty.server.local_addr())),
    ];
    let router = Router::start(
        backends,
        RouterConfig {
            sync_interval: Duration::from_millis(20),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let addr = router.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let probe = stream.events()[0].raster.clone();
    let load: Vec<_> = (0..2)
        .map(|_| {
            let (stop, ok, failed) = (Arc::clone(&stop), Arc::clone(&ok), Arc::clone(&failed));
            let probe = probe.clone();
            std::thread::spawn(move || {
                let Ok(mut client) = NclClient::connect(addr) else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let mut id = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match client.round_trip(&protocol::predict_request_line(id, &probe)) {
                        Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    id += 1;
                }
            })
        })
        .collect();

    // Let load reach the whole fleet, then kill one follower mid-load.
    // Failover must absorb the loss without a single failed request.
    std::thread::sleep(Duration::from_millis(120));
    casualty.server.shutdown();

    // Run the learning stream; publish a delta after each increment.
    let mut increments = 0usize;
    let mut last_delta_bytes = 0usize;
    for event in stream.events_from(learner.cursor()) {
        if let IngestOutcome::Increment(_) = learner.ingest(event).unwrap() {
            increments += 1;
            last_delta_bytes = publisher.publish(learner.checkpoint()).unwrap();
        }
    }
    assert!(increments >= 1, "the stream must produce an increment");
    assert!(last_delta_bytes > 0, "increments must publish deltas");
    assert!(
        last_delta_bytes < publisher.checkpoint_bytes().len(),
        "a delta must be smaller than the full checkpoint"
    );

    // The router's sync loop relays the deltas; wait for the surviving
    // follower to serve the learner's exact version.
    let target = learner.version();
    let deadline = Instant::now() + Duration::from_secs(20);
    while survivor.replica.registry().version() < target {
        assert!(
            Instant::now() < deadline,
            "follower stuck at v{} (learner at v{target})",
            survivor.replica.registry().version()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    std::thread::sleep(Duration::from_millis(80));
    stop.store(true, Ordering::Relaxed);
    for handle in load {
        handle.join().unwrap();
    }
    assert!(ok.load(Ordering::Relaxed) > 0, "load made progress");
    assert_eq!(
        failed.load(Ordering::Relaxed),
        0,
        "killing a replica mid-load must not fail a single request"
    );

    // The survivor's serialized state matches the learner's published
    // checkpoint byte for byte, and it got there on the delta path.
    router.sync_now();
    assert_eq!(
        survivor.replica.checkpoint_bytes(),
        publisher.checkpoint_bytes(),
        "follower must converge bit-identically"
    );
    assert!(
        survivor.replica.deltas_applied() >= 1,
        "convergence must use the delta path, not full-checkpoint fallback"
    );

    // Router-side accounting: nothing failed, the dead replica is
    // marked unhealthy, and the live ones serve the learner's version.
    let mut control = NclClient::connect(addr).unwrap();
    let stats = control.stats().unwrap();
    let serving = stats.get("serving").expect("serving block");
    assert_eq!(serving.get("routed").and_then(Value::as_bool), Some(true));
    assert_eq!(
        serving.get("requests_failed").and_then(Value::as_u64),
        Some(0)
    );
    let replicas = stats
        .get("replicas")
        .and_then(Value::as_array)
        .expect("replicas table")
        .clone();
    assert_eq!(replicas.len(), 3);
    let healthy_at_target = replicas
        .iter()
        .filter(|r| {
            r.get("healthy").and_then(Value::as_bool) == Some(true)
                && r.get("model_version").and_then(Value::as_u64) == Some(target)
        })
        .count();
    assert_eq!(healthy_at_target, 2, "learner + survivor at v{target}");
    assert!(
        replicas
            .iter()
            .any(|r| r.get("healthy").and_then(Value::as_bool) == Some(false)),
        "the killed replica must be marked unhealthy"
    );

    router.shutdown();
    learner_server.shutdown();
    survivor.server.shutdown();
}

#[test]
fn metrics_op_merges_the_fleet_and_stats_marks_unreachable_replicas() {
    use ncl_serve::registry::ModelRegistry;
    use ncl_snn::{Network, NetworkConfig};

    let make_server = || {
        let network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        let registry = Arc::new(ModelRegistry::new(network, "test"));
        Server::start(registry, ServerConfig::default()).unwrap()
    };
    let alive = make_server();
    let doomed = make_server();
    let backends = vec![
        Arc::new(Backend::new(0, alive.local_addr())),
        Arc::new(Backend::with_timeout(
            1,
            doomed.local_addr(),
            Duration::from_millis(500),
        )),
    ];
    let router = Router::start(backends, RouterConfig::default()).unwrap();
    doomed.shutdown();
    let mut client = NclClient::connect(router.local_addr()).unwrap();

    // One fleet view: the router's own series plus the live replica's
    // scrape under replica="0", with per-replica up/down gauges.
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.get("ok").and_then(Value::as_bool), Some(true));
    let text = metrics
        .get("exposition")
        .and_then(Value::as_str)
        .expect("exposition text");
    assert!(
        text.contains("serve_requests_ok_total{replica=\"0\"}"),
        "replica scrape must be relabeled and merged in:\n{text}"
    );
    assert!(text.contains("router_replica_up{replica=\"0\"} 1"));
    assert!(text.contains("router_replica_up{replica=\"1\"} 0"));
    let ticks = text
        .lines()
        .find_map(|l| l.strip_prefix("router_sync_ticks_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("router_sync_ticks_total sample");
    assert!(ticks >= 1, "the sync loop must have ticked");

    // Stats fan-out: the dead replica appears as an unreachable row
    // carrying the transport error, not as a silently dropped entry.
    let stats = client.stats().unwrap();
    let replicas = stats
        .get("replicas")
        .and_then(Value::as_array)
        .expect("replicas table")
        .clone();
    assert_eq!(replicas.len(), 2);
    let row = |id: u64| {
        replicas
            .iter()
            .find(|r| r.get("id").and_then(Value::as_u64) == Some(id))
            .expect("replica row")
    };
    assert!(row(0).get("unreachable").is_none());
    assert_eq!(
        row(1).get("unreachable").and_then(Value::as_bool),
        Some(true)
    );
    assert!(
        !row(1)
            .get("error")
            .and_then(Value::as_str)
            .expect("error string")
            .is_empty(),
        "the unreachable row must say why"
    );

    router.shutdown();
    alive.shutdown();
}

#[test]
fn router_refuses_swaps_and_reports_fleet_health() {
    let (config, _) = test_config();
    let learner = OnlineLearner::bootstrap(config).unwrap();
    let follower = start_follower(&learner.checkpoint_bytes());

    let backends = vec![Arc::new(Backend::new(0, follower.server.local_addr()))];
    let router = Router::start(backends, RouterConfig::default()).unwrap();
    let mut client = NclClient::connect(router.local_addr()).unwrap();

    // File-based swaps are a single-replica op; the fleet converges via
    // deltas instead, so the router refuses rather than forwarding.
    let reply = client
        .round_trip(r#"{"op":"swap","path":"nope.bin"}"#)
        .unwrap();
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(false));

    let health = client.round_trip(r#"{"op":"health"}"#).unwrap();
    assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        health.get("role").and_then(Value::as_str),
        Some("router"),
        "health must identify the router role"
    );
    assert_eq!(
        health.get("replicas_healthy").and_then(Value::as_u64),
        Some(1)
    );

    // Shutting the router down leaves the replica itself serving.
    let bye = client.shutdown().unwrap();
    assert_eq!(bye.get("ok").and_then(Value::as_bool), Some(true));
    router.wait();
    let mut direct = NclClient::connect(follower.server.local_addr()).unwrap();
    assert_eq!(
        direct.ping().unwrap().get("ok").and_then(Value::as_bool),
        Some(true)
    );
    follower.server.shutdown();
}
