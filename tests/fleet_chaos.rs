//! Deterministic chaos for the elastic fleet.
//!
//! Everything here is seeded: the sample stream, the training, and the
//! fault schedule ([`FaultPlan`]) are all deterministic functions of
//! fixed seeds, so each scenario replays the exact same failure
//! history on every run. The scenarios are the robustness acceptance
//! bar for the elastic fleet:
//!
//! * kill (partition) the learner mid-stream under live client load —
//!   the router must promote the most caught-up follower, the promoted
//!   replica must continue the deterministic stream from its applied
//!   checkpoint, the deposed learner must be demoted (not split-brain)
//!   when it returns, and the survivors must converge **byte-for-byte**
//!   with a never-faulted reference run;
//! * flap membership (leave + rejoin) under load;
//! * partition a follower until the learner's delta ring no longer
//!   covers its lag — catch-up must fall back to a full checkpoint,
//!   and both paths must be counted in the router's sync stats;
//! * through all of it: **zero failed client requests** and no
//!   client-visible `model_version` regression.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::publish::DeltaPublisher;
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_online::Checkpoint;
use ncl_router::backend::Backend;
use ncl_router::faults::{FaultAction, FaultPlan, FaultRule};
use ncl_router::replica::{ElasticReplica, FollowerReplica, LearnerReplica};
use ncl_router::router::{Router, RouterConfig};
use ncl_serve::client::NclClient;
use ncl_serve::protocol;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::server::{Server, ServerConfig};
use ncl_serve::sync::ReplicaSync;
use serde_json::Value;

/// Debug-CI-sized config: bootstraps in seconds, still produces a real
/// increment. The deliberately small delta ring makes ring overflow
/// reachable in a test.
fn test_config() -> (OnlineConfig, StreamConfig) {
    let mut config = OnlineConfig::smoke();
    config.scenario.pretrain_epochs = 4;
    config.scenario.cl_epochs = 3;
    config.scenario.parallelism = 2;
    config.arrival_threshold = 3;
    config.delta_ring = 2;
    let stream = StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: 10,
        total_events: 26,
        novel_every: 2,
        seed: 0x0DDB,
    };
    (config, stream)
}

struct Node {
    replica: Arc<ElasticReplica>,
    server: Server,
}

/// Boots an elastic follower from the shared bootstrap checkpoint and
/// mounts it on a live server.
fn start_node(
    config: &OnlineConfig,
    bootstrap: &Checkpoint,
    stream: &SampleStream,
    pace: Duration,
) -> Node {
    let obs = Arc::new(ncl_obs::Registry::new());
    let replica = Arc::new(
        ElasticReplica::follower(
            config.clone(),
            bootstrap.clone(),
            stream.clone(),
            pace,
            Arc::clone(&obs),
        )
        .unwrap(),
    );
    replica.register_into(&obs);
    let sync: Arc<dyn ReplicaSync> = Arc::clone(&replica) as Arc<dyn ReplicaSync>;
    let server =
        Server::start_with_obs(replica.registry(), ServerConfig::default(), Some(sync), obs)
            .unwrap();
    Node { replica, server }
}

fn poll_until(deadline_secs: u64, what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn learner_kill_promotes_a_follower_and_survivors_converge_bit_identically() {
    let (config, stream_config) = test_config();
    let stream = SampleStream::generate(&stream_config).unwrap();

    // The never-faulted reference: bootstrap once, ingest the whole
    // stream. Determinism makes its final checkpoint the bytes every
    // survivor of the chaos below must end on.
    let mut reference = OnlineLearner::bootstrap(config.clone()).unwrap();
    let bootstrap = reference.checkpoint();
    // Survivors converge to the last *published* checkpoint — the state
    // at the final increment. The learner's live state keeps drifting
    // after it (cursor/pending advance on non-increment events), so
    // capture the reference bytes at the increment, not at stream end.
    let mut expected = Vec::new();
    for event in stream.events_from(reference.cursor()) {
        if let IngestOutcome::Increment(_) = reference.ingest(event).unwrap() {
            expected = reference.checkpoint_bytes();
        }
    }
    let target = reference.version();
    assert!(target > 1, "the stream must produce an increment");

    // Three elastic replicas from the identical bootstrap; replica 0 is
    // pre-promoted to learner at epoch 1 and starts ingesting.
    let pace = Duration::from_millis(20);
    let nodes: Vec<Node> = (0..3)
        .map(|_| start_node(&config, &bootstrap, &stream, pace))
        .collect();
    nodes[0].replica.promote(1).unwrap();

    // Seeded fault plan: a low-probability predict delay exercises the
    // injection path under load; partitions drive the actual chaos.
    let plan = Arc::new(FaultPlan::with_rules(
        0xC4A05,
        vec![FaultRule::every(0.2, FaultAction::Delay(Duration::from_millis(1))).on_op("predict")],
    ));
    let backends: Vec<Arc<Backend>> = nodes
        .iter()
        .enumerate()
        .map(|(id, node)| Arc::new(Backend::new(id, node.server.local_addr())))
        .collect();
    for backend in &backends {
        // Fast breaker recovery so healed partitions are re-probed
        // promptly (the default backoff is tuned for real deployments).
        backend.configure_breaker(Duration::from_millis(20), Duration::from_millis(100));
    }
    let router = Router::start_with_faults(
        backends,
        RouterConfig {
            sync_interval: Duration::from_millis(25),
            failover_ticks: 2,
            ..RouterConfig::default()
        },
        Some(Arc::clone(&plan)),
    )
    .unwrap();
    let addr = router.local_addr();

    // Client load for the whole scenario: count outcomes and watch for
    // any per-connection model_version regression.
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let regressed = Arc::new(AtomicBool::new(false));
    let probe = stream.events()[0].raster.clone();
    let load: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&ok);
            let failed = Arc::clone(&failed);
            let regressed = Arc::clone(&regressed);
            let probe = probe.clone();
            std::thread::spawn(move || {
                let Ok(mut client) = NclClient::connect(addr) else {
                    failed.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let mut id = 0u64;
                let mut last_version = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match client.round_trip(&protocol::predict_request_line(id, &probe)) {
                        Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            let version = reply
                                .get("model_version")
                                .and_then(Value::as_u64)
                                .unwrap_or(0);
                            if version < last_version {
                                regressed.store(true, Ordering::Relaxed);
                            }
                            last_version = version;
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    id += 1;
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));

    // Flap membership under load: replica 2 leaves, then rejoins under
    // a fresh id (ids are never reused).
    let mut control = NclClient::connect(addr).unwrap();
    let left = control.leave(2).unwrap();
    assert_eq!(left.get("ok").and_then(Value::as_bool), Some(true));
    std::thread::sleep(Duration::from_millis(40));
    let rejoined = control
        .join(&nodes[2].server.local_addr().to_string())
        .unwrap();
    assert_eq!(rejoined.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        rejoined.get("id").and_then(Value::as_u64),
        Some(3),
        "a rejoin is a new incarnation, not a resurrected id"
    );
    std::thread::sleep(Duration::from_millis(40));

    // Kill the learner: a partition black-holes replica 0 entirely.
    // Well before its first increment (paced events make the increment
    // land seconds in), so the whole learning run happens post-failover.
    plan.partition(0);
    poll_until(30, "the router to promote a follower", || {
        router.promotions() >= 1
    });
    assert_eq!(router.epoch(), 2, "promotion must bump the fleet epoch");
    assert_eq!(
        nodes[1].replica.role(),
        "learner",
        "the most caught-up follower (lowest id on ties) must be promoted"
    );

    // The deposed learner returns: it still claims learner at epoch 1,
    // which is behind the fleet — it must be demoted, not re-elected.
    plan.heal(0);
    poll_until(30, "the returning learner to be demoted", || {
        router.demotions() >= 1
    });
    poll_until(30, "the deposed learner to step down", || {
        nodes[0].replica.role() == "follower"
    });

    // The promoted learner continues the deterministic stream; every
    // survivor must land on the reference run's exact bytes.
    poll_until(120, "every survivor to reach the reference version", || {
        nodes
            .iter()
            .all(|n| n.replica.registry().version() >= target)
    });
    poll_until(30, "byte-identical convergence", || {
        nodes
            .iter()
            .all(|n| n.replica.checkpoint_bytes() == expected)
    });

    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for handle in load {
        handle.join().unwrap();
    }
    assert!(ok.load(Ordering::Relaxed) > 0, "load made progress");
    assert_eq!(
        failed.load(Ordering::Relaxed),
        0,
        "learner death + membership flapping must not fail a single request"
    );
    assert!(
        !regressed.load(Ordering::Relaxed),
        "clients must never observe a model_version regression"
    );
    assert!(plan.injected() >= 1, "the fault plan must have fired");

    // Cold join: a brand-new replica bootstraps from the fleet's
    // current checkpoint, fetched through the router's learner relay,
    // then registers itself — and is already byte-identical.
    let ck = control.checkpoint().unwrap();
    assert_eq!(ck.get("ok").and_then(Value::as_bool), Some(true));
    let payload = protocol::from_hex(ck.get("payload").and_then(Value::as_str).unwrap()).unwrap();
    let obs = Arc::new(ncl_obs::Registry::new());
    let cold = Arc::new(
        ElasticReplica::from_checkpoint_bytes(
            config,
            &payload,
            stream.clone(),
            pace,
            Arc::clone(&obs),
        )
        .unwrap(),
    );
    let cold_sync: Arc<dyn ReplicaSync> = Arc::clone(&cold) as Arc<dyn ReplicaSync>;
    let cold_server = Server::start_with_obs(
        cold.registry(),
        ServerConfig::default(),
        Some(cold_sync),
        obs,
    )
    .unwrap();
    let joined = control.join(&cold_server.local_addr().to_string()).unwrap();
    assert_eq!(joined.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(joined.get("id").and_then(Value::as_u64), Some(4));
    assert_eq!(cold.registry().version(), target);
    assert_eq!(cold.checkpoint_bytes(), expected);
    let members = control.members().unwrap();
    let rows = members
        .get("members")
        .and_then(Value::as_array)
        .expect("members table")
        .len();
    assert_eq!(rows, 4, "replicas 0, 1, rejoined 3 and cold-joined 4");

    router.shutdown();
    cold_server.shutdown();
    for node in nodes {
        node.server.shutdown();
    }
}

/// A hand-built checkpoint at `version` with distinct weights, so
/// deltas between versions are non-empty. Lets the ring tests walk many
/// versions without paying for real training.
fn synth(version: u64) -> Checkpoint {
    use ncl_snn::{Network, NetworkConfig};
    use ncl_spike::memory::Alignment;
    use replay4ncl::buffer::LatentReplayBuffer;

    let mut network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
    network
        .visit_trainable_mut(1, |slice| {
            for v in slice.iter_mut() {
                *v += version as f32 * 0.01;
            }
        })
        .unwrap();
    Checkpoint {
        version,
        cursor: version * 10,
        event_digest: version ^ 0xAB,
        config_digest: 42,
        known_classes: vec![0, 1],
        network,
        buffer: LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 8_192),
        pending: Vec::new(),
    }
}

/// A synthetic learner fleet: a ring-limited publisher fronted by a
/// real server, whose registry is bumped alongside every publish (what
/// the learner's internal swap does in production).
struct SynthLearner {
    publisher: Arc<DeltaPublisher>,
    registry: Arc<ModelRegistry>,
    server: Server,
}

fn start_synth_learner(ring: usize) -> SynthLearner {
    let base = synth(1);
    let registry = Arc::new(ModelRegistry::with_initial_version(
        base.network.clone(),
        "synth",
        1,
    ));
    let publisher = Arc::new(DeltaPublisher::with_ring(base, ring));
    let sync: Arc<dyn ReplicaSync> = Arc::new(LearnerReplica::new(Arc::clone(&publisher)));
    let server =
        Server::start_with_sync(Arc::clone(&registry), ServerConfig::default(), Some(sync))
            .unwrap();
    SynthLearner {
        publisher,
        registry,
        server,
    }
}

impl SynthLearner {
    fn advance_to(&self, version: u64) {
        let ckpt = synth(version);
        let network = ckpt.network.clone();
        while self.publisher.version() < version {
            let next = self.publisher.version() + 1;
            self.publisher.publish(synth(next)).unwrap();
        }
        self.registry
            .swap_network_at(network, "synth", version)
            .unwrap();
    }
}

fn start_synth_follower() -> (Arc<FollowerReplica>, Server) {
    let replica = Arc::new(FollowerReplica::new(synth(1)));
    let sync: Arc<dyn ReplicaSync> = Arc::clone(&replica) as Arc<dyn ReplicaSync>;
    let server =
        Server::start_with_sync(replica.registry(), ServerConfig::default(), Some(sync)).unwrap();
    (replica, server)
}

#[test]
fn follower_partitioned_past_ring_depth_catches_up_via_full_sync() {
    const RING: usize = 2;
    let learner = start_synth_learner(RING);
    let (follower, follower_server) = start_synth_follower();

    let plan = Arc::new(FaultPlan::new(0xFA117));
    let backends = vec![
        Arc::new(Backend::new(0, learner.server.local_addr())),
        Arc::new(Backend::new(1, follower_server.local_addr())),
    ];
    for backend in &backends {
        backend.configure_breaker(Duration::from_millis(1), Duration::from_millis(1));
    }
    let router = Router::start_with_faults(
        backends,
        RouterConfig {
            // Driven manually with sync_now(): deterministic tick count.
            sync_interval: Duration::from_secs(3600),
            ..RouterConfig::default()
        },
        Some(Arc::clone(&plan)),
    )
    .unwrap();

    // Partition the follower, then advance the learner far enough that
    // the ring no longer reaches the follower's version.
    plan.partition(1);
    learner.advance_to(1 + RING as u64 + 1);
    router.sync_now();
    assert_eq!(follower.registry().version(), 1, "partitioned: no progress");
    assert!(plan.injected() >= 1, "the partition must have dropped ops");

    // Heal. The follower's base (v1) fell out of the ring, so catch-up
    // must take the full-checkpoint path — and be counted as such.
    plan.heal(1);
    std::thread::sleep(Duration::from_millis(5));
    router.sync_now();
    assert_eq!(follower.registry().version(), 1 + RING as u64 + 1);
    assert_eq!(follower.full_syncs(), 1, "catch-up used the full-sync path");
    assert_eq!(follower.deltas_applied(), 0);
    assert_eq!(router.sync_stats().full_syncs.get(), 1);
    assert_eq!(
        follower.checkpoint_bytes(),
        learner.publisher.checkpoint_bytes(),
        "full sync must land on the learner's exact bytes"
    );

    router.shutdown();
    learner.server.shutdown();
    follower_server.shutdown();
}

#[test]
fn delta_ring_covers_lag_up_to_capacity_and_full_syncs_past_it() {
    const RING: usize = 2;
    let learner = start_synth_learner(RING);
    let (near, near_server) = start_synth_follower();
    let (far, far_server) = start_synth_follower();

    let backends = vec![
        Arc::new(Backend::new(0, learner.server.local_addr())),
        Arc::new(Backend::new(1, near_server.local_addr())),
    ];
    let router = Router::start(
        backends,
        RouterConfig {
            sync_interval: Duration::from_secs(3600),
            ..RouterConfig::default()
        },
    )
    .unwrap();

    // Lag exactly == capacity: every needed delta is still retained, so
    // the follower walks up one delta per tick, never full-syncing.
    learner.advance_to(1 + RING as u64);
    for _ in 0..RING {
        router.sync_now();
    }
    assert_eq!(near.registry().version(), 1 + RING as u64);
    assert_eq!(near.deltas_applied(), RING as u64, "deltas only");
    assert_eq!(near.full_syncs(), 0, "lag == capacity must not full-sync");

    // One more publish pushes the second follower's base out of the
    // ring: lag == capacity + 1 must fall back to a full checkpoint.
    // It joins the live fleet over the wire (the elastic path).
    learner.advance_to(2 + RING as u64);
    let mut control = NclClient::connect(router.local_addr()).unwrap();
    let joined = control.join(&far_server.local_addr().to_string()).unwrap();
    assert_eq!(joined.get("ok").and_then(Value::as_bool), Some(true));
    router.sync_now();
    assert_eq!(far.registry().version(), 2 + RING as u64);
    assert_eq!(far.full_syncs(), 1, "lag == capacity + 1 must full-sync");
    assert_eq!(far.deltas_applied(), 0);
    assert_eq!(
        far.checkpoint_bytes(),
        learner.publisher.checkpoint_bytes(),
        "either path must converge bit-identically"
    );

    router.shutdown();
    learner.server.shutdown();
    near_server.shutdown();
    far_server.shutdown();
}
