//! End-to-end distributed-tracing integration: one traced predict
//! through `ncl-router` fronting two real replicas over TCP must come
//! back from the router's `traces` op as a **single stitched trace** —
//! router `route`/`dispatch` spans parenting the serving replica's
//! `accept`/`queue_wait`/`forward`/`reply` spans, zero orphans, and
//! every child interval nested inside its parent on the unified
//! timeline.
//!
//! Determinism leans on the tail sampler's counter starting at zero:
//! the first completed trace on every node is always kept, so the very
//! first traced predict is guaranteed to be fully captured on both the
//! router and whichever replica served it.

use std::sync::Arc;
use std::time::Duration;

use ncl_obs::TraceContext;
use ncl_router::backend::Backend;
use ncl_router::router::{Router, RouterConfig};
use ncl_serve::client::NclClient;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::server::{Server, ServerConfig};
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::SpikeRaster;
use serde_json::Value;

fn start_replica(seed: u64) -> Server {
    let mut config = NetworkConfig::tiny(8, 3);
    config.seed = seed;
    let registry = Arc::new(ModelRegistry::new(
        Network::new(config).unwrap(),
        "trace-test",
    ));
    Server::start(registry, ServerConfig::default()).unwrap()
}

/// The stitched span with the given stage, if present.
fn span_with_stage<'a>(spans: &'a [Value], stage: &str) -> Option<&'a Value> {
    spans
        .iter()
        .find(|s| s.get("stage").and_then(Value::as_str) == Some(stage))
}

#[test]
fn routed_predict_stitches_into_one_multi_hop_trace() {
    let replica_a = start_replica(11);
    let replica_b = start_replica(11);
    let backends = vec![
        Arc::new(Backend::new(0, replica_a.local_addr())),
        Arc::new(Backend::new(1, replica_b.local_addr())),
    ];
    let router = Router::start(
        backends,
        RouterConfig {
            sync_interval: Duration::from_millis(50),
            ..RouterConfig::default()
        },
    )
    .unwrap();

    let mut client = NclClient::connect(router.local_addr()).unwrap();
    let raster = SpikeRaster::from_fn(8, 12, |n, t| (n + t) % 3 == 0);
    let ctx = TraceContext {
        trace_id: 0x7777_0001,
        parent: None,
    };
    let reply = client.predict_traced(1, &raster, &ctx).unwrap();
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(true),
        "traced predict answered: {reply:?}"
    );

    // A few untraced predicts ride along untouched by tracing.
    for id in 2..5 {
        let plain = client.predict(id, &raster).unwrap();
        assert_eq!(plain.get("ok").and_then(Value::as_bool), Some(true));
    }

    let traces = client.traces(0, 16).unwrap();
    assert_eq!(traces.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(
        traces.get("stitched").and_then(Value::as_bool),
        Some(true),
        "the router serves stitched traces"
    );
    let list = traces.get("traces").and_then(Value::as_array).unwrap();
    let ours: Vec<&Value> = list
        .iter()
        .filter(|t| t.get("id").and_then(Value::as_str) == Some("00000000000000000000000077770001"))
        .collect();
    assert_eq!(
        ours.len(),
        1,
        "exactly one stitched trace for the traced predict, got {list:?}"
    );
    let trace = ours[0];
    assert_eq!(
        trace.get("orphan_spans").and_then(Value::as_u64),
        Some(0),
        "no span lost its parent chain: {trace:?}"
    );
    let spans = trace.get("spans").and_then(Value::as_array).unwrap();

    // The full hop chain: router route/dispatch over replica-side
    // accept/queue_wait/forward/reply.
    let route = span_with_stage(spans, "route").expect("route span");
    let dispatch = span_with_stage(spans, "dispatch").expect("dispatch span");
    let accept = span_with_stage(spans, "accept").expect("accept span");
    for stage in ["queue_wait", "forward", "reply"] {
        assert!(
            span_with_stage(spans, stage).is_some(),
            "missing {stage} span in {spans:?}"
        );
    }
    assert_eq!(
        route.get("node").and_then(Value::as_str),
        Some("router"),
        "route span recorded by the router"
    );
    assert!(
        accept
            .get("node")
            .and_then(Value::as_str)
            .is_some_and(|n| n.starts_with("replica-")),
        "accept span recorded by a replica: {accept:?}"
    );
    assert!(route.get("parent").is_none(), "route is the trace root");
    assert_eq!(
        dispatch.get("parent").and_then(Value::as_str),
        route.get("id").and_then(Value::as_str),
        "dispatch parents under route"
    );
    assert_eq!(
        accept.get("parent").and_then(Value::as_str),
        dispatch.get("id").and_then(Value::as_str),
        "accept parents under dispatch (context crossed the wire)"
    );

    // Containment on the unified timeline: every child interval nests
    // inside its parent's, and the root covers every hop.
    let interval = |span: &Value| -> (u64, u64) {
        let start = span.get("start_us").and_then(Value::as_u64).unwrap();
        let duration = span.get("duration_us").and_then(Value::as_u64).unwrap();
        (start, start + duration)
    };
    for span in spans {
        let Some(parent_id) = span.get("parent").and_then(Value::as_str) else {
            continue;
        };
        let parent = spans
            .iter()
            .find(|s| s.get("id").and_then(Value::as_str) == Some(parent_id))
            .expect("parent present in stitched span list");
        let (child_start, child_end) = interval(span);
        let (parent_start, parent_end) = interval(parent);
        assert!(
            child_start >= parent_start && child_end <= parent_end,
            "child escapes parent: {span:?} vs {parent:?}"
        );
    }
    let (root_start, root_end) = interval(route);
    assert_eq!(root_start, 0, "the root starts the unified timeline");
    assert_eq!(
        trace.get("duration_us").and_then(Value::as_u64),
        Some(root_end),
        "trace duration is the root's"
    );

    router.shutdown();
    replica_a.shutdown();
    replica_b.shutdown();
}
