//! Cross-crate pipeline tests: dataset → SNN → latent capture → codec →
//! buffer → training, exercising the seams between crates rather than the
//! scenario driver.

use ncl_data::generator::{self, ShdLikeConfig};
use ncl_data::split::{replay_subset, ClassIncrementalSplit};
use ncl_snn::adaptive::{AdaptivePolicy, ThresholdMode, ThresholdSchedule};
use ncl_snn::optimizer::Optimizer;
use ncl_snn::trainer::{self, TrainOptions};
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::codec::{self, CompressionFactor};
use ncl_spike::memory::Alignment;
use ncl_spike::resample::{resample, ResampleStrategy};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};

fn dataset_config() -> ShdLikeConfig {
    let mut c = ShdLikeConfig::smoke_test();
    c.seed = 1_234;
    c
}

fn network_for(c: &ShdLikeConfig) -> Network {
    let mut nc = NetworkConfig::tiny(c.channels, c.classes as usize);
    nc.hidden_sizes = vec![20, 12];
    Network::new(nc).expect("valid tiny config")
}

#[test]
fn generated_data_flows_through_the_network() {
    let dc = dataset_config();
    let data = generator::generate(&dc).unwrap();
    let net = network_for(&dc);
    for sample in data.iter().take(5) {
        let logits = net.forward(&sample.raster).unwrap();
        assert_eq!(logits.len(), dc.classes as usize);
        assert!(logits.iter().all(|l| l.is_finite()));
    }
}

#[test]
fn latent_capture_compress_store_replay_roundtrip() {
    let dc = dataset_config();
    let data = generator::generate(&dc).unwrap();
    let net = network_for(&dc);
    let split = ClassIncrementalSplit::hold_out_last(dc.classes).unwrap();
    let mut rng = Rng::seed_from_u64(5);
    let replay_set = replay_subset(&data, &split, 2, &mut rng).unwrap();

    let mut buffer = LatentReplayBuffer::new(Alignment::Byte);
    for s in &replay_set {
        let act = net.activations_at(1, &s.raster).unwrap();
        let compressed = codec::compress(&act, CompressionFactor::new(2).unwrap());
        buffer.push(LatentEntry::compressed(compressed, s.label));
    }
    assert_eq!(buffer.len(), replay_set.len());

    // Decompressed replay rasters must feed back into the learning stages.
    let samples = buffer.replay_samples(true).unwrap();
    for (raster, label) in &samples {
        assert_eq!(raster.steps(), dc.steps);
        let logits = net.forward_from(1, raster, None).unwrap();
        assert_eq!(logits.len(), dc.classes as usize);
        assert!(*label < dc.classes - 1, "replay holds only old classes");
    }
}

#[test]
fn reduced_timestep_pipeline_preserves_labels_and_shapes() {
    let dc = dataset_config();
    let data = generator::generate(&dc).unwrap();
    let net = network_for(&dc);
    let t_star = dc.steps * 2 / 5;

    for s in data.iter().take(4) {
        // Replay4NCL path: decimate input, frozen stages at T*, adaptive
        // threshold derived from the decimated input.
        let reduced = resample(&s.raster, t_star, ResampleStrategy::Decimate).unwrap();
        assert_eq!(reduced.steps(), t_star);
        let schedule = ThresholdSchedule::adaptive(&reduced, &AdaptivePolicy::default()).unwrap();
        let act = net
            .activations_at_scheduled(1, &reduced, Some(&schedule))
            .unwrap();
        assert_eq!(act.steps(), t_star);
        let logits = net.forward_from(1, &act, Some(&schedule)).unwrap();
        assert!(logits.iter().all(|l| l.is_finite()));
    }
}

#[test]
fn training_on_replayed_activations_reduces_loss() {
    let dc = dataset_config();
    let data = generator::generate(&dc).unwrap();
    let mut net = network_for(&dc);
    let split = ClassIncrementalSplit::hold_out_last(dc.classes).unwrap();
    let mut rng = Rng::seed_from_u64(9);
    let replay_set = replay_subset(&data, &split, 3, &mut rng).unwrap();

    // Capture stage-1 activations as the training stream.
    let acts: Vec<(SpikeRaster, u16)> = replay_set
        .iter()
        .map(|s| (net.activations_at(1, &s.raster).unwrap(), s.label))
        .collect();
    let refs: Vec<(&SpikeRaster, u16)> = acts.iter().map(|(r, l)| (r, *l)).collect();

    let mut opt = Optimizer::adam(2e-3);
    let options = TrainOptions {
        from_stage: 1,
        batch_size: 4,
        parallelism: 2,
        threshold_mode: ThresholdMode::Constant,
    };
    let mut train_rng = Rng::seed_from_u64(11);
    let mut losses = Vec::new();
    let mut scratch = trainer::TrainScratch::new();
    for _ in 0..8 {
        let report = trainer::train_epoch_with(
            &mut net,
            &refs,
            &mut opt,
            &options,
            &mut train_rng,
            &mut scratch,
        )
        .unwrap();
        losses.push(report.mean_loss);
    }
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "loss should decrease: {losses:?}"
    );
}

#[test]
fn serialized_network_reproduces_predictions() {
    let dc = dataset_config();
    let data = generator::generate(&dc).unwrap();
    let net = network_for(&dc);
    let bytes = ncl_snn::serialize::to_bytes(&net);
    let restored = ncl_snn::serialize::from_bytes(&bytes).unwrap();
    for s in data.iter().take(6) {
        assert_eq!(
            net.predict(&s.raster).unwrap(),
            restored.predict(&s.raster).unwrap(),
            "restored network must predict identically"
        );
    }
}

#[test]
fn codec_and_resample_compose() {
    // Storage at T* via decimation equals codec-compressing by the exact
    // ratio when the ratio is integral.
    let raster = SpikeRaster::from_fn(10, 60, |n, t| (n * 3 + t) % 7 == 0);
    let via_resample = resample(&raster, 30, ResampleStrategy::Decimate).unwrap();
    let via_codec = codec::compress(&raster, CompressionFactor::new(2).unwrap());
    assert_eq!(&via_resample, via_codec.frames());
}
