//! Quickstart: run the full Replay4NCL class-incremental pipeline on a
//! small synthetic scenario, end to end, in a few seconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use replay4ncl::{cache, methods::MethodSpec, report, scenario, NclError, ScenarioConfig};

fn main() -> Result<(), NclError> {
    // 1. A small but structurally-faithful scenario: SHD-like event data,
    //    a recurrent spiking network, 3+1 class-incremental split.
    let mut config = ScenarioConfig::smoke();
    config.cl_epochs = 20;
    println!(
        "scenario: {} channels, {} classes, T={}, network {:?}",
        config.data.channels, config.data.classes, config.data.steps, config.network.hidden_sizes
    );

    // 2. Pre-train on all classes except the last (cached across runs).
    let (network, pretrain_acc) = cache::pretrained_network(&config)?;
    println!(
        "pre-trained old-class accuracy: {}",
        report::pct(pretrain_acc)
    );

    // 3. Learn the held-out class with Replay4NCL: latent activations of
    //    old classes stored at a reduced timestep (T* = 2/5 T), adaptive
    //    firing threshold, careful learning rate.
    let t_star = config.data.steps * 2 / 5;
    let method = MethodSpec::replay4ncl(6, t_star).with_lr_divisor(2.0);
    let result = scenario::run_method(&config, &method, &network, pretrain_acc)?;

    // 4. Inspect the outcome.
    println!("{}", report::summarize(&result));
    for record in result.epochs.iter().step_by(3) {
        println!(
            "  epoch {:>2}: old {} | new {} | loss {:.3}",
            record.epoch,
            report::pct(record.old_acc),
            report::pct(record.new_acc),
            record.mean_loss
        );
    }
    println!(
        "latent memory: {:.2} KiB for {} stored samples",
        result.memory.kib(),
        result.memory.samples
    );
    Ok(())
}
