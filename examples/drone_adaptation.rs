//! The paper's Fig. 1(b) use case: an SNN-based mobile agent (e.g. a
//! drone) deployed in a changing environment must learn a new signal class
//! in the field without forgetting its pre-trained repertoire — and
//! without the time/energy budget of full retraining.
//!
//! This example stages that story: deployment, environment change,
//! on-device adaptation with Replay4NCL vs naive fine-tuning.
//!
//! ```sh
//! cargo run --release --example drone_adaptation
//! ```

use replay4ncl::{cache, methods::MethodSpec, report, scenario, NclError, ScenarioConfig};

fn main() -> Result<(), NclError> {
    let mut config = ScenarioConfig::smoke();
    config.cl_epochs = 20;
    config.insertion_layer = 1;
    let known = config.data.classes - 1;

    println!("== phase 1: factory pre-training ==");
    let (network, pretrain_acc) = cache::pretrained_network(&config)?;
    println!(
        "drone ships with {known} known acoustic classes; accuracy {}",
        report::pct(pretrain_acc)
    );

    println!();
    println!("== phase 2: deployed — a new signal class appears ==");
    println!("class {known} was never seen in training; the drone must adapt in the field.");

    println!();
    println!("== phase 3a: naive on-device fine-tuning ==");
    let naive = scenario::run_method(&config, &MethodSpec::baseline(), &network, pretrain_acc)?;
    println!(
        "new class learned to {}, but old classes collapse to {} (forgetting {})",
        report::pct(naive.final_new_acc()),
        report::pct(naive.final_old_acc()),
        report::pct(naive.forgetting()),
    );

    println!();
    println!("== phase 3b: on-device adaptation with Replay4NCL ==");
    let t_star = config.data.steps * 2 / 5;
    let method = MethodSpec::replay4ncl(6, t_star).with_lr_divisor(2.0);
    let ours = scenario::run_method(&config, &method, &network, pretrain_acc)?;
    let cost = ours.total_cost();
    println!(
        "new class learned to {}, old classes kept at {} (forgetting {})",
        report::pct(ours.final_new_acc()),
        report::pct(ours.final_old_acc()),
        report::pct(ours.forgetting()),
    );
    println!(
        "adaptation budget: latency {}, energy {}, {:.2} KiB of latent memory",
        cost.latency,
        cost.energy,
        ours.memory.kib()
    );

    println!();
    let naive_cost = naive.total_cost();
    let energy_delta = cost.energy.joules() / naive_cost.energy.joules() - 1.0;
    let energy_verdict = if energy_delta <= 0.0 {
        format!("while spending {:.1}% LESS energy", -100.0 * energy_delta)
    } else {
        format!("for {:.1}% extra energy", 100.0 * energy_delta)
    };
    println!(
        "verdict: Replay4NCL keeps the mission-critical old classes alive {energy_verdict} \
         than naive fine-tuning ({} vs {}), instead of losing {} of accuracy.",
        cost.energy,
        naive_cost.energy,
        report::pct(naive.forgetting()),
    );
    Ok(())
}
