//! Parallel grid sweep: run the method × insertion-layer grid through the
//! `ncl_runtime` engine and print the aggregated suite report.
//!
//! ```sh
//! cargo run --release --example parallel_sweep
//! ```
//!
//! The same grid that `fig10_insertion_sweep` renders as paper tables is
//! built here with the shared suite builder and executed on a worker
//! pool, with progress streamed to stderr. Re-run with any worker count —
//! the report is bit-identical, a property `tests/engine_determinism.rs`
//! locks in.

use replay4ncl_repro::replay::{MethodSpec, ScenarioConfig};
use replay4ncl_repro::runtime::{suites, Engine, RuntimeError, StderrProgress};

fn main() -> Result<(), RuntimeError> {
    // 1. A smoke-scale scenario and the two replay methods under
    //    comparison; the suite builder expands them over every insertion
    //    layer (0..=2 here — 6 jobs).
    let mut config = ScenarioConfig::smoke();
    config.cl_epochs = 8;
    let t_star = (config.data.steps * 2 / 5).max(1);
    let methods = [
        MethodSpec::spiking_lr(4),
        MethodSpec::replay4ncl(4, t_star).with_lr_divisor(2.0),
    ];
    let suite = suites::insertion_sweep(&config, &methods);
    println!(
        "suite '{}': {} jobs (methods x insertion layers)",
        suite.name,
        suite.len()
    );

    // 2. Execute on a worker pool. Pre-training runs once — every job
    //    shares the pre-train key, and the cache single-flights the
    //    concurrent workers — then the CL cells proceed in parallel.
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    let report = Engine::new(workers).run_with_events(&suite, &StderrProgress::default())?;

    // 3. One table, one summary — and a determinism spot-check against a
    //    single-worker rerun.
    println!("{}", report.render());
    let serial = Engine::new(1).run(&suite)?;
    assert_eq!(
        report.to_json().to_json(),
        serial.to_json().to_json(),
        "parallel and serial runs must serialize identically"
    );
    println!("(verified: {workers}-worker report is bit-identical to the 1-worker rerun)");
    Ok(())
}
