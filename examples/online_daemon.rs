//! The online daemon, end to end **in one process**: the loop
//! `ncl-learnd` runs as a service, driven here so every stage is
//! observable.
//!
//! 1. Bootstrap: pre-train on the known classes, seed the budgeted
//!    latent store, publish the model as v1 and start `ncl-serve`.
//! 2. Stream: known-class traffic flows (periodically refreshing the
//!    replay store); served accuracy on the unseen class is ~chance.
//! 3. A novel class starts arriving. The daemon captures its latents at
//!    the reduced timestep T*, and at the arrival threshold trains a
//!    Replay4NCL increment — while the TCP server keeps answering.
//! 4. The increment hot-swaps in atomically and writes a checkpoint.
//! 5. The daemon is "killed" and resumed from the checkpoint: model,
//!    replay store, cursor and event digest come back bit-identically.
//!
//! ```sh
//! cargo run --release --example online_daemon
//! ```

use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_serve::client::NclClient;
use ncl_serve::server::{Server, ServerConfig};
use ncl_snn::serialize;
use ncl_spike::SpikeRaster;
use replay4ncl::{phases, report};
use serde_json::Value;

/// Accuracy of the *served* model over labeled samples, via TCP.
fn served_accuracy(client: &mut NclClient, samples: &[(SpikeRaster, u16)]) -> std::io::Result<f64> {
    let mut correct = 0usize;
    for (i, (raster, label)) in samples.iter().enumerate() {
        let reply = client.predict(i as u64, raster)?;
        if reply.get("prediction").and_then(Value::as_u64) == Some(u64::from(*label)) {
            correct += 1;
        }
    }
    Ok(correct as f64 / samples.len().max(1) as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Bootstrap + serve -------------------------------------------
    let mut config = OnlineConfig::smoke();
    config.scenario.cl_epochs = 16;
    let ckpt_dir = std::env::temp_dir().join("ncl-online-daemon-example");
    std::fs::create_dir_all(&ckpt_dir)?;
    let ckpt_path = ckpt_dir.join("daemon.ckpt");
    std::fs::remove_file(&ckpt_path).ok();
    config.checkpoint_path = Some(ckpt_path.clone());

    let mut learner = OnlineLearner::bootstrap(config.clone())?;
    println!(
        "bootstrapped: {} known classes at {} test accuracy, {} latent entries ({} bits budget)",
        learner.known_classes().len(),
        report::pct(learner.pretrain_acc()),
        learner.buffer().len(),
        config.capacity_bits.unwrap_or(0),
    );
    let server = Server::start(learner.registry(), ServerConfig::default())?;
    let addr = server.local_addr();
    println!("serving on {addr} (model v{})", learner.version());

    // Held-out test traffic, decimated to the method's operating
    // timestep T* (what the deployed device feeds the network).
    let data = phases::scenario_data(&config.scenario)?;
    let split = phases::scenario_split(&config.scenario)?;
    let operate = |dataset: &ncl_data::Dataset| -> Result<Vec<(SpikeRaster, u16)>, _> {
        dataset
            .iter()
            .map(|s| {
                phases::method_input(&s.raster, &config.method, &config.scenario)
                    .map(|(r, _)| (r, s.label))
            })
            .collect::<Result<Vec<_>, replay4ncl::NclError>>()
    };
    let old_test = operate(&split.pretrain_subset(&data.test))?;
    let new_test = operate(&split.continual_subset(&data.test))?;

    let mut client = NclClient::connect(addr)?;
    println!(
        "served accuracy before the arrival: old classes {}, unseen class {}",
        report::pct(served_accuracy(&mut client, &old_test)?),
        report::pct(served_accuracy(&mut client, &new_test)?),
    );

    // --- 2..4. Stream with a mid-stream novel-class arrival --------------
    let stream = SampleStream::generate(&StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: 20,
        total_events: 56,
        novel_every: 2,
        seed: 0xDAE_A07,
    })?;
    for event in stream.events() {
        match learner.ingest(event)? {
            IngestOutcome::Increment(r) => println!(
                "  seq {:>3}: increment v{} — trained {} samples for {} epochs in {:.0} ms, \
                 hot-swapped in {} µs, checkpointed in {:.1} ms",
                event.seq,
                r.version,
                r.train_samples,
                r.epoch_losses.len(),
                r.train_wall.as_secs_f64() * 1e3,
                r.swap_latency.as_micros(),
                r.checkpoint_wall.as_secs_f64() * 1e3,
            ),
            IngestOutcome::Pending { class, pending } => {
                println!(
                    "  seq {:>3}: novel class {class} ({pending} pending)",
                    event.seq
                );
            }
            _ => {}
        }
    }
    println!(
        "stream done: model v{}, {} replay entries ({} bits), event digest {:016x}",
        learner.version(),
        learner.buffer().len(),
        learner.buffer().footprint().total_bits,
        learner.event_digest(),
    );
    println!(
        "served accuracy after the increment: old classes {}, new class {}",
        report::pct(served_accuracy(&mut client, &old_test)?),
        report::pct(served_accuracy(&mut client, &new_test)?),
    );

    // --- 5. Kill + resume ------------------------------------------------
    learner.write_checkpoint()?;
    let model_before = serialize::to_bytes(learner.network());
    let digest_before = learner.event_digest();
    drop(learner); // the daemon process dies here
    let restored = OnlineLearner::resume(config)?;
    assert_eq!(serialize::to_bytes(restored.network()), model_before);
    assert_eq!(restored.event_digest(), digest_before);
    println!(
        "killed and resumed from {}: model v{} restored bit-identically at cursor {}",
        ckpt_path.display(),
        restored.version(),
        restored.cursor(),
    );

    server.shutdown();
    std::fs::remove_file(&ckpt_path).ok();
    println!("drained and stopped.");
    Ok(())
}
