//! Embedded deployment planning: given latent-memory and energy budgets of
//! a tightly-constrained device (the paper's motivating use case), sweep
//! the Replay4NCL design space (insertion layer × T*) and pick the most
//! accurate configuration that fits.
//!
//! ```sh
//! cargo run --release --example embedded_budget
//! ```

use ncl_hw::HardwareProfile;
use replay4ncl::{cache, methods::MethodSpec, report, scenario, NclError, ScenarioConfig};

/// The device's budgets: latent memory in KiB and CL energy in microjoule.
const MEMORY_BUDGET_KIB: f64 = 4.0;
const ENERGY_BUDGET_UJ: f64 = 120.0;

fn main() -> Result<(), NclError> {
    let mut base = ScenarioConfig::smoke();
    base.cl_epochs = 20;
    base.profile = HardwareProfile::embedded();
    println!(
        "device budgets: latent memory <= {MEMORY_BUDGET_KIB} KiB, CL energy <= {ENERGY_BUDGET_UJ} uJ"
    );

    let t = base.data.steps;
    let mut rows = Vec::new();
    let mut best: Option<(f64, String)> = None;

    for insertion in 1..=base.network.layers() {
        for &t_star in &[t * 3 / 5, t * 2 / 5, t / 5] {
            let mut config = base.clone();
            config.insertion_layer = insertion;
            let (network, pretrain_acc) = cache::pretrained_network(&config)?;
            let method = MethodSpec::replay4ncl(6, t_star).with_lr_divisor(2.0);
            let result = scenario::run_method(&config, &method, &network, pretrain_acc)?;

            let memory_kib = result.memory.kib();
            let energy_uj = result.total_cost().energy.microjoules();
            let fits = memory_kib <= MEMORY_BUDGET_KIB && energy_uj <= ENERGY_BUDGET_UJ;
            let avg_acc = (result.final_old_acc() + result.final_new_acc()) / 2.0;
            let label = format!("insertion {insertion}, T*={t_star}");
            if fits && best.as_ref().is_none_or(|(a, _)| avg_acc > *a) {
                best = Some((avg_acc, label.clone()));
            }
            rows.push(vec![
                label,
                report::pct(result.final_old_acc()),
                report::pct(result.final_new_acc()),
                format!("{memory_kib:.2} KiB"),
                format!("{energy_uj:.1} uJ"),
                if fits { "yes".into() } else { "no".into() },
            ]);
        }
    }

    println!(
        "{}",
        report::render_table(
            &[
                "configuration",
                "old acc",
                "new acc",
                "latent memory",
                "CL energy",
                "fits budget"
            ],
            &rows
        )
    );
    println!();
    match best {
        Some((acc, label)) => println!(
            "selected configuration: {label} (average accuracy {})",
            report::pct(acc)
        ),
        None => println!("no configuration fits the budgets; relax them or shrink the model"),
    }
    Ok(())
}
