//! Lifelong operation (extension beyond the paper): learn several new
//! classes one after another. The latent store grows with each increment,
//! and — because the frozen stages never change — entries captured in
//! earlier increments stay valid.
//!
//! ```sh
//! cargo run --release --example lifelong_increments
//! ```

use replay4ncl::{methods::MethodSpec, report, sequence, NclError, ScenarioConfig};

fn main() -> Result<(), NclError> {
    let mut config = ScenarioConfig::smoke();
    config.cl_epochs = 12;
    config.insertion_layer = 1;
    let increments = 2usize;
    let t_star = config.data.steps * 2 / 5;

    println!(
        "pre-train on {} classes, then learn {} more, one at a time",
        config.data.classes as usize - increments,
        increments
    );

    for method in [
        MethodSpec::baseline(),
        MethodSpec::replay4ncl(6, t_star).with_lr_divisor(2.0),
    ] {
        let result = sequence::run_sequence(&config, &method, increments)?;
        println!();
        println!(
            "== {} (pre-train accuracy {}) ==",
            result.method,
            report::pct(result.pretrain_acc)
        );
        let rows: Vec<Vec<String>> = result
            .increments
            .iter()
            .map(|r| {
                vec![
                    format!("class {}", r.class),
                    report::pct(r.old_acc),
                    report::pct(r.new_acc),
                    report::pct(r.seen_acc),
                    format!("{:.2} KiB", r.memory_bits as f64 / 8192.0),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                &[
                    "increment",
                    "old-classes acc",
                    "new-class acc",
                    "all-seen acc",
                    "latent store"
                ],
                &rows
            )
        );
    }

    println!();
    println!("the replayed run retains earlier increments; the baseline loses them.");
    Ok(())
}
