//! Class-incremental comparison: the no-replay baseline forgets, SpikingLR
//! remembers at full cost, Replay4NCL remembers at a fraction of the
//! latency/energy/memory.
//!
//! ```sh
//! cargo run --release --example class_incremental
//! ```

use replay4ncl::{cache, methods::MethodSpec, report, scenario, NclError, ScenarioConfig};

fn main() -> Result<(), NclError> {
    let mut config = ScenarioConfig::smoke();
    config.cl_epochs = 20;
    config.insertion_layer = 1;

    let (network, pretrain_acc) = cache::pretrained_network(&config)?;
    println!(
        "pre-trained on classes 0..{} -> old-class accuracy {}",
        config.data.classes - 2,
        report::pct(pretrain_acc)
    );
    println!("now learning class {} ...\n", config.data.classes - 1);

    let t_star = config.data.steps * 2 / 5;
    let methods = [
        MethodSpec::baseline(),
        MethodSpec::spiking_lr(6),
        MethodSpec::replay4ncl(6, t_star).with_lr_divisor(2.0),
    ];

    let mut results = Vec::new();
    for method in &methods {
        results.push(scenario::run_method(
            &config,
            method,
            &network,
            pretrain_acc,
        )?);
    }

    let sota_cost = results[1].total_cost();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let cost = r.total_cost();
            vec![
                r.method.clone(),
                report::pct(r.final_old_acc()),
                report::pct(r.final_new_acc()),
                report::pct(r.forgetting()),
                format!("{}", cost.latency),
                format!("{}", cost.energy),
                format!("{:.2} KiB", r.memory.kib()),
                format!("{:.2}x", cost.speedup_vs(&sota_cost)),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "method",
                "old acc",
                "new acc",
                "forgetting",
                "latency",
                "energy",
                "memory",
                "vs SOTA"
            ],
            &rows
        )
    );

    println!();
    println!("baseline forgets; both replay methods preserve the old classes;");
    println!("Replay4NCL does so at reduced timesteps — faster, smaller, cheaper.");
    Ok(())
}
