//! Continual learning **while serving**: the deployment story the paper
//! is built for, end to end.
//!
//! 1. Pre-train a recurrent SNN on the old classes and start `ncl-serve`
//!    on an ephemeral localhost port.
//! 2. Serve live traffic over the NDJSON TCP protocol.
//! 3. Run a Replay4NCL continual-learning increment *while the old model
//!    keeps serving*: capture latent-replay activations at the insertion
//!    layer (reduced timestep T*), mix them with the new class, train
//!    the unfrozen stages.
//! 4. Hot-swap the updated network in through the wire protocol — under
//!    concurrent request load, with zero dropped requests.
//! 5. Keep serving: the new class now classifies, the old classes still
//!    do.
//!
//! ```sh
//! cargo run --release --example continual_serving
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ncl_serve::batcher::BatchConfig;
use ncl_serve::client::NclClient;
use ncl_serve::protocol;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::server::{Server, ServerConfig};
use ncl_snn::optimizer::Optimizer;
use ncl_snn::serialize;
use ncl_snn::trainer::{self, TrainOptions};
use ncl_spike::SpikeRaster;
use replay4ncl::{cache, methods::MethodSpec, phases, report, ScenarioConfig};
use serde_json::Value;

/// Accuracy of the *served* model over labeled samples, via TCP.
fn served_accuracy(
    client: &mut NclClient,
    samples: &[(&SpikeRaster, u16)],
) -> std::io::Result<f64> {
    let mut correct = 0usize;
    for (i, (raster, label)) in samples.iter().enumerate() {
        let reply = client.predict(i as u64, raster)?;
        if reply.get("prediction").and_then(Value::as_u64) == Some(u64::from(*label)) {
            correct += 1;
        }
    }
    Ok(correct as f64 / samples.len().max(1) as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Pre-train (cached across runs) and start serving ------------
    let mut config = ScenarioConfig::smoke();
    config.cl_epochs = 16;
    let (network, pretrain_acc) = cache::pretrained_network(&config)?;
    println!(
        "pre-trained on {} old classes: {} test accuracy",
        config.old_classes(),
        report::pct(pretrain_acc)
    );

    let registry = Arc::new(ModelRegistry::new(network.clone(), "pretrained"));
    let server = Server::start(
        Arc::clone(&registry),
        ServerConfig {
            port: 0,
            batch: BatchConfig::default(),
        },
    )?;
    let addr = server.local_addr();
    println!("serving on {addr} (model v1)");

    // --- 2. Live traffic against the old model --------------------------
    let data = phases::scenario_data(&config)?;
    let split = phases::scenario_split(&config)?;
    let old_test = split.pretrain_subset(&data.test);
    let new_test = split.continual_subset(&data.test);
    let old_refs: Vec<(&SpikeRaster, u16)> = phases::sample_refs(&old_test);
    let new_refs: Vec<(&SpikeRaster, u16)> = phases::sample_refs(&new_test);

    let mut client = NclClient::connect(addr)?;
    let old_before = served_accuracy(&mut client, &old_refs)?;
    let new_before = served_accuracy(&mut client, &new_refs)?;
    println!(
        "served accuracy before increment: old classes {}, unseen class {}",
        report::pct(old_before),
        report::pct(new_before)
    );

    // --- 3. Replay4NCL increment while v1 keeps serving -----------------
    let t_star = (config.data.steps * 2 / 5).max(1);
    let method = MethodSpec::replay4ncl(6, t_star).with_lr_divisor(2.0);
    let mut updated = network.clone();
    let (buffer, _prep_ops) =
        phases::prepare_buffer(&updated, &config, &method, &data.train, &split)?;
    println!(
        "latent store: {} entries at T*={} ({} bits under {:?} alignment)",
        buffer.len(),
        t_star,
        buffer.footprint().total_bits,
        config.alignment,
    );
    let replay_samples = buffer.replay_samples(false)?;
    let cl_train = split.continual_subset(&data.train);
    let (new_samples, _) = phases::new_task_activations(&updated, &config, &method, &cl_train)?;

    let mut optimizer = Optimizer::adam(config.pretrain_lr / method.lr_divisor);
    let options = TrainOptions {
        from_stage: config.insertion_layer,
        batch_size: config.batch_size,
        parallelism: config.parallelism,
        threshold_mode: method.threshold_mode,
    };
    let mut rng = phases::cl_rng(&config);
    let mut train_set: Vec<(&SpikeRaster, u16)> = Vec::new();
    train_set.extend(new_samples.iter().map(|(r, l)| (r, *l)));
    train_set.extend(replay_samples.iter().map(|(r, l)| (r, *l)));
    let mut scratch = trainer::TrainScratch::new();
    for epoch in 0..config.cl_epochs {
        let ep = trainer::train_epoch_with(
            &mut updated,
            &train_set,
            &mut optimizer,
            &options,
            &mut rng,
            &mut scratch,
        )?;
        if epoch % 4 == 0 || epoch + 1 == config.cl_epochs {
            println!("  CL epoch {epoch}: mean loss {:.4}", ep.mean_loss);
        }
    }

    // --- 4. Hot-swap through the wire protocol, under load --------------
    let ckpt_dir = std::env::temp_dir().join("ncl-continual-serving");
    std::fs::create_dir_all(&ckpt_dir)?;
    let ckpt = ckpt_dir.join("increment-1.bin");
    serialize::to_file(&updated, &ckpt)?;

    let stop = AtomicBool::new(false);
    let background_ok = AtomicU64::new(0);
    let background_failed = AtomicU64::new(0);
    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        scope.spawn(|| {
            // Background traffic spanning the swap.
            let Ok(mut bg) = NclClient::connect(addr) else {
                background_failed.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let mut id = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (raster, _) = old_refs[id as usize % old_refs.len()];
                match bg.round_trip(&protocol::predict_request_line(id, raster)) {
                    Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                        background_ok.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        background_failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                id += 1;
            }
        });
        std::thread::sleep(Duration::from_millis(100));
        let mut control = NclClient::connect(addr)?;
        let reply = control.swap(&ckpt.display().to_string())?;
        assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
        println!(
            "hot-swapped to model v{} while serving",
            reply
                .get("model_version")
                .and_then(Value::as_u64)
                .unwrap_or(0)
        );
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;
    println!(
        "background traffic across the swap: {} ok, {} failed",
        background_ok.load(Ordering::Relaxed),
        background_failed.load(Ordering::Relaxed),
    );

    // --- 5. Keep serving: the increment is live -------------------------
    // Replay4NCL trains the unfrozen stages at the reduced operating
    // timestep T*, and the deployed device operates there too (that is
    // the latency/energy win) — so post-increment traffic is decimated
    // to T* before it goes on the wire.
    let operate = |refs: &[(&SpikeRaster, u16)]| -> Result<Vec<(SpikeRaster, u16)>, _> {
        refs.iter()
            .map(|(r, l)| phases::method_input(r, &method, &config).map(|(d, _)| (d, *l)))
            .collect::<Result<Vec<_>, replay4ncl::NclError>>()
    };
    let old_operated = operate(&old_refs)?;
    let new_operated = operate(&new_refs)?;
    let old_after = served_accuracy(
        &mut client,
        &old_operated
            .iter()
            .map(|(r, l)| (r, *l))
            .collect::<Vec<_>>(),
    )?;
    let new_after = served_accuracy(
        &mut client,
        &new_operated
            .iter()
            .map(|(r, l)| (r, *l))
            .collect::<Vec<_>>(),
    )?;
    println!(
        "served accuracy after increment (operating at T*={t_star}): old classes {}, new class {}",
        report::pct(old_after),
        report::pct(new_after)
    );

    let stats = client.stats()?;
    if let Some(serving) = stats.get("serving") {
        println!(
            "server: {} requests, p99 latency {} µs, {} hot swap(s)",
            serving
                .get("requests_ok")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            serving
                .get("latency_us")
                .and_then(|l| l.get("p99"))
                .and_then(Value::as_u64)
                .unwrap_or(0),
            serving.get("swaps").and_then(Value::as_u64).unwrap_or(0),
        );
    }

    std::fs::remove_file(&ckpt).ok();
    server.shutdown();
    println!("drained and stopped.");
    Ok(())
}
