//! Workspace facade for the Replay4NCL reproduction.
//!
//! This root package exists to own the cross-crate integration tests in
//! `tests/` and the runnable walkthroughs in `examples/`; the actual
//! implementation lives in the eight `crates/` members. The facade
//! re-exports each of them under one roof so downstream experiments can
//! depend on a single package.

pub use ncl_bench as bench;
pub use ncl_data as data;
pub use ncl_hw as hw;
pub use ncl_online as online;
pub use ncl_runtime as runtime;
pub use ncl_serve as serve;
pub use ncl_snn as snn;
pub use ncl_spike as spike;
pub use ncl_tensor as tensor;
pub use replay4ncl as replay;
