//! Findings: what a rule reports, how it is keyed against the
//! baseline, and how it renders (human one-liners and machine JSON).

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The reporting rule's name (`panic-freedom`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable symbol the finding anchors to (function name, metric
    /// name, op name) — used for baseline matching so allowlist
    /// entries survive unrelated line drift.
    pub symbol: String,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// The baseline key: `rule:file:symbol`. Deliberately excludes the
    /// line number — a baseline entry tolerates the file shifting
    /// around the allowlisted function.
    #[must_use]
    pub fn key(&self) -> String {
        format!("{}:{}:{}", self.rule, self.file, self.symbol)
    }

    /// `file:line: [rule] message` — the human rendering.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes a string for JSON output (the linter is zero-dependency, so
/// no serde here).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON document:
/// `{"findings":[...],"total":N,"baselined":M}`.
#[must_use]
pub fn render_json(findings: &[Finding], baselined: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"symbol\": \"{}\", \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.symbol),
            json_escape(&f.message),
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"total\": {},\n  \"baselined\": {}\n}}\n",
        findings.len(),
        baselined.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_line_stable() {
        let a = Finding {
            rule: "panic-freedom",
            file: "crates/serve/src/batcher.rs".into(),
            line: 10,
            symbol: "worker_loop".into(),
            message: "x".into(),
        };
        let mut b = a.clone();
        b.line = 99;
        assert_eq!(a.key(), b.key());
        assert_eq!(
            a.key(),
            "panic-freedom:crates/serve/src/batcher.rs:worker_loop"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let f = Finding {
            rule: "strict-decode",
            file: "a.rs".into(),
            line: 1,
            symbol: "f".into(),
            message: "say \"no\"\nplease".into(),
        };
        let json = render_json(std::slice::from_ref(&f), std::slice::from_ref(&f));
        assert!(json.contains(r#"say \"no\"\nplease"#));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"baselined\": 1"));
    }
}
