//! A hand-rolled Rust lexer — just enough tokenization to attribute
//! findings to functions and keep rule patterns out of comments and
//! string literals.
//!
//! There is no `syn` under `vendor/`, and pulling a real parser in for
//! six rules would make the linter heavier than the subsystems it
//! checks. Tokenization is the part that must be *right* (a `panic!`
//! inside a string literal must never fire the panic-freedom rule, a
//! `// SAFETY:` comment must be seen as a comment); item structure on
//! top of the token stream can stay heuristic because the rules only
//! need function boundaries and test/production classification.
//!
//! The lexer is total: any input produces a token stream, malformed
//! source (unterminated strings, stray bytes) degrades into best-effort
//! tokens, and nothing here panics — property-tested against arbitrary
//! input in `tests/lexer_props.rs`.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished so `'a` is never a char literal.
    Lifetime,
    /// Integer literal (`0`, `42usize`, `0xFF`).
    Int,
    /// Float literal (`1.5`, `2e9`).
    Float,
    /// String literal of any flavor: `"..."`, `r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`. The span covers the quotes/hashes.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Line comment, `//` through end of line (text includes the `//`).
    LineComment,
    /// Block comment, `/* ... */`, nesting respected.
    BlockComment,
    /// Any single punctuation byte (`{`, `.`, `!`, `#`, ...).
    Punct,
}

/// One token: kind + byte span + 1-based line of its first byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text. Total: an out-of-range or non-boundary span
    /// (impossible for spans this lexer produced over the same source)
    /// yields `""` instead of panicking.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether this token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == name
    }

    /// Whether this token is this punctuation byte.
    #[must_use]
    pub fn is_punct(&self, src: &str, p: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(p)
    }
}

/// Tokenizes `src`. Whitespace is dropped; comments are kept as tokens
/// (the SAFETY rule reads them). Never panics, for any input.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, counting lines.
    fn bump(&mut self) {
        if self.peek(0) == Some(b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.peek(0).is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment(start, line);
                }
                b'"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Str, start, line);
                }
                b'r' | b'b' if self.raw_or_byte_literal(start, line) => {}
                b'\'' => self.char_or_lifetime(start, line),
                b'0'..=b'9' => self.number(start, line),
                _ if is_ident_start(b) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    /// `/* ... */` with nesting; an unterminated comment swallows the
    /// rest of the file (matching rustc, which rejects it — for lint
    /// purposes the content must stay out of rule matching either way).
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// Consumes a `"..."` body (opening quote already consumed),
    /// honoring `\"` and `\\` escapes. Unterminated: runs to EOF.
    fn string_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Handles `r"`, `r#"`, `b"`, `br#"`, `b'` prefixes. Returns false
    /// if the `r`/`b` turns out to start a plain identifier, leaving
    /// the position untouched.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let mut ahead = 1;
        let mut raw = self.peek(0) == Some(b'r');
        if self.peek(0) == Some(b'b') {
            match self.peek(1) {
                Some(b'\'') => {
                    // Byte char: b'x'. Consume `b` then the char literal.
                    self.bump();
                    self.char_literal_body();
                    self.push(TokenKind::Char, start, line);
                    return true;
                }
                Some(b'r') => {
                    raw = true;
                    ahead = 2;
                }
                _ => {}
            }
        }
        if raw {
            // r or br, then zero or more '#', then '"'.
            let mut hashes = 0usize;
            while self.peek(ahead + hashes) == Some(b'#') {
                hashes += 1;
            }
            if self.peek(ahead + hashes) == Some(b'"') {
                for _ in 0..(ahead + hashes + 1) {
                    self.bump();
                }
                self.raw_string_body(hashes);
                self.push(TokenKind::Str, start, line);
                return true;
            }
            return false; // `r` / `br` identifier-ish (e.g. `r#foo` raw ident is rare; lex as ident)
        }
        // Plain `b"..."` byte string.
        if self.peek(0) == Some(b'b') && self.peek(1) == Some(b'"') {
            self.bump();
            self.bump();
            self.string_body();
            self.push(TokenKind::Str, start, line);
            return true;
        }
        false
    }

    /// Consumes a raw string body up to `"###...` with `hashes` hashes
    /// (no escapes in raw strings). Unterminated: runs to EOF.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut matched = 0;
                while matched < hashes && self.peek(1 + matched) == Some(b'#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// After a `'`: lifetime (`'a`, `'static`) or char literal
    /// (`'x'`, `'\n'`, `'\u{7F}'`).
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        // Lifetime: 'ident NOT followed by a closing quote.
        if self.peek(1).is_some_and(is_ident_start) {
            let mut end = 2;
            while self.peek(end).is_some_and(is_ident_continue) {
                end += 1;
            }
            if self.peek(end) != Some(b'\'') {
                for _ in 0..end {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, start, line);
                return;
            }
        }
        self.char_literal_body();
        self.push(TokenKind::Char, start, line);
    }

    /// Consumes `'...'` (leading quote still pending), with escapes.
    /// A malformed literal consumes at most a handful of bytes.
    fn char_literal_body(&mut self) {
        self.bump(); // opening '
        match self.peek(0) {
            Some(b'\\') => {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                // \u{...}
                while self.peek(0).is_some_and(|c| c != b'\'' && c != b'\n') {
                    self.bump();
                }
            }
            Some(b'\'') | None => {}
            Some(_) => self.bump(),
        }
        if self.peek(0) == Some(b'\'') {
            self.bump();
        }
    }

    fn number(&mut self, start: usize, line: u32) {
        let mut float = false;
        // Prefix forms: 0x / 0o / 0b take alnum+underscore wholesale.
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            self.push(TokenKind::Int, start, line);
            return;
        }
        while let Some(b) = self.peek(0) {
            match b {
                b'0'..=b'9' | b'_' => self.bump(),
                // A dot is part of the number only when followed by a
                // digit (so `batch[0].enqueued` keeps its `.` punct and
                // ranges like `0..n` stay two tokens).
                b'.' if self.peek(1).is_some_and(|c| c.is_ascii_digit()) && !float => {
                    float = true;
                    self.bump();
                }
                b'e' | b'E'
                    if self
                        .peek(1)
                        .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
                        && !float =>
                {
                    float = true;
                    self.bump();
                    self.bump();
                }
                // Type suffixes (u64, f32, usize).
                _ if b.is_ascii_alphabetic() => self.bump(),
                _ => break,
            }
        }
        self.push(
            if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            start,
            line,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_owned()))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r#"let s = "panic!(\"no\")"; // unwrap() here is comment
        /* expect( */ call();"#;
        let toks = kinds(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "call"]);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("panic!")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("unwrap()")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("expect(")));
    }

    #[test]
    fn raw_strings_respect_hashes() {
        let src = r##"let a = r#"contains "quotes" and panic!"#; next()"##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("panic!")));
        assert!(toks.iter().any(|(_, t)| t == "next"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'b'"));
    }

    #[test]
    fn numbers_and_field_access() {
        let src = "batch[0].enqueued + 1.5e3 + 0xFF";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Int && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Float && t == "1.5e3"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Int && t == "0xFF"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "enqueued"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2, "string starts on line 2");
        assert_eq!(toks[2].line, 4, "b is on line 4 (string spans 2-3)");
    }

    #[test]
    fn byte_literals() {
        let src = r#"let a = b"bytes"; let c = b'\n';"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "b'\\n'"));
    }
}
