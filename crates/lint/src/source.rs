//! Item structure on top of the token stream: function boundaries,
//! `#[cfg(test)]` / `#[test]` classification, and the queries rules
//! ask ("is this token production code?", "which function is it in?").

use crate::lexer::{lex, Token, TokenKind};

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, **inclusive of both braces**.
    /// `(0, 0)` for bodyless declarations (trait methods, extern).
    pub body: (usize, usize),
    /// Whether the function is test code: `#[test]`, `#[cfg(test)]`,
    /// or lexically inside a `#[cfg(test)] mod`.
    pub is_test: bool,
}

/// One analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (`crates/serve/src/server.rs`).
    pub path: String,
    /// The raw source.
    pub src: String,
    /// Token stream (comments included, whitespace dropped).
    pub tokens: Vec<Token>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Token-index ranges (inclusive) that are test code.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and structures one file.
    #[must_use]
    pub fn analyze(path: &str, src: String) -> SourceFile {
        let tokens = lex(&src);
        let (fns, test_spans) = structure(&src, &tokens);
        SourceFile {
            path: path.to_owned(),
            src,
            tokens,
            fns,
            test_spans,
        }
    }

    /// Whether the token at `idx` lies in test code.
    #[must_use]
    pub fn is_test_code(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// The innermost function whose body contains token `idx`.
    #[must_use]
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body != (0, 0) && idx >= f.body.0 && idx <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// The symbol a finding at token `idx` should be keyed on: the
    /// enclosing function's name, or `"(file)"` at item level.
    #[must_use]
    pub fn symbol_at(&self, idx: usize) -> String {
        self.enclosing_fn(idx)
            .map_or_else(|| "(file)".to_owned(), |f| f.name.clone())
    }

    /// Non-comment token at or after `idx`.
    #[must_use]
    pub fn skip_comments(&self, mut idx: usize) -> Option<usize> {
        while let Some(t) = self.tokens.get(idx) {
            match t.kind {
                TokenKind::LineComment | TokenKind::BlockComment => idx += 1,
                _ => return Some(idx),
            }
        }
        None
    }
}

/// Walks the token stream once, tracking brace depth, attributes and
/// `#[cfg(test)]` regions, and collecting `fn` items.
fn structure(src: &str, tokens: &[Token]) -> (Vec<FnItem>, Vec<(usize, usize)>) {
    let mut fns: Vec<FnItem> = Vec::new();
    let mut test_spans: Vec<(usize, usize)> = Vec::new();
    // Attribute state since the last item boundary.
    let mut pending_test_attr = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i];
        match t.kind {
            TokenKind::LineComment | TokenKind::BlockComment => {}
            TokenKind::Punct if t.is_punct(src, '#') => {
                // `#[...]` or `#![...]`: scan to the matching bracket,
                // noting test-marking attributes.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct(src, '!')) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct(src, '[')) {
                    let close = match_bracket(src, tokens, j, '[', ']');
                    if attr_marks_test(src, &tokens[j..=close.min(tokens.len() - 1)]) {
                        pending_test_attr = true;
                    }
                    i = close;
                }
            }
            TokenKind::Ident => match t.text(src) {
                "fn" => {
                    let name = tokens
                        .get(i + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map_or_else(String::new, |t| t.text(src).to_owned());
                    let (body, after) = fn_body(src, tokens, i);
                    let is_test =
                        pending_test_attr || test_spans.iter().any(|&(a, b)| i >= a && i <= b);
                    fns.push(FnItem {
                        name,
                        line: t.line,
                        body,
                        is_test,
                    });
                    pending_test_attr = false;
                    // Do NOT skip past the body: nested fns and the
                    // items inside still get visited. Only step over
                    // the name so `fn fn` pathologies cannot loop.
                    let _ = after;
                }
                "mod" => {
                    // `mod name { ... }` — a #[cfg(test)] module marks
                    // its whole body as a test span.
                    if let Some(open) = find_body_open(src, tokens, i + 1) {
                        let close = match_bracket(src, tokens, open, '{', '}');
                        if pending_test_attr {
                            test_spans.push((i, close));
                        }
                    }
                    pending_test_attr = false;
                }
                // Attributes apply to the next item; any other item
                // keyword consumes them.
                "struct" | "enum" | "impl" | "trait" | "use" | "static" | "const" | "type"
                | "macro_rules" => {
                    pending_test_attr = false;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    (fns, test_spans)
}

/// Whether `#[...]` tokens (starting at `[`) mark the next item as
/// test code: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, ...))]`,
/// `#[tokio::test]`-style suffixed test attributes.
fn attr_marks_test(src: &str, attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
        .collect();
    match idents.first() {
        Some(&"test") => true,
        Some(&"cfg") => idents.contains(&"test"),
        _ => idents.last() == Some(&"test"),
    }
}

/// From a `fn` keyword at `i`, finds the body `{ ... }` (token-index
/// range inclusive of braces) or `(0, 0)` if the declaration ends in
/// `;`. Returns `(body, index_after_signature)`.
fn fn_body(src: &str, tokens: &[Token], i: usize) -> ((usize, usize), usize) {
    // Scan forward for the first `{` at angle/paren/bracket depth 0,
    // or a `;` ending a bodyless declaration.
    let mut j = i + 1;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Punct {
            match t.text(src).as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') if paren <= 0 && bracket <= 0 => {
                    let close = match_bracket(src, tokens, j, '{', '}');
                    return ((j, close), close);
                }
                Some(b';') if paren <= 0 && bracket <= 0 => return ((0, 0), j),
                _ => {}
            }
        }
        j += 1;
    }
    ((0, 0), tokens.len())
}

/// First `{` at or after `from` before any `;` (for `mod name {`).
fn find_body_open(src: &str, tokens: &[Token], from: usize) -> Option<usize> {
    let mut j = from;
    while let Some(t) = tokens.get(j) {
        if t.is_punct(src, '{') {
            return Some(j);
        }
        if t.is_punct(src, ';') {
            return None;
        }
        j += 1;
    }
    None
}

/// Index of the bracket matching `open_idx` (which holds `open`).
/// Unbalanced input returns the last token index — total, no panic.
fn match_bracket(src: &str, tokens: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i64;
    let mut j = open_idx;
    while let Some(t) = tokens.get(j) {
        if t.kind == TokenKind::Punct {
            if t.is_punct(src, open) {
                depth += 1;
            } else if t.is_punct(src, close) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::analyze("crates/x/src/lib.rs", src.to_owned())
    }

    #[test]
    fn finds_fns_and_bodies() {
        let f = file("fn alpha() { beta(); }\nfn beta() -> u8 { 7 }\n");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "alpha");
        assert_eq!(f.fns[1].name, "beta");
        assert_eq!(f.fns[1].line, 2);
        // The call to beta() inside alpha's body attributes to alpha.
        let beta_call = f
            .tokens
            .iter()
            .position(|t| t.is_ident(&f.src, "beta"))
            .unwrap();
        assert_eq!(f.enclosing_fn(beta_call).unwrap().name, "alpha");
    }

    #[test]
    fn cfg_test_mod_marks_everything_inside() {
        let f = file(
            "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n",
        );
        assert!(!f.fns[0].is_test);
        assert!(f.fns[1].is_test, "fn inside #[cfg(test)] mod");
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident(&f.src, "unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.is_test_code(unwraps[0]));
        assert!(f.is_test_code(unwraps[1]));
    }

    #[test]
    fn test_attr_marks_only_next_fn() {
        let f = file("#[test]\nfn t() {}\nfn prod() {}\n");
        assert!(f.fns[0].is_test);
        assert!(!f.fns[1].is_test);
    }

    #[test]
    fn where_clauses_and_nested_braces_do_not_confuse_bodies() {
        let f = file(
            "fn generic<T: Into<Vec<u8>>>(x: [u8; 2]) -> u8 where T: Clone { if x[0] > 0 { 1 } else { 0 } }\nfn after() {}\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[1].name, "after");
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let f = file("trait T { fn decl(&self) -> u8; fn with_default(&self) { } }");
        assert_eq!(f.fns[0].body, (0, 0));
        assert_ne!(f.fns[1].body, (0, 0));
    }
}
