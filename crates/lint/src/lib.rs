//! `ncl_lint`: a repo-aware static-analysis pass that enforces the
//! fleet's invariants at CI time.
//!
//! Generic lints (clippy) know nothing about *this* workspace's
//! contracts: that a replica must not panic mid-request, that delta
//! encoders must be byte-deterministic, that a wire op is only done
//! when the parser, the server dispatch and the client all know it,
//! that a metric name lives in three places that must agree. Each of
//! those invariants is written down once here as a rule, runs over the
//! workspace's own source in CI (`ncl-lint --deny`), and fails the
//! build on regressions — with a committed `lint.toml` baseline for
//! the reviewed exceptions.
//!
//! The crate is zero-dependency by design: it hand-rolls a total Rust
//! lexer ([`lexer`]), a heuristic item model on top ([`source`]), and
//! the rule engine ([`rules`]) — heavy parsing machinery would make
//! the linter slower to build than the code it checks, and every
//! heuristic is pinned by the fixture suite in `tests/rules.rs`.

pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use config::{AllowEntry, Baseline};
use findings::Finding;
use rules::all_rules;
use workspace::Workspace;

/// The outcome of one lint run.
pub struct LintReport {
    /// Findings not covered by the baseline, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Findings silenced by a baseline entry.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing — stale allowances that
    /// must be deleted now that their finding is fixed.
    pub stale: Vec<AllowEntry>,
}

impl LintReport {
    /// Whether `--deny` should fail the build: any unbaselined finding
    /// or any stale baseline entry.
    #[must_use]
    pub fn deny(&self) -> bool {
        !self.findings.is_empty() || !self.stale.is_empty()
    }
}

/// Runs every rule over `ws` and splits the results against `baseline`.
#[must_use]
pub fn run(ws: &Workspace, baseline: &Baseline) -> LintReport {
    let mut all: Vec<Finding> = Vec::new();
    for rule in all_rules() {
        all.extend(rule.check(ws));
    }
    all.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.symbol.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.symbol.as_str(),
        ))
    });
    let stale: Vec<AllowEntry> = baseline.unused(&all).into_iter().cloned().collect();
    let (baselined, findings) = all.into_iter().partition(|f| baseline.allows(f));
    LintReport {
        findings,
        baselined,
        stale,
    }
}

/// Renders the registered-metric inventory as the JSON document
/// committed at `scripts/expected_metrics.json` (consumed by
/// `scripts/check_metrics.py` and cross-checked by the `metric-drift`
/// rule). Deterministic: names sorted, one per line.
#[must_use]
pub fn dump_metrics(ws: &Workspace) -> String {
    let registered = rules::metric_names::registered_metrics(ws);
    let mut out =
        String::from("{\n  \"generated_by\": \"ncl-lint --dump-metrics\",\n  \"metrics\": [\n");
    let names: Vec<&String> = registered.keys().collect();
    for (i, name) in names.iter().enumerate() {
        let comma = if i + 1 == names.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\"{}\n",
            findings::json_escape(name),
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_partitions_against_baseline_and_flags_stale_entries() {
        let ws = Workspace::from_sources(
            vec![(
                "crates/serve/src/server.rs",
                "pub fn handle() { thing.unwrap(); }\n".to_owned(),
            )],
            vec![],
        );
        let empty = Baseline::parse("").unwrap();
        let report = run(&ws, &empty);
        assert!(report.findings.iter().any(|f| f.rule == "panic-freedom"));
        assert!(report.deny());

        let allowed = Baseline::parse(
            "[[allow]]\nrule = \"panic-freedom\"\nkey = \"panic-freedom:crates/serve/src/server.rs:handle\"\nreason = \"fixture\"\n",
        )
        .unwrap();
        let report = run(&ws, &allowed);
        assert!(!report.findings.iter().any(|f| f.rule == "panic-freedom"));
        assert!(report.baselined.iter().any(|f| f.rule == "panic-freedom"));

        let stale = Baseline::parse(
            "[[allow]]\nrule = \"panic-freedom\"\nkey = \"panic-freedom:gone.rs:gone\"\nreason = \"fixed long ago\"\n",
        )
        .unwrap();
        let report = run(&ws, &stale);
        assert_eq!(report.stale.len(), 1);
        assert!(report.deny(), "stale baseline entries fail --deny");
    }

    #[test]
    fn dump_metrics_is_sorted_json() {
        let ws = Workspace::from_sources(
            vec![(
                "crates/serve/src/metrics.rs",
                "pub fn new(obs: &Registry) { obs.counter(\"serve_b_total\", \"b\"); obs.gauge(\"serve_a_depth\", \"a\"); }\n"
                    .to_owned(),
            )],
            vec![],
        );
        let json = dump_metrics(&ws);
        let a = json.find("serve_a_depth").unwrap();
        let b = json.find("serve_b_total").unwrap();
        assert!(a < b, "sorted: {json}");
        assert!(json.contains("\"generated_by\""));
    }
}
