//! `ncl-lint` — runs the fleet's static-analysis rules over the
//! workspace's own source.
//!
//! ```text
//! ncl-lint [--root DIR] [--baseline FILE] [--json] [--deny]
//! ncl-lint --dump-metrics [--root DIR]
//! ncl-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 denied
//! findings or stale baseline entries under `--deny`, 2 usage or
//! configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ncl_lint::config::Baseline;
use ncl_lint::rules::all_rules;
use ncl_lint::workspace::Workspace;

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    deny: bool,
    dump_metrics: bool,
    list_rules: bool,
}

fn usage() -> &'static str {
    "ncl-lint: repo-aware static analysis for the ncl workspace\n\
     \n\
     USAGE:\n\
     \u{20}   ncl-lint [--root DIR] [--baseline FILE] [--json] [--deny]\n\
     \u{20}   ncl-lint --dump-metrics [--root DIR]\n\
     \u{20}   ncl-lint --list-rules\n\
     \n\
     OPTIONS:\n\
     \u{20}   --root DIR        workspace root (default: .)\n\
     \u{20}   --baseline FILE   allowlist file (default: <root>/lint.toml)\n\
     \u{20}   --json            machine-readable findings on stdout\n\
     \u{20}   --deny            exit 1 on unbaselined findings or stale baseline entries\n\
     \u{20}   --dump-metrics    print the registered-metric inventory JSON and exit\n\
     \u{20}   --list-rules      print each rule with its one-line description\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        deny: false,
        dump_metrics: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--dump-metrics" => args.dump_metrics = true,
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("ncl-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in all_rules() {
            println!("{:<16} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let ws = match Workspace::load(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("ncl-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.dump_metrics {
        print!("{}", ncl_lint::dump_metrics(&ws));
        return ExitCode::SUCCESS;
    }

    let baseline_path = args.baseline.unwrap_or_else(|| args.root.join("lint.toml"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("ncl-lint: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        // No baseline file means an empty baseline — fine for a clean
        // tree, and the repo commits one anyway.
        Err(_) => Baseline::default(),
    };

    let report = ncl_lint::run(&ws, &baseline);

    if args.json {
        print!(
            "{}",
            ncl_lint::findings::render_json(&report.findings, &report.baselined)
        );
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        if !report.baselined.is_empty() {
            println!(
                "ncl-lint: {} finding(s) silenced by {}",
                report.baselined.len(),
                baseline_path.display()
            );
        }
    }
    for entry in &report.stale {
        eprintln!(
            "ncl-lint: stale baseline entry {:?} matches nothing — delete it from {}",
            entry.key,
            baseline_path.display()
        );
    }
    eprintln!(
        "ncl-lint: {} file(s), {} finding(s), {} baselined, {} stale baseline entr(y/ies)",
        ws.files.len(),
        report.findings.len(),
        report.baselined.len(),
        report.stale.len()
    );

    if args.deny && report.deny() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
