//! Workspace loading: which files the linter analyzes and the extra
//! non-Rust artifacts some rules cross-check (README, metric dumps).
//!
//! The production surface is `crates/*/src/**/*.rs` plus the root
//! package's `src/`. `vendor/` (offline dependency stand-ins),
//! `target/`, top-level `tests/`, `benches/` and `examples/` are out of
//! scope: the invariants under enforcement are about the fleet's own
//! hot paths. Fixture trees (`tests/fixtures/`) are skipped so the
//! linter's seeded-violation corpus never lints itself.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// The analyzed workspace.
pub struct Workspace {
    /// Analyzed Rust sources, sorted by path (deterministic output).
    pub files: Vec<SourceFile>,
    /// Non-Rust artifacts rules cross-check, keyed by workspace-relative
    /// path (`README.md`, `scripts/expected_metrics.json`). Missing
    /// files are simply absent.
    pub artifacts: BTreeMap<String, String>,
}

/// Artifacts the rules may cross-check.
pub const ARTIFACT_PATHS: &[&str] = &["README.md", "scripts/expected_metrics.json"];

impl Workspace {
    /// Builds a workspace from in-memory sources (the fixture tests).
    #[must_use]
    pub fn from_sources(sources: Vec<(&str, String)>, artifacts: Vec<(&str, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(path, src)| SourceFile::analyze(path, src))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace {
            files,
            artifacts: artifacts
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        }
    }

    /// Loads the real workspace rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns a message for an unreadable root; individual unreadable
    /// files are skipped (the linter reports on what it can see).
    pub fn load(root: &Path) -> Result<Workspace, String> {
        if !root.join("Cargo.toml").is_file() {
            return Err(format!(
                "{} does not look like the workspace root (no Cargo.toml)",
                root.display()
            ));
        }
        let mut paths: Vec<PathBuf> = Vec::new();
        let crates_dir = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates_dir) {
            for entry in entries.flatten() {
                collect_rs(&entry.path().join("src"), &mut paths);
            }
        }
        collect_rs(&root.join("src"), &mut paths);
        paths.sort();

        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let rel = relative(root, &path);
            files.push(SourceFile::analyze(&rel, src));
        }

        let mut artifacts = BTreeMap::new();
        for rel in ARTIFACT_PATHS {
            if let Ok(bytes) = std::fs::read(root.join(rel)) {
                artifacts.insert(
                    (*rel).to_owned(),
                    String::from_utf8_lossy(&bytes).into_owned(),
                );
            }
        }
        Ok(Workspace { files, artifacts })
    }

    /// The analyzed file at `path`, if present.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

/// Recursively collects `.rs` files under `dir`, skipping fixture
/// trees. Missing directories contribute nothing.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative `/`-separated path.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
