//! The committed `lint.toml` baseline: per-rule allowlist entries,
//! each with a written justification.
//!
//! The format is a tiny TOML subset parsed by hand (the linter is
//! zero-dependency): `[[allow]]` tables with `rule`, `key` and
//! `reason` string values. Anything else is a parse error — the
//! baseline is a reviewed artifact, not a config language.
//!
//! ```toml
//! [[allow]]
//! rule = "panic-freedom"
//! key = "panic-freedom:crates/serve/src/batcher.rs:worker_loop"
//! reason = "why this one is genuinely fine"
//! ```

use crate::findings::Finding;

/// One allowlisted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule this entry silences (redundant with the key prefix,
    /// kept explicit so the baseline reads well in review).
    pub rule: String,
    /// The finding key (`rule:file:symbol`) being allowed.
    pub key: String,
    /// The written justification. Required and non-empty.
    pub reason: String,
}

/// The parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// All entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Baseline {
    /// Parses `lint.toml` content.
    ///
    /// # Errors
    ///
    /// Returns a pointed message (with a line number) for anything that
    /// is not the supported subset, for entries missing `rule`/`key`/
    /// `reason`, or for an empty `reason`.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(Option<String>, Option<String>, Option<String>)> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let where_ = format!("lint.toml:{}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                Baseline::finish(&mut entries, current.take(), &where_)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(format!(
                    "{where_}: expected `key = \"value\"`, got {line:?}"
                ));
            };
            let key = k.trim();
            let value = v.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("{where_}: value for {key} must be a quoted string"))?
                .to_owned();
            let Some(entry) = current.as_mut() else {
                return Err(format!("{where_}: {key} outside an [[allow]] table"));
            };
            match key {
                "rule" => entry.0 = Some(value),
                "key" => entry.1 = Some(value),
                "reason" => entry.2 = Some(value),
                other => return Err(format!("{where_}: unknown field {other:?}")),
            }
        }
        Baseline::finish(&mut entries, current.take(), "lint.toml:EOF")?;
        Ok(Baseline { entries })
    }

    fn finish(
        entries: &mut Vec<AllowEntry>,
        current: Option<(Option<String>, Option<String>, Option<String>)>,
        where_: &str,
    ) -> Result<(), String> {
        let Some((rule, key, reason)) = current else {
            return Ok(());
        };
        let rule = rule.ok_or_else(|| format!("{where_}: [[allow]] entry lacks `rule`"))?;
        let key = key.ok_or_else(|| format!("{where_}: [[allow]] entry lacks `key`"))?;
        let reason = reason.ok_or_else(|| format!("{where_}: [[allow]] entry lacks `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "{where_}: entry {key} has an empty reason — every allowlisted finding needs a written justification"
            ));
        }
        if !key.starts_with(&format!("{rule}:")) {
            return Err(format!(
                "{where_}: key {key:?} does not belong to rule {rule:?}"
            ));
        }
        entries.push(AllowEntry { rule, key, reason });
        Ok(())
    }

    /// Whether `finding` is allowlisted.
    #[must_use]
    pub fn allows(&self, finding: &Finding) -> bool {
        let key = finding.key();
        self.entries.iter().any(|e| e.key == key)
    }

    /// Entries that matched none of `findings` — a stale baseline is
    /// reported so fixed findings get their entries removed.
    #[must_use]
    pub fn unused<'a>(&'a self, findings: &[Finding]) -> Vec<&'a AllowEntry> {
        self.entries
            .iter()
            .filter(|e| !findings.iter().any(|f| f.key() == e.key))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches_keys() {
        let toml = r#"
# baseline
[[allow]]
rule = "panic-freedom"
key = "panic-freedom:crates/x/src/a.rs:f"
reason = "provably unreachable: guarded by the constructor"
"#;
        let baseline = Baseline::parse(toml).unwrap();
        assert_eq!(baseline.entries.len(), 1);
        let finding = Finding {
            rule: "panic-freedom",
            file: "crates/x/src/a.rs".into(),
            line: 3,
            symbol: "f".into(),
            message: String::new(),
        };
        assert!(baseline.allows(&finding));
        assert!(baseline.unused(&[finding]).is_empty());
        assert_eq!(baseline.unused(&[]).len(), 1);
    }

    #[test]
    fn rejects_missing_reason_and_mismatched_rule() {
        let missing = "[[allow]]\nrule = \"a\"\nkey = \"a:x:y\"\n";
        assert!(Baseline::parse(missing)
            .unwrap_err()
            .contains("lacks `reason`"));
        let empty = "[[allow]]\nrule = \"a\"\nkey = \"a:x:y\"\nreason = \"  \"\n";
        assert!(Baseline::parse(empty).unwrap_err().contains("empty reason"));
        let mismatch = "[[allow]]\nrule = \"a\"\nkey = \"b:x:y\"\nreason = \"r\"\n";
        assert!(Baseline::parse(mismatch)
            .unwrap_err()
            .contains("does not belong"));
    }

    #[test]
    fn empty_baseline_is_fine() {
        assert!(Baseline::parse("# nothing allowlisted\n")
            .unwrap()
            .entries
            .is_empty());
    }
}
