//! Rule `determinism`: no iteration-order or wall-clock hazards in
//! byte-encoding paths.
//!
//! Checkpoints, deltas and reports are hashed, diffed and replayed
//! across the fleet: two encoders given identical state must produce
//! identical bytes. `HashMap`/`HashSet` iteration order is randomized
//! per process, and `Instant`/`SystemTime` reads change per run — any
//! of them inside an encoding path silently breaks delta convergence
//! and checkpoint CRCs. These paths use `BTreeMap` and caller-supplied
//! timestamps instead.

use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::{path_in, Rule};
use crate::workspace::Workspace;

/// Encoding paths whose output bytes must be a pure function of input.
const SCOPE: &[&str] = &[
    "crates/spike/src/rle.rs",
    "crates/spike/src/codec.rs",
    "crates/spike/src/encode.rs",
    "crates/online/src/checkpoint.rs",
    "crates/online/src/delta.rs",
    "crates/online/src/publish.rs",
    "crates/snn/src/serialize.rs",
    "crates/runtime/src/report.rs",
];

/// Hazardous identifiers and why each is hazardous.
const HAZARDS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is randomized per process — use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is randomized per process — use BTreeSet",
    ),
    (
        "Instant",
        "monotonic clock reads differ per run — take time as a parameter",
    ),
    (
        "SystemTime",
        "wall clock reads differ per run — take time as a parameter",
    ),
];

pub struct DeterminismHazards;

impl Rule for DeterminismHazards {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn describe(&self) -> &'static str {
        "no HashMap/HashSet/Instant/SystemTime in checkpoint, delta and report encoding paths"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if !path_in(&file.path, SCOPE) {
                continue;
            }
            for (i, t) in file.tokens.iter().enumerate() {
                if t.kind != TokenKind::Ident || file.is_test_code(i) {
                    continue;
                }
                if file.enclosing_fn(i).is_some_and(|f| f.is_test) {
                    continue;
                }
                let text = t.text(&file.src);
                if let Some((name, why)) = HAZARDS.iter().find(|(h, _)| *h == text) {
                    findings.push(Finding {
                        rule: "determinism",
                        file: file.path.clone(),
                        line: t.line,
                        symbol: file.symbol_at(i),
                        message: format!("{name} in an encoding path: {why}"),
                    });
                }
            }
        }
        findings
    }
}
