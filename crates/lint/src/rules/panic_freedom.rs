//! Rule `panic-freedom`: no panicking construct in non-test code on
//! the fleet's request, sync and ingest paths.
//!
//! One replica `panic!` takes a worker thread down mid-request; an
//! `unwrap()` on a poisoned lock cascades the poison through the whole
//! process. The serving crates already define error enums everywhere —
//! there is no excuse for a hot-path panic.
//!
//! Flags, outside `#[cfg(test)]` / `#[test]` code:
//! - `.unwrap(` / `.expect(` method calls (NOT `unwrap_or*`, which are
//!   the panic-free idiom this rule pushes code toward);
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!` invocations;
//! - indexing an expression with a bare integer literal (`batch[0]`),
//!   which panics on the empty case `get(0)` would surface as `None`.

use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::{path_in, Rule};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Request/sync/ingest paths under enforcement. Binaries (`src/bin/`)
/// are CLI frontends where `expect` on startup config is acceptable.
const SCOPE: &[&str] = &[
    "crates/serve/src/",
    "crates/router/src/",
    "crates/obs/src/",
    "crates/online/src/daemon.rs",
    "crates/online/src/stream.rs",
    "crates/online/src/publish.rs",
    "crates/online/src/checkpoint.rs",
    "crates/online/src/delta.rs",
];

/// Macro names whose invocation always panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub struct PanicFreedom;

impl Rule for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/literal-indexing in fleet request, sync and ingest paths"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if !path_in(&file.path, SCOPE) || file.path.contains("/bin/") {
                continue;
            }
            check_file(file, &mut findings);
        }
        findings
    }
}

fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let src = &file.src;
    let tokens = &file.tokens;
    let mut report = |idx: usize, message: String| {
        findings.push(Finding {
            rule: "panic-freedom",
            file: file.path.clone(),
            line: tokens[idx].line,
            symbol: file.symbol_at(idx),
            message,
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        if file.is_test_code(i) {
            continue;
        }
        if file.enclosing_fn(i).is_some_and(|f| f.is_test) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let text = t.text(src);
                let prev_dot = i > 0 && tokens[i - 1].is_punct(src, '.');
                let next_bang = tokens.get(i + 1).is_some_and(|n| n.is_punct(src, '!'));
                if prev_dot && (text == "unwrap" || text == "expect") {
                    report(
                        i,
                        format!(".{text}() panics on the error case — propagate it instead"),
                    );
                } else if next_bang && PANIC_MACROS.contains(&text) {
                    report(
                        i,
                        format!("{text}! aborts the worker on a hot path — return an error"),
                    );
                }
            }
            TokenKind::Punct if t.is_punct(src, '[') => {
                // Indexing position: `[` directly after an ident, `)`,
                // or `]` — array literals/types follow `=`/`(`/`,`/`&`.
                let indexing = i > 0
                    && (tokens[i - 1].kind == TokenKind::Ident
                        || tokens[i - 1].is_punct(src, ')')
                        || tokens[i - 1].is_punct(src, ']'));
                let lit_index = tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::Int)
                    && tokens.get(i + 2).is_some_and(|n| n.is_punct(src, ']'));
                if indexing && lit_index {
                    let lit = tokens[i + 1].text(src);
                    report(
                        i,
                        format!("indexing with [{lit}] panics when short — use .get({lit})"),
                    );
                }
            }
            _ => {}
        }
    }
}
