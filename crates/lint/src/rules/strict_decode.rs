//! Rule `strict-decode`: decoders must validate declared lengths
//! before allocating.
//!
//! Wire and checkpoint decoders read attacker-or-corruption-shaped
//! bytes. A decoder that does `Vec::with_capacity(declared_len)` before
//! checking `declared_len` against the remaining buffer lets a 12-byte
//! truncated frame request a multi-gigabyte allocation. The idiom
//! throughout this workspace is `need(buf, n, what)?` /
//! `remaining()` / `is_multiple_of` checks first; this rule keeps new
//! decoders honest.
//!
//! Heuristic: in every non-test `fn` whose name looks like a decoder
//! (`read_*`, `decode*`, `from_bytes*`, `parse_*`) in the scoped wire
//! files, the first allocation (`with_capacity`, `vec!`) must be
//! preceded, within the same body, by a validation marker (`need`,
//! `remaining`, `is_multiple_of`, `try_from`, `try_into`, `checked_*`).

use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::{path_in, Rule};
use crate::source::{FnItem, SourceFile};
use crate::workspace::Workspace;

/// Files that decode fleet wire formats.
const SCOPE: &[&str] = &[
    "crates/spike/src/rle.rs",
    "crates/spike/src/codec.rs",
    "crates/online/src/checkpoint.rs",
    "crates/online/src/delta.rs",
    "crates/serve/src/protocol.rs",
];

/// Function-name shapes that mark a decoder.
const DECODER_PREFIXES: &[&str] = &["read_", "decode", "from_bytes", "parse_"];

/// Identifiers that count as length validation.
const VALIDATORS: &[&str] = &[
    "need",
    "remaining",
    "is_multiple_of",
    "try_from",
    "try_into",
];

pub struct StrictDecode;

impl Rule for StrictDecode {
    fn name(&self) -> &'static str {
        "strict-decode"
    }

    fn describe(&self) -> &'static str {
        "decoders validate declared lengths before allocating"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if !path_in(&file.path, SCOPE) {
                continue;
            }
            for f in &file.fns {
                if f.is_test || f.body == (0, 0) || !is_decoder(&f.name) {
                    continue;
                }
                if let Some(line) = unguarded_allocation(file, f) {
                    findings.push(Finding {
                        rule: "strict-decode",
                        file: file.path.clone(),
                        line,
                        symbol: f.name.clone(),
                        message: format!(
                            "{} allocates before validating the declared length — check `need`/`remaining` first",
                            f.name
                        ),
                    });
                }
            }
        }
        findings
    }
}

fn is_decoder(name: &str) -> bool {
    DECODER_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// The line of the first allocation in `f`'s body that no validation
/// marker precedes, or `None` if the body is clean.
fn unguarded_allocation(file: &SourceFile, f: &FnItem) -> Option<u32> {
    let src = &file.src;
    let tokens = &file.tokens;
    let (start, end) = f.body;
    let mut validated = false;
    for i in start..=end.min(tokens.len().saturating_sub(1)) {
        let t = tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(src);
        if VALIDATORS.contains(&text) || text.starts_with("checked_") {
            validated = true;
        } else if !validated
            && (text == "with_capacity"
                || (text == "vec" && tokens.get(i + 1).is_some_and(|n| n.is_punct(src, '!'))))
        {
            return Some(t.line);
        }
    }
    None
}
