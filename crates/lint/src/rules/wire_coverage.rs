//! Rule `wire-coverage`: every wire op the protocol parses must have a
//! dispatch arm in the server and a method on the client.
//!
//! The NDJSON protocol grows by adding a `"op" => Request::Variant`
//! arm to `parse_request`. The failure mode this rule guards: the arm
//! lands, but the server's `handle_line` match gains no case (the op
//! parses, then hits a catch-all error) or the client never grows a
//! method (the op is reachable only by hand-writing JSON — so nothing
//! in the workspace exercises it). Ops and their `Request` variants
//! are read from `parse_request`'s match arms; the server must mention
//! `Request::Variant` and the client must define `fn <op>` in non-test
//! code.

use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::{str_literal_value, Rule};
use crate::source::SourceFile;
use crate::workspace::Workspace;

const PROTOCOL: &str = "crates/serve/src/protocol.rs";
const SERVER: &str = "crates/serve/src/server.rs";
const CLIENT: &str = "crates/serve/src/client.rs";

pub struct WireCoverage;

impl Rule for WireCoverage {
    fn name(&self) -> &'static str {
        "wire-coverage"
    }

    fn describe(&self) -> &'static str {
        "every parsed wire op has a server dispatch arm and a client method"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let Some(protocol) = ws.file(PROTOCOL) else {
            return Vec::new();
        };
        let ops = parse_ops(protocol);
        let mut findings = Vec::new();
        if let Some(server) = ws.file(SERVER) {
            for op in &ops {
                if !mentions_variant(server, &op.variant) {
                    findings.push(Finding {
                        rule: "wire-coverage",
                        file: PROTOCOL.to_owned(),
                        line: op.line,
                        symbol: op.name.clone(),
                        message: format!(
                            "op \"{}\" parses to Request::{} but server.rs never dispatches that variant",
                            op.name, op.variant
                        ),
                    });
                }
            }
        }
        if let Some(client) = ws.file(CLIENT) {
            for op in &ops {
                let has_method = client.fns.iter().any(|f| !f.is_test && f.name == op.name);
                if !has_method {
                    findings.push(Finding {
                        rule: "wire-coverage",
                        file: PROTOCOL.to_owned(),
                        line: op.line,
                        symbol: op.name.clone(),
                        message: format!(
                            "op \"{}\" has no client method — add `fn {}` to client.rs",
                            op.name, op.name
                        ),
                    });
                }
            }
        }
        findings
    }
}

/// One `"op" => ... Request::Variant` arm.
struct WireOp {
    name: String,
    variant: String,
    line: u32,
}

/// Extracts (op, variant) pairs from `parse_request`'s match arms: a
/// string literal directly followed by `=>`, then the first
/// `Request::Variant` path before the next arm.
fn parse_ops(file: &SourceFile) -> Vec<WireOp> {
    let Some(body) = file
        .fns
        .iter()
        .find(|f| !f.is_test && f.name == "parse_request" && f.body != (0, 0))
        .map(|f| f.body)
    else {
        return Vec::new();
    };
    let src = &file.src;
    let tokens = &file.tokens;
    let end = body.1.min(tokens.len().saturating_sub(1));
    let arm_at = |i: usize| -> bool {
        tokens[i].kind == TokenKind::Str
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(src, '='))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(src, '>'))
    };
    let mut ops = Vec::new();
    let mut i = body.0;
    while i <= end {
        if arm_at(i) {
            let name = str_literal_value(tokens[i].text(src)).to_owned();
            let line = tokens[i].line;
            // Scan this arm (up to the next arm) for Request::Variant.
            let mut j = i + 3;
            let mut variant = None;
            while j <= end && !arm_at(j) {
                if tokens[j].is_ident(src, "Request")
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct(src, ':'))
                    && tokens.get(j + 2).is_some_and(|t| t.is_punct(src, ':'))
                    && tokens
                        .get(j + 3)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                {
                    variant = Some(tokens[j + 3].text(src).to_owned());
                    break;
                }
                j += 1;
            }
            if let Some(variant) = variant {
                ops.push(WireOp {
                    name,
                    variant,
                    line,
                });
            }
        }
        i += 1;
    }
    ops
}

/// Whether `file` mentions `Request::<variant>` in non-test code.
fn mentions_variant(file: &SourceFile, variant: &str) -> bool {
    let src = &file.src;
    let tokens = &file.tokens;
    tokens.iter().enumerate().any(|(i, t)| {
        t.is_ident(src, "Request")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(src, ':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(src, ':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident(src, variant))
            && !file.is_test_code(i)
            && !file.enclosing_fn(i).is_some_and(|f| f.is_test)
    })
}
