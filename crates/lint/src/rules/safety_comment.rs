//! Rule `safety-comment`: every `unsafe` needs an adjacent
//! `// SAFETY:` comment stating the invariant that makes it sound.
//!
//! The workspace currently denies `unsafe_code` outright and has zero
//! unsafe blocks — this rule exists so the day someone carves out an
//! exception (an accelerator binding, an FFI boundary), the
//! justification discipline is already enforced rather than argued
//! about in review.
//!
//! Accepted: a line or block comment containing `SAFETY:` on the same
//! line as the `unsafe` token or within the three lines above it.

use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::workspace::Workspace;

pub struct SafetyComment;

impl Rule for SafetyComment {
    fn name(&self) -> &'static str {
        "safety-comment"
    }

    fn describe(&self) -> &'static str {
        "every `unsafe` carries an adjacent `// SAFETY:` justification"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            let src = &file.src;
            for (i, t) in file.tokens.iter().enumerate() {
                if !t.is_ident(src, "unsafe") || file.is_test_code(i) {
                    continue;
                }
                if has_adjacent_safety_comment(file, i) {
                    continue;
                }
                findings.push(Finding {
                    rule: "safety-comment",
                    file: file.path.clone(),
                    line: t.line,
                    symbol: file.symbol_at(i),
                    message:
                        "unsafe without an adjacent `// SAFETY:` comment stating the invariant"
                            .to_owned(),
                });
            }
        }
        findings
    }
}

/// Whether a comment containing `SAFETY:` sits on the `unsafe` token's
/// line or within the three lines above it.
fn has_adjacent_safety_comment(file: &crate::source::SourceFile, idx: usize) -> bool {
    let line = file.tokens[idx].line;
    let lo = line.saturating_sub(3);
    // Comments are tokens, so scanning the neighborhood suffices.
    file.tokens.iter().any(|t| {
        matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
            && t.line >= lo
            && t.line <= line
            && t.text(&file.src).contains("SAFETY:")
    })
}
