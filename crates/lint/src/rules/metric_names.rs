//! Rule `metric-drift`: the three places a metric name lives — the
//! registration call, the README metrics table, and the dashboards'
//! expected-metric list (`scripts/expected_metrics.json`, consumed by
//! `scripts/check_metrics.py`) — must agree.
//!
//! Metric names are stringly-typed by nature, so nothing else catches
//! a renamed family: the exposition silently grows a new name, the
//! README documents a metric that no longer exists, and the smoke
//! checks keep passing because they only see what *is* exported. This
//! rule closes the loop in both directions.
//!
//! Registration sites are method calls `.counter("name", ...)` (and
//! the `_with`/`adopt_`/`gauge`/`histogram`/`stage` variants) whose
//! first argument is a string literal with a fleet prefix. The README
//! table uses a compressed notation this rule expands:
//! `` `a` / `b` `` lists, `{x,y}` alternation
//! (`router_sync_{ticks,failures}_total`), and `{label=...}` suffixes
//! (stripped — labels are not part of the family name).

use std::collections::BTreeMap;

use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::rules::{str_literal_value, Rule};
use crate::workspace::Workspace;

/// Metric family prefixes owned by the fleet.
pub const PREFIXES: &[&str] = &["serve_", "router_", "replica_", "online_", "snn_", "obs_"];

/// Registry methods whose first argument is a metric family name.
const REG_METHODS: &[&str] = &[
    "counter",
    "counter_with",
    "adopt_counter",
    "gauge",
    "gauge_with",
    "adopt_gauge",
    "histogram",
    "histogram_with",
    "adopt_histogram",
    "adopt",
    "stage",
];

pub struct MetricNames;

impl Rule for MetricNames {
    fn name(&self) -> &'static str {
        "metric-drift"
    }

    fn describe(&self) -> &'static str {
        "registered metric names, the README table and expected_metrics.json agree"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let registered = registered_metrics(ws);

        if let Some(readme) = ws.artifacts.get("README.md") {
            let documented = readme_metrics(readme);
            for (name, (file, line)) in &registered {
                if !documented.contains_key(name) {
                    findings.push(Finding {
                        rule: "metric-drift",
                        file: file.clone(),
                        line: *line,
                        symbol: name.clone(),
                        message: format!(
                            "metric {name} is registered here but missing from the README metrics table"
                        ),
                    });
                }
            }
            for (name, line) in &documented {
                if !registered.contains_key(name) {
                    findings.push(Finding {
                        rule: "metric-drift",
                        file: "README.md".to_owned(),
                        line: *line,
                        symbol: name.clone(),
                        message: format!(
                            "README documents metric {name}, but nothing registers it"
                        ),
                    });
                }
            }
        }

        match ws.artifacts.get("scripts/expected_metrics.json") {
            None => findings.push(Finding {
                rule: "metric-drift",
                file: "scripts/expected_metrics.json".to_owned(),
                line: 1,
                symbol: "(file)".to_owned(),
                message:
                    "expected-metrics list is missing — generate it with `ncl-lint --dump-metrics`"
                        .to_owned(),
            }),
            Some(json) => {
                let expected = json_metrics(json);
                for (name, (file, line)) in &registered {
                    if !expected.contains(name) {
                        findings.push(Finding {
                            rule: "metric-drift",
                            file: file.clone(),
                            line: *line,
                            symbol: name.clone(),
                            message: format!(
                                "metric {name} is not in scripts/expected_metrics.json — regenerate with `ncl-lint --dump-metrics`"
                            ),
                        });
                    }
                }
                for name in &expected {
                    if !registered.contains_key(name) {
                        findings.push(Finding {
                            rule: "metric-drift",
                            file: "scripts/expected_metrics.json".to_owned(),
                            line: 1,
                            symbol: name.clone(),
                            message: format!(
                                "expected metric {name} is no longer registered anywhere — regenerate with `ncl-lint --dump-metrics`"
                            ),
                        });
                    }
                }
            }
        }
        findings
    }
}

/// Every fleet-prefixed metric name registered in non-test code, with
/// the first registration site. Sorted by name (BTreeMap) so dump
/// output and findings are deterministic.
#[must_use]
pub fn registered_metrics(ws: &Workspace) -> BTreeMap<String, (String, u32)> {
    let mut out: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for file in &ws.files {
        let src = &file.src;
        let tokens = &file.tokens;
        for (i, t) in tokens.iter().enumerate() {
            // `.method("name", ...)` — the leading dot excludes the
            // method *definitions* in ncl_obs itself.
            if t.kind != TokenKind::Ident
                || !REG_METHODS.contains(&t.text(src))
                || i == 0
                || !tokens[i - 1].is_punct(src, '.')
            {
                continue;
            }
            if file.is_test_code(i) || file.enclosing_fn(i).is_some_and(|f| f.is_test) {
                continue;
            }
            let Some(open) = file.skip_comments(i + 1) else {
                continue;
            };
            if !tokens[open].is_punct(src, '(') {
                continue;
            }
            let Some(arg) = file.skip_comments(open + 1) else {
                continue;
            };
            if tokens[arg].kind != TokenKind::Str {
                continue;
            }
            let name = str_literal_value(tokens[arg].text(src));
            if PREFIXES.iter().any(|p| name.starts_with(p)) {
                out.entry(name.to_owned())
                    .or_insert_with(|| (file.path.clone(), tokens[arg].line));
            }
        }
    }
    out
}

/// Metric names documented in the README metrics table (first cell of
/// each row, backticked, compressed notation expanded), mapped to
/// their 1-based line.
fn readme_metrics(readme: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (lineno, line) in readme.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let Some(first_cell) = trimmed.split('|').nth(1) else {
            continue;
        };
        // Backtick spans are the odd-index pieces of a backtick split.
        for (i, span) in first_cell.split('`').enumerate() {
            if i % 2 == 0 {
                continue;
            }
            for name in expand(span) {
                if PREFIXES.iter().any(|p| name.starts_with(p)) {
                    out.entry(name).or_insert(lineno as u32 + 1);
                }
            }
        }
    }
    out
}

/// Expands the table's compressed notation: `{a,b}` alternation
/// multiplies, `{label=...}` is stripped.
fn expand(name: &str) -> Vec<String> {
    let Some(open) = name.find('{') else {
        return vec![name.trim().to_owned()];
    };
    let Some(close) = name[open..].find('}').map(|c| open + c) else {
        return vec![name.trim().to_owned()];
    };
    let (prefix, inner, suffix) = (&name[..open], &name[open + 1..close], &name[close + 1..]);
    if inner.contains('=') {
        return expand(&format!("{prefix}{suffix}"));
    }
    inner
        .split(',')
        .flat_map(|alt| expand(&format!("{prefix}{}{suffix}", alt.trim())))
        .collect()
}

/// Fleet-prefixed names quoted anywhere in the expected-metrics JSON.
fn json_metrics(json: &str) -> Vec<String> {
    json.split('"')
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, s)| s.to_owned())
        .filter(|s| {
            PREFIXES
                .iter()
                .any(|p| s.starts_with(p) && s.len() > p.len())
                && s.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_handles_alternation_and_labels() {
        assert_eq!(
            expand("router_sync_{ticks,failures}_total"),
            vec!["router_sync_ticks_total", "router_sync_failures_total"]
        );
        assert_eq!(
            expand("router_backend_{a,b}_total{replica=N}"),
            vec!["router_backend_a_total", "router_backend_b_total"]
        );
        assert_eq!(
            expand("online_stage_us{stage=...}"),
            vec!["online_stage_us"]
        );
        assert_eq!(expand("serve_latency_us"), vec!["serve_latency_us"]);
    }

    #[test]
    fn readme_rows_split_on_slashes_and_commas() {
        let table = "| Metric | Type |\n|---|---|\n| `a_x` / `serve_a_total` | counter |\n| `online_v`, `online_w` | gauge |\n";
        let m = readme_metrics(table);
        assert_eq!(
            m.keys().cloned().collect::<Vec<_>>(),
            vec!["online_v", "online_w", "serve_a_total"]
        );
        assert_eq!(m["serve_a_total"], 3);
    }
}
