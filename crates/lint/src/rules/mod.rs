//! The rule engine: seven repo-specific rules over the analyzed
//! workspace. Each rule documents the invariant it guards, the paths
//! it scopes to, and the heuristic it uses — heuristics are fine here
//! because the fixture suite pins exactly what fires and what stays
//! silent, and the baseline absorbs the (reviewed) leftovers.

pub mod determinism;
pub mod metric_names;
pub mod panic_freedom;
pub mod safety_comment;
pub mod strict_decode;
pub mod trace_propagation;
pub mod wire_coverage;

use crate::findings::Finding;
use crate::workspace::Workspace;

/// One static-analysis rule.
pub trait Rule {
    /// Stable rule name (finding keys embed it).
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and the README table.
    fn describe(&self) -> &'static str;
    /// Runs the rule over the whole workspace.
    fn check(&self, ws: &Workspace) -> Vec<Finding>;
}

/// Every rule, in reporting order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(panic_freedom::PanicFreedom),
        Box::new(determinism::DeterminismHazards),
        Box::new(strict_decode::StrictDecode),
        Box::new(safety_comment::SafetyComment),
        Box::new(metric_names::MetricNames),
        Box::new(wire_coverage::WireCoverage),
        Box::new(trace_propagation::TracePropagation),
    ]
}

/// The contents of a string-literal token: strips `b`/`r` prefixes,
/// raw-string hashes and the quotes. Total — malformed input just
/// loses fewer characters.
#[must_use]
pub fn str_literal_value(text: &str) -> &str {
    let s = text.strip_prefix('b').unwrap_or(text);
    let s = s.strip_prefix('r').unwrap_or(s);
    let s = s.trim_start_matches('#');
    let s = s.strip_prefix('"').unwrap_or(s);
    let s = s.trim_end_matches('#');
    s.strip_suffix('"').unwrap_or(s)
}

/// Whether `path` matches any of `prefixes_or_files` — entries ending
/// in `/` are directory prefixes, others are exact file paths.
#[must_use]
pub fn path_in(path: &str, prefixes_or_files: &[&str]) -> bool {
    prefixes_or_files.iter().any(|p| {
        if let Some(dir) = p.strip_suffix('/') {
            path.starts_with(dir) && path.len() > dir.len()
        } else {
            path == *p
        }
    })
}
