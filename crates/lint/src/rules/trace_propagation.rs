//! Rule `trace-propagation`: a function that opens a trace span and
//! then relays a wire request to another fleet node must re-stamp the
//! outgoing line with `traced_line`.
//!
//! The failure mode: a hop opens its child span (`start_span`) but
//! forwards the original request bytes unchanged, so the downstream
//! node sees the *client's* context — or none — and its spans parent
//! under the wrong hop or start an unrelated trace. The stitcher then
//! reports orphans and the per-hop self-time is garbage. Scoped to
//! trace-aware files (those naming `TraceContext`) under the router
//! and serve crates; plumbing that deliberately stays trace-opaque
//! (e.g. the sync loop's single-span push traces) never names the
//! type and stays out of scope.

use crate::findings::Finding;
use crate::rules::{path_in, Rule};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Crates whose request paths carry trace contexts across the wire.
/// Binaries are CLI frontends — they originate traces, never relay.
const SCOPE: &[&str] = &["crates/router/src/", "crates/serve/src/"];

/// Methods that push a line to another fleet node.
const RELAY_CALLS: &[&str] = &["request", "round_trip"];

pub struct TracePropagation;

impl Rule for TracePropagation {
    fn name(&self) -> &'static str {
        "trace-propagation"
    }

    fn describe(&self) -> &'static str {
        "a fn that opens a span and relays a request must re-stamp it with traced_line"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if !path_in(&file.path, SCOPE) || file.path.contains("/bin/") {
                continue;
            }
            if !names_trace_context(file) {
                continue;
            }
            check_file(file, &mut findings);
        }
        findings
    }
}

/// Whether the file names `TraceContext` anywhere in non-test code —
/// the opt-in marker that its request path is trace-aware.
fn names_trace_context(file: &SourceFile) -> bool {
    file.tokens
        .iter()
        .enumerate()
        .any(|(i, t)| t.is_ident(&file.src, "TraceContext") && !file.is_test_code(i))
}

fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    let src = &file.src;
    let tokens = &file.tokens;
    for f in &file.fns {
        if f.is_test || f.body == (0, 0) {
            continue;
        }
        let end = f.body.1.min(tokens.len().saturating_sub(1));
        let mut opens_span = false;
        let mut relays = false;
        let mut restamps = false;
        for i in f.body.0..=end {
            let t = &tokens[i];
            if t.is_ident(src, "start_span") {
                opens_span = true;
            } else if t.is_ident(src, "traced_line") {
                restamps = true;
            } else if RELAY_CALLS.iter().any(|c| t.is_ident(src, c))
                && i > 0
                && tokens[i - 1].is_punct(src, '.')
                && tokens.get(i + 1).is_some_and(|n| n.is_punct(src, '('))
            {
                relays = true;
            }
        }
        if opens_span && relays && !restamps {
            findings.push(Finding {
                rule: "trace-propagation",
                file: file.path.clone(),
                line: f.line,
                symbol: f.name.clone(),
                message: format!(
                    "fn {} opens a span and relays a request without traced_line — \
                     the downstream hop loses the trace context",
                    f.name
                ),
            });
        }
    }
}
