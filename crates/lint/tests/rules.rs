//! The fixture suite: every rule's heuristics are pinned here against a
//! seeded-violation fixture and its clean twin. Fixtures live under
//! `tests/fixtures/` (which `Workspace::load` skips, so the corpus
//! never lints itself) and are mounted at fabricated in-scope paths —
//! the rules key their scope off `SourceFile::path`, not the disk
//! location.

use ncl_lint::config::Baseline;
use ncl_lint::findings::Finding;
use ncl_lint::rules::determinism::DeterminismHazards;
use ncl_lint::rules::metric_names::MetricNames;
use ncl_lint::rules::panic_freedom::PanicFreedom;
use ncl_lint::rules::safety_comment::SafetyComment;
use ncl_lint::rules::strict_decode::StrictDecode;
use ncl_lint::rules::trace_propagation::TracePropagation;
use ncl_lint::rules::wire_coverage::WireCoverage;
use ncl_lint::rules::Rule;
use ncl_lint::workspace::Workspace;

const PANIC_BAD: &str = include_str!("fixtures/panic_bad.rs");
const PANIC_CLEAN: &str = include_str!("fixtures/panic_clean.rs");
const DETERMINISM_BAD: &str = include_str!("fixtures/determinism_bad.rs");
const DETERMINISM_CLEAN: &str = include_str!("fixtures/determinism_clean.rs");
const DECODE_BAD: &str = include_str!("fixtures/decode_bad.rs");
const DECODE_CLEAN: &str = include_str!("fixtures/decode_clean.rs");
const SAFETY_BAD: &str = include_str!("fixtures/safety_bad.rs");
const SAFETY_CLEAN: &str = include_str!("fixtures/safety_clean.rs");
const METRIC_BAD: &str = include_str!("fixtures/metric_bad.rs");
const METRIC_CLEAN: &str = include_str!("fixtures/metric_clean.rs");
const WIRE_PROTOCOL: &str = include_str!("fixtures/wire_protocol.rs");
const WIRE_SERVER_BAD: &str = include_str!("fixtures/wire_server_bad.rs");
const WIRE_SERVER_CLEAN: &str = include_str!("fixtures/wire_server_clean.rs");
const WIRE_CLIENT_BAD: &str = include_str!("fixtures/wire_client_bad.rs");
const WIRE_CLIENT_CLEAN: &str = include_str!("fixtures/wire_client_clean.rs");
const TRACE_BAD: &str = include_str!("fixtures/trace_bad.rs");
const TRACE_CLEAN: &str = include_str!("fixtures/trace_clean.rs");

/// Lints a single fixture mounted at `path` with one rule.
fn lint_one(rule: &dyn Rule, path: &str, src: &str) -> Vec<Finding> {
    let ws = Workspace::from_sources(vec![(path, src.to_owned())], vec![]);
    rule.check(&ws)
}

#[test]
fn panic_freedom_fires_on_every_seeded_construct() {
    let findings = lint_one(&PanicFreedom, "crates/serve/src/server.rs", PANIC_BAD);
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(findings.len(), 4, "{messages:?}");
    assert!(messages.iter().any(|m| m.contains(".unwrap()")));
    assert!(messages.iter().any(|m| m.contains("panic!")));
    assert!(messages.iter().any(|m| m.contains("[0]")));
    assert!(messages.iter().any(|m| m.contains("unreachable!")));
    // Findings anchor to the enclosing function, the baseline key unit.
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.symbol == "handle_request")
            .count(),
        3
    );
    assert_eq!(findings.iter().filter(|f| f.symbol == "route").count(), 1);
}

#[test]
fn panic_freedom_silent_on_clean_twin() {
    // The twin mentions panic!/unwrap() inside a string literal and a
    // comment — the lexer must see those as data, not code.
    let findings = lint_one(&PanicFreedom, "crates/serve/src/server.rs", PANIC_CLEAN);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_freedom_ignores_out_of_scope_and_bin_paths() {
    assert!(lint_one(&PanicFreedom, "crates/spike/src/rle.rs", PANIC_BAD).is_empty());
    assert!(lint_one(
        &PanicFreedom,
        "crates/serve/src/bin/ncl-serve.rs",
        PANIC_BAD
    )
    .is_empty());
}

#[test]
fn determinism_fires_on_hash_iteration_and_clock_reads() {
    let findings = lint_one(
        &DeterminismHazards,
        "crates/spike/src/encode.rs",
        DETERMINISM_BAD,
    );
    assert!(!findings.is_empty());
    assert!(findings.iter().any(|f| f.message.contains("HashMap")));
    assert!(findings.iter().any(|f| f.message.contains("Instant")));
    assert!(findings.iter().any(|f| f.symbol == "encode_report"));
}

#[test]
fn determinism_silent_on_clean_twin() {
    // The twin's #[cfg(test)] module uses HashMap and Instant freely.
    let findings = lint_one(
        &DeterminismHazards,
        "crates/spike/src/encode.rs",
        DETERMINISM_CLEAN,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn strict_decode_fires_on_unvalidated_allocation() {
    let findings = lint_one(&StrictDecode, "crates/spike/src/rle.rs", DECODE_BAD);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].symbol, "decode_frame");
    assert!(findings[0].message.contains("allocates before validating"));
}

#[test]
fn strict_decode_silent_when_need_precedes_allocation() {
    let findings = lint_one(&StrictDecode, "crates/spike/src/rle.rs", DECODE_CLEAN);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn safety_comment_fires_on_bare_unsafe() {
    let findings = lint_one(&SafetyComment, "crates/runtime/src/mmio.rs", SAFETY_BAD);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].symbol, "read_register");
    assert!(findings[0].message.contains("SAFETY:"));
}

#[test]
fn safety_comment_silent_with_adjacent_justification() {
    // Also covers `"unsafe"` as a string literal, which is data.
    let findings = lint_one(&SafetyComment, "crates/runtime/src/mmio.rs", SAFETY_CLEAN);
    assert!(findings.is_empty(), "{findings:?}");
}

const README_BAD: &str = "\
# Metrics

| Metric | Type | Meaning |
|---|---|---|
| `serve_requests_ok_total` | counter | requests served |
| `serve_stale_total` | counter | documented but never registered |
";

const JSON_BAD: &str = "\
{
  \"generated_by\": \"ncl-lint --dump-metrics\",
  \"metrics\": [
    \"serve_old_total\",
    \"serve_requests_ok_total\"
  ]
}
";

const README_CLEAN: &str = "\
# Metrics

| Metric | Type | Meaning |
|---|---|---|
| `serve_{requests_ok_total,latency_us}` | mixed | request accounting |
";

const JSON_CLEAN: &str = "\
{
  \"generated_by\": \"ncl-lint --dump-metrics\",
  \"metrics\": [
    \"serve_latency_us\",
    \"serve_requests_ok_total\"
  ]
}
";

#[test]
fn metric_drift_flags_all_four_drift_directions() {
    let ws = Workspace::from_sources(
        vec![("crates/serve/src/metrics.rs", METRIC_BAD.to_owned())],
        vec![
            ("README.md", README_BAD.to_owned()),
            ("scripts/expected_metrics.json", JSON_BAD.to_owned()),
        ],
    );
    let findings = MetricNames.check(&ws);
    let has = |symbol: &str, message_part: &str| {
        findings
            .iter()
            .any(|f| f.symbol == symbol && f.message.contains(message_part))
    };
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(has("serve_ghost_total", "missing from the README"));
    assert!(has("serve_stale_total", "nothing registers it"));
    assert!(has(
        "serve_ghost_total",
        "not in scripts/expected_metrics.json"
    ));
    assert!(has("serve_old_total", "no longer registered"));
}

#[test]
fn metric_drift_silent_when_three_surfaces_agree() {
    // The README uses the compressed {a,b} notation; the fixture's
    // #[cfg(test)] registration must stay invisible to the rule.
    let ws = Workspace::from_sources(
        vec![("crates/serve/src/metrics.rs", METRIC_CLEAN.to_owned())],
        vec![
            ("README.md", README_CLEAN.to_owned()),
            ("scripts/expected_metrics.json", JSON_CLEAN.to_owned()),
        ],
    );
    let findings = MetricNames.check(&ws);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn metric_drift_requires_the_expected_metrics_file() {
    let ws = Workspace::from_sources(
        vec![("crates/serve/src/metrics.rs", METRIC_CLEAN.to_owned())],
        vec![("README.md", README_CLEAN.to_owned())],
    );
    let findings = MetricNames.check(&ws);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].symbol, "(file)");
    assert!(findings[0].message.contains("--dump-metrics"));
}

#[test]
fn wire_coverage_flags_missing_dispatch_and_missing_method() {
    let ws = Workspace::from_sources(
        vec![
            ("crates/serve/src/protocol.rs", WIRE_PROTOCOL.to_owned()),
            ("crates/serve/src/server.rs", WIRE_SERVER_BAD.to_owned()),
            ("crates/serve/src/client.rs", WIRE_CLIENT_BAD.to_owned()),
        ],
        vec![],
    );
    let findings = WireCoverage.check(&ws);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.symbol == "drain"));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("never dispatches")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("no client method")));
}

#[test]
fn wire_coverage_silent_when_every_op_is_covered() {
    let ws = Workspace::from_sources(
        vec![
            ("crates/serve/src/protocol.rs", WIRE_PROTOCOL.to_owned()),
            ("crates/serve/src/server.rs", WIRE_SERVER_CLEAN.to_owned()),
            ("crates/serve/src/client.rs", WIRE_CLIENT_CLEAN.to_owned()),
        ],
        vec![],
    );
    let findings = WireCoverage.check(&ws);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn trace_propagation_flags_unstamped_relays_after_start_span() {
    let findings = lint_one(&TracePropagation, "crates/router/src/router.rs", TRACE_BAD);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.symbol == "relay_predict"));
    assert!(findings.iter().any(|f| f.symbol == "relay_persistent"));
    assert!(findings
        .iter()
        .all(|f| f.message.contains("without traced_line")));
}

#[test]
fn trace_propagation_silent_on_clean_twin_and_opaque_relays() {
    // The twin re-stamps every relay; "start_span"/".request(" inside
    // a string literal are data; the #[cfg(test)] shortcut is exempt.
    let findings = lint_one(
        &TracePropagation,
        "crates/router/src/router.rs",
        TRACE_CLEAN,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn trace_propagation_ignores_trace_opaque_files_and_bins() {
    // A file that never names TraceContext opted out of tracing — its
    // relays (the sync loop's shape) pass bytes through unflagged.
    let opaque = TRACE_BAD.replace("TraceContext", "TraceOpaque");
    assert!(lint_one(&TracePropagation, "crates/router/src/sync.rs", &opaque).is_empty());
    // Binaries originate traces, never relay.
    assert!(lint_one(
        &TracePropagation,
        "crates/serve/src/bin/ncl-trace.rs",
        TRACE_BAD
    )
    .is_empty());
    // Out-of-scope crates are untouched.
    assert!(lint_one(&TracePropagation, "crates/online/src/daemon.rs", TRACE_BAD).is_empty());
}

#[test]
fn full_run_over_the_clean_corpus_is_clean() {
    // Every clean twin mounted at its in-scope path, all rules, empty
    // baseline: the whole pipeline agrees there is nothing to report.
    let ws = Workspace::from_sources(
        vec![
            ("crates/obs/src/ring.rs", PANIC_CLEAN.to_owned()),
            ("crates/spike/src/encode.rs", DETERMINISM_CLEAN.to_owned()),
            ("crates/spike/src/rle.rs", DECODE_CLEAN.to_owned()),
            ("crates/runtime/src/mmio.rs", SAFETY_CLEAN.to_owned()),
            ("crates/serve/src/metrics.rs", METRIC_CLEAN.to_owned()),
            ("crates/serve/src/protocol.rs", WIRE_PROTOCOL.to_owned()),
            ("crates/serve/src/server.rs", WIRE_SERVER_CLEAN.to_owned()),
            ("crates/serve/src/client.rs", WIRE_CLIENT_CLEAN.to_owned()),
            ("crates/router/src/router.rs", TRACE_CLEAN.to_owned()),
        ],
        vec![
            ("README.md", README_CLEAN.to_owned()),
            ("scripts/expected_metrics.json", JSON_CLEAN.to_owned()),
        ],
    );
    let baseline = Baseline::parse("").unwrap();
    let report = ncl_lint::run(&ws, &baseline);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.baselined.is_empty());
    assert!(report.stale.is_empty());
    assert!(!report.deny());
}
