//! Property tests for the linter's front end: the lexer and the item
//! model must be total over arbitrary input (the linter runs on
//! whatever is on disk, including half-saved files mid-edit), and the
//! lexer's string/comment handling must keep panic-looking *data* from
//! producing findings.

use ncl_lint::config::Baseline;
use ncl_lint::lexer::{lex, TokenKind};
use ncl_lint::source::SourceFile;
use ncl_lint::workspace::Workspace;
use proptest::collection::vec;
use proptest::prelude::*;

/// Rust-ish fragments composed into plausible-but-mangled sources —
/// raw bytes rarely exercise the string/comment/raw-string state
/// machine, so this strategy stresses the delimiter handling.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "pub ",
    "unsafe ",
    "mod tests ",
    "#[test]\n",
    "#[cfg(test)]\n",
    "{",
    "}",
    "(",
    ")",
    "[0]",
    ".unwrap()",
    ".expect(\"x\")",
    "panic!(",
    "\"",
    "\\\"",
    "r#\"",
    "\"#",
    "'",
    "'a",
    "'a'",
    "\\",
    "//",
    "/*",
    "*/",
    "\n",
    "0x1f",
    "1.5e3",
    "b\"bytes\"",
    "ident",
    "=>",
    "::",
    "HashMap",
    "need(",
    "with_capacity(",
    "counter(\"serve_x_total\"",
    "\u{1F980}",
];

/// A source string assembled from indexed fragments.
fn mangled_source() -> impl Strategy<Value = String> {
    vec(0..FRAGMENTS.len(), 0..64)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i]).collect::<String>())
}

/// Runs the full pipeline — lex, item model, every rule, baseline
/// partition — over one source mounted at an all-rules-in-scope path.
fn lint_arbitrary(src: String) {
    let ws = Workspace::from_sources(
        vec![("crates/online/src/delta.rs", src)],
        vec![("README.md", "| `x` |".to_owned())],
    );
    let baseline = Baseline::parse("").unwrap();
    let _ = ncl_lint::run(&ws, &baseline);
    let _ = ncl_lint::dump_metrics(&ws);
}

proptest! {
    #[test]
    fn lexer_is_total_over_arbitrary_bytes(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        for t in &tokens {
            // Every token is a well-formed slice of the source.
            prop_assert!(t.start <= t.end && t.end <= src.len());
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        }
        // Lines never decrease: findings sort by (file, line).
        for w in tokens.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
    }

    #[test]
    fn pipeline_is_total_over_arbitrary_bytes(bytes in vec(any::<u8>(), 0..256)) {
        lint_arbitrary(String::from_utf8_lossy(&bytes).into_owned());
    }

    #[test]
    fn pipeline_is_total_over_mangled_rust(src in mangled_source()) {
        lint_arbitrary(src);
    }

    #[test]
    fn item_model_is_total_over_mangled_rust(src in mangled_source()) {
        let file = SourceFile::analyze("crates/serve/src/server.rs", src);
        for (i, _) in file.tokens.iter().enumerate() {
            // Per-token queries never panic and fn bodies index in range.
            let _ = file.is_test_code(i);
            let _ = file.symbol_at(i);
            if let Some(f) = file.enclosing_fn(i) {
                prop_assert!(f.body == (0, 0) || f.body.1 < file.tokens.len());
            }
        }
    }
}

#[test]
fn panic_in_string_literal_is_data_not_code() {
    let src = r#"
pub fn log_line() -> &'static str {
    "never panic!(), .unwrap() or queue[0] here"
}
"#;
    let tokens = lex(src);
    // The whole sentence lexes as one string token...
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::Str && t.text(src).contains("panic!")));
    // ...so no rule fires on it at a fully-enforced path.
    let ws = Workspace::from_sources(vec![("crates/serve/src/server.rs", src.to_owned())], vec![]);
    let report = ncl_lint::run(&ws, &Baseline::parse("").unwrap());
    let source_findings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.file.ends_with(".rs"))
        .collect();
    assert!(source_findings.is_empty(), "{source_findings:?}");
}
