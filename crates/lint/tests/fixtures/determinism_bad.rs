//! Seeded determinism hazards in an encoding-path file: randomized
//! iteration order and wall-clock reads.

use std::collections::HashMap;
use std::time::Instant;

pub fn encode_report(counts: &HashMap<String, u64>) -> Vec<u8> {
    let started = Instant::now();
    let mut out = Vec::new();
    for (key, value) in counts {
        out.extend_from_slice(key.as_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&(started.elapsed().as_micros() as u64).to_le_bytes());
    out
}
