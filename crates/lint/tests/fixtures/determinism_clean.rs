//! The clean twin: sorted iteration, caller-supplied timestamp.

use std::collections::BTreeMap;

pub fn encode_report(counts: &BTreeMap<String, u64>, elapsed_us: u64) -> Vec<u8> {
    let mut out = Vec::new();
    for (key, value) in counts {
        out.extend_from_slice(key.as_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&elapsed_us.to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn hazards_in_test_code_do_not_fire() {
        let _ = Instant::now();
        let _: HashMap<u8, u8> = HashMap::new();
    }
}
