//! Shared protocol fixture: parses three wire ops. Whether the rule
//! fires depends on the server/client twin it is paired with.

pub enum Request {
    Ping,
    Stats,
    Drain,
}

pub fn parse_request(line: &str) -> Result<Request, String> {
    match line {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        other => Err(format!("unknown op {other:?}")),
    }
}
