//! Seeded safety-comment violation: an unsafe block with no adjacent
//! SAFETY justification (the comment two functions up does not count).

pub fn read_register(addr: *const u32) -> u32 {
    unsafe { addr.read_volatile() }
}
