//! The clean twin: every parsed op has a dispatch arm.

pub fn handle_line(request: Request) -> &'static str {
    match request {
        Request::Ping => "pong",
        Request::Stats => "stats",
        Request::Drain => "draining",
    }
}
