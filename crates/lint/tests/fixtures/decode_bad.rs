//! Seeded strict-decode violation: the decoder trusts a declared
//! length and allocates before checking the remaining buffer.

pub fn decode_frame(buf: &[u8]) -> Option<Vec<u16>> {
    let count = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let mut values = Vec::with_capacity(count);
    for chunk in buf[4..].chunks(2).take(count) {
        values.push(u16::from_le_bytes([chunk[0], chunk[1]]));
    }
    Some(values)
}
