//! The clean twin: everything registered is documented and expected.

pub struct Metrics;

impl Metrics {
    pub fn new(obs: &Registry) -> Metrics {
        let _ = obs.counter("serve_requests_ok_total", "Documented and registered.");
        let _ = obs.histogram("serve_latency_us", "Documented and registered.");
        Metrics
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn registrations_in_tests_are_invisible_to_the_rule() {
        let _ = registry().counter("serve_test_only_total", "never documented");
    }
}
