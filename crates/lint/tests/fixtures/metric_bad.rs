//! Seeded metric-drift violation: registers a family the README table
//! (provided by the test) does not document.

pub struct Metrics;

impl Metrics {
    pub fn new(obs: &Registry) -> Metrics {
        let _ = obs.counter("serve_ghost_total", "Registered but undocumented.");
        let _ = obs.counter("serve_requests_ok_total", "Documented and registered.");
        Metrics
    }
}
