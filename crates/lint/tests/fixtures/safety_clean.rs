//! The clean twin: every unsafe carries an adjacent SAFETY comment.

pub fn read_register(addr: *const u32) -> u32 {
    // SAFETY: the caller guarantees `addr` is a mapped, aligned MMIO
    // register for the lifetime of this call.
    unsafe { addr.read_volatile() }
}

pub fn tagged(word: &str) -> bool {
    // The literal below mentions unsafe but is just data, not code.
    word == "unsafe"
}
