//! Clean twin for `trace-propagation`: every relay that opens a span
//! re-stamps the outgoing line with `traced_line`, so the downstream
//! hop parents under the dispatch span.

use ncl_obs::{TraceContext, Tracer};

/// The correct shape: open the child span, stamp its context onto the
/// line, relay the stamped bytes.
pub fn relay_predict(
    tracer: &Arc<Tracer>,
    ctx: &TraceContext,
    backend: &Backend,
    line: &str,
) -> Result<String, RouterError> {
    let span = tracer.start_span(ctx, "dispatch");
    let relayed = protocol::traced_line(line, &span.context());
    backend.request(&relayed)
}

/// Also correct on the persistent-connection path; mentions
/// "start_span" and ".request(" in a string literal, which is data.
pub fn relay_persistent(
    tracer: &Arc<Tracer>,
    ctx: &TraceContext,
    conn: &mut Connection,
    line: &str,
) -> Result<String, RouterError> {
    let span = tracer.start_span(ctx, "dispatch");
    let relayed = protocol::traced_line(line, &span.context());
    log(r#"start_span then .request( without restamp would orphan"#);
    conn.round_trip(&relayed)
}

/// Trace-opaque forward: no span opened, no stamp required.
pub fn relay_opaque(backend: &Backend, line: &str) -> Result<String, RouterError> {
    backend.request(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_relay_unstamped() {
        let _span = tracer.start_span(&ctx, "dispatch");
        backend.request("{}").unwrap();
    }
}
