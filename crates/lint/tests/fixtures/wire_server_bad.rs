//! Seeded wire-coverage violation: the dispatch match never handles
//! `Request::Drain`, so the op parses and then dies in a catch-all.

pub fn handle_line(request: Request) -> &'static str {
    match request {
        Request::Ping => "pong",
        Request::Stats => "stats",
        _ => "unhandled",
    }
}
