//! Seeded wire-coverage violation: no `fn drain` — the op is reachable
//! only by hand-writing JSON.

pub struct Client;

impl Client {
    pub fn ping(&mut self) -> &'static str {
        "ping"
    }

    pub fn stats(&mut self) -> &'static str {
        "stats"
    }
}
