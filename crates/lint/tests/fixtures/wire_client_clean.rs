//! The clean twin: a method per op.

pub struct Client;

impl Client {
    pub fn ping(&mut self) -> &'static str {
        "ping"
    }

    pub fn stats(&mut self) -> &'static str {
        "stats"
    }

    pub fn drain(&mut self) -> &'static str {
        "drain"
    }
}
