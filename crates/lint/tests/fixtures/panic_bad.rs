//! Seeded panic-freedom violations: one of each flagged construct in
//! production code, linted as if this were a serve hot-path file.

pub fn handle_request(line: &str, queue: &[u8]) -> u8 {
    let parsed: Option<u8> = line.parse().ok();
    let value = parsed.unwrap();
    if value > 10 {
        panic!("value too large");
    }
    queue[0] + value
}

pub fn route(role: &str) -> usize {
    match role {
        "leader" => 0,
        "follower" => 1,
        _ => unreachable!("roles are validated upstream"),
    }
}

#[cfg(test)]
mod tests {
    // Test code may panic freely — none of these should fire.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let q = [1u8, 2];
        assert_eq!(q[0], 1);
    }
}
