//! The clean twin of `panic_bad.rs`: the same shapes written
//! panic-free. Also exercises the lexer-driven negative cases — the
//! word panic! inside strings and comments must never fire.

pub fn handle_request(line: &str, queue: &[u8]) -> Option<u8> {
    let value: u8 = line.parse().ok()?;
    // A comment saying unwrap() or panic! is not a finding.
    let log = "refusing to panic!(\"...\") or .unwrap() on the hot path";
    let _ = log;
    let head = queue.first().copied().unwrap_or_default();
    head.checked_add(value)
}

pub fn route(role: &str) -> usize {
    match role {
        "leader" => 0,
        _ => 1,
    }
}
