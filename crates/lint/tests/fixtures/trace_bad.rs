//! Fixture: seeded `trace-propagation` violations. A hop opens its
//! child span but forwards the original request bytes — the replica
//! sees the client's context (or none) and its spans orphan.

use ncl_obs::{TraceContext, Tracer};

/// Violation 1: dispatch span opened, line relayed un-stamped.
pub fn relay_predict(
    tracer: &Arc<Tracer>,
    ctx: &TraceContext,
    backend: &Backend,
    line: &str,
) -> Result<String, RouterError> {
    let _span = tracer.start_span(ctx, "dispatch");
    backend.request(line)
}

/// Violation 2: same bug on the persistent-connection path.
pub fn relay_persistent(
    tracer: &Arc<Tracer>,
    ctx: &TraceContext,
    conn: &mut Connection,
    line: &str,
) -> Result<String, RouterError> {
    let span = tracer.start_span(ctx, "dispatch");
    let reply = conn.round_trip(line);
    drop(span);
    reply
}

/// Silent: relays without opening a span — a trace-opaque forward is
/// allowed to pass bytes through untouched.
pub fn relay_opaque(backend: &Backend, line: &str) -> Result<String, RouterError> {
    backend.request(line)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test code may shortcut the re-stamp; the rule must stay silent.
    #[test]
    fn shortcut_is_fine_in_tests() {
        let _span = tracer.start_span(&ctx, "dispatch");
        backend.request("{}").unwrap();
    }
}
