//! The clean twin: the declared length is validated against the
//! remaining bytes before any allocation happens.

fn need(buf: &[u8], n: usize) -> Option<()> {
    if buf.len() >= n {
        Some(())
    } else {
        None
    }
}

pub fn decode_frame(buf: &[u8]) -> Option<Vec<u16>> {
    need(buf, 4)?;
    let count = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    need(&buf[4..], count.checked_mul(2)?)?;
    let mut values = Vec::with_capacity(count);
    for chunk in buf[4..].chunks(2).take(count) {
        values.push(u16::from_le_bytes([chunk[0], chunk[1]]));
    }
    Some(values)
}
