//! Property-based tests of the methodology layer: buffer accounting,
//! method validation and storage-policy arithmetic.

use ncl_spike::codec::{self, CompressionFactor};
use ncl_spike::memory::{sample_footprint, Alignment};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use proptest::prelude::*;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};
use replay4ncl::methods::{MethodSpec, StoragePolicy};

fn raster(neurons: usize, steps: usize, seed: u64) -> SpikeRaster {
    let mut rng = Rng::seed_from_u64(seed);
    SpikeRaster::from_fn(neurons, steps, |_, _| rng.bernoulli(0.15))
}

proptest! {
    #[test]
    fn buffer_footprint_is_sum_of_sample_footprints(
        entries in 0usize..20, neurons in 1usize..40, steps in 1usize..40, seed in any::<u64>()
    ) {
        let mut buffer = LatentReplayBuffer::new(Alignment::Byte);
        let mut expected = 0u64;
        for i in 0..entries {
            let r = raster(neurons, steps, seed.wrapping_add(i as u64));
            expected += sample_footprint(r.payload_bits(), Alignment::Byte).aligned_bits;
            buffer.push(LatentEntry::reduced(r, steps * 2, (i % 5) as u16));
        }
        prop_assert_eq!(buffer.footprint().total_bits, expected);
        prop_assert_eq!(buffer.len(), entries);
    }

    #[test]
    fn compressed_entries_replay_consistently(
        neurons in 1usize..30, steps in 2usize..60, factor in 1u32..5, seed in any::<u64>()
    ) {
        let act = raster(neurons, steps, seed);
        let compressed = codec::compress(&act, CompressionFactor::new(factor).unwrap());
        let entry = LatentEntry::compressed(compressed.clone(), 3);
        // Decompressed replay equals the codec's output.
        prop_assert_eq!(entry.replay_raster(true).unwrap(), compressed.decompress());
        // Direct replay equals the stored frames.
        prop_assert_eq!(entry.replay_raster(false).unwrap(), compressed.frames().clone());
        prop_assert_eq!(entry.payload_bits(), compressed.payload_bits());
    }

    #[test]
    fn storage_policy_stored_steps_bounds(
        native in 1usize..200, factor in 1u32..6, t_star in 1usize..250
    ) {
        let codec_steps = StoragePolicy::Codec(CompressionFactor::new(factor).unwrap())
            .stored_steps(native);
        prop_assert_eq!(codec_steps, native.div_ceil(factor as usize));
        prop_assert!(codec_steps >= 1);

        let reduced_steps = StoragePolicy::Reduced(t_star).stored_steps(native);
        prop_assert_eq!(reduced_steps, t_star.min(native));
    }

    #[test]
    fn replay4ncl_always_stores_less_than_spikinglr_at_paper_ratio(native in 5usize..300) {
        // T* = 2/5 native vs codec x2 (1/2 native): ours is smaller for
        // every native T >= 5.
        let ours = MethodSpec::replay4ncl(1, (native * 2 / 5).max(1))
            .replay.unwrap().storage.stored_steps(native);
        let sota = MethodSpec::spiking_lr(1).replay.unwrap().storage.stored_steps(native);
        prop_assert!(ours <= sota, "{ours} vs {sota} at native {native}");
    }

    #[test]
    fn method_validation_catches_all_bad_divisors(div in prop::num::f32::ANY) {
        let mut m = MethodSpec::baseline();
        m.lr_divisor = div;
        let valid = div.is_finite() && div > 0.0;
        prop_assert_eq!(m.validate().is_ok(), valid);
    }

    #[test]
    fn bounded_buffer_respects_capacity(
        budget_entries in 1usize..8, pushes in 1usize..25, seed in any::<u64>()
    ) {
        let entry_bits =
            sample_footprint(raster(8, 10, 0).payload_bits(), Alignment::Byte).aligned_bits;
        let budget = entry_bits * budget_entries as u64;
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, budget);
        for i in 0..pushes {
            let outcome = buffer.push(LatentEntry::reduced(
                raster(8, 10, seed.wrapping_add(i as u64)),
                20,
                (i % 3) as u16,
            ));
            prop_assert!(outcome.was_stored(), "every entry fits individually");
            prop_assert!(
                buffer.footprint().total_bits <= budget,
                "budget invariant must hold after every push"
            );
        }
        prop_assert!(!buffer.is_empty());
        prop_assert!(buffer.len() <= pushes);
    }

    /// The hardened invariant: for ANY sequence of pushes — mixed entry
    /// sizes, including entries bigger than the whole budget — the store
    /// never ends a push over `capacity_bits`. Oversized entries are
    /// rejected, fitting entries evict.
    #[test]
    fn no_push_sequence_exceeds_capacity(
        budget in 100u64..4000,
        shapes in prop::collection::vec((1usize..30, 1usize..30, 0u16..4), 1..30),
        seed in any::<u64>()
    ) {
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, budget);
        for (i, (neurons, steps, label)) in shapes.iter().enumerate() {
            let entry = LatentEntry::reduced(
                raster(*neurons, *steps, seed.wrapping_add(i as u64)),
                steps * 2,
                *label,
            );
            let own_bits =
                sample_footprint(entry.payload_bits(), Alignment::Byte).aligned_bits;
            let outcome = buffer.push(entry);
            prop_assert_eq!(
                outcome.was_stored(),
                own_bits <= budget,
                "stored iff the entry alone fits the budget"
            );
            prop_assert!(
                buffer.footprint().total_bits <= budget,
                "footprint {} over budget {} after push {}",
                buffer.footprint().total_bits, budget, i
            );
        }
    }

    /// Eviction stays class-balanced: after pushing a lone minority-class
    /// entry followed by majority-class pressure, the minority entry
    /// survives, and the spread between class counts stays at most the
    /// spread eviction-by-heaviest-class can leave (one).
    #[test]
    fn eviction_preserves_class_balance(
        budget_entries in 2usize..7, majority_pushes in 8usize..30, seed in any::<u64>()
    ) {
        let entry_bits =
            sample_footprint(raster(8, 10, 0).payload_bits(), Alignment::Byte).aligned_bits;
        let budget = entry_bits * budget_entries as u64;
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, budget);
        buffer.push(LatentEntry::reduced(raster(8, 10, seed), 20, 1));
        for i in 0..majority_pushes {
            buffer.push(LatentEntry::reduced(
                raster(8, 10, seed.wrapping_add(1 + i as u64)),
                20,
                0,
            ));
        }
        prop_assert_eq!(
            buffer.class_count(1),
            1,
            "minority class survives sustained majority pressure"
        );
        let majority = buffer.class_count(0);
        prop_assert_eq!(majority, budget_entries - 1, "majority fills the rest");
    }
}
