//! The three phases of Alg. 1: pre-training, network preparation (latent
//! replay generation) and new-task activation capture.

use ncl_data::generator::{self, GeneratedData};
use ncl_data::split::{replay_subset, ClassIncrementalSplit};
use ncl_data::Dataset;
use ncl_hw::OpCounts;
use ncl_snn::adaptive::ThresholdMode;
use ncl_snn::optimizer::Optimizer;
use ncl_snn::trainer::{self, TrainOptions};
use ncl_snn::Network;
use ncl_spike::codec;
use ncl_spike::resample::{resample, ResampleStrategy};
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;

use crate::buffer::{LatentEntry, LatentReplayBuffer};
use crate::config::ScenarioConfig;
use crate::error::NclError;
use crate::methods::{MethodSpec, StoragePolicy};

/// Seed salts keeping the phase streams independent.
const PRETRAIN_SALT: u64 = 0x11;
const REPLAY_SALT: u64 = 0x22;
const CL_SALT: u64 = 0x33;

/// Outcome of the pre-training phase (Alg. 1 lines 1–5).
#[derive(Debug, Clone)]
pub struct PretrainOutcome {
    /// The trained network.
    pub network: Network,
    /// Top-1 accuracy on the old-class test split.
    pub test_acc: f64,
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
}

/// Generates the scenario's dataset pair (deterministic per config).
///
/// # Errors
///
/// Returns [`NclError::Data`] for invalid dataset parameters.
pub fn scenario_data(config: &ScenarioConfig) -> Result<GeneratedData, NclError> {
    Ok(generator::generate_pair(&config.data)?)
}

/// The scenario's class split (hold out the last class, per the paper).
///
/// # Errors
///
/// Returns [`NclError::Data`] if the dataset has fewer than 2 classes.
pub fn scenario_split(config: &ScenarioConfig) -> Result<ClassIncrementalSplit, NclError> {
    Ok(ClassIncrementalSplit::hold_out_last(config.data.classes)?)
}

/// Collects `(raster, label)` references of a dataset for the trainer.
#[must_use]
pub fn sample_refs(dataset: &Dataset) -> Vec<(&SpikeRaster, u16)> {
    dataset.iter().map(|s| (&s.raster, s.label)).collect()
}

/// Converts a raw input raster to a method's operating timestep: reduced
/// methods decimate the event stream at the sensor interface *before* the
/// frozen stages, so their whole CL pipeline (frozen inference, training,
/// evaluation) runs at T*. Returns the raster and the decimation work.
///
/// # Errors
///
/// Returns [`NclError::Spike`] if resampling fails.
pub fn method_input(
    raster: &SpikeRaster,
    method: &MethodSpec,
    config: &ScenarioConfig,
) -> Result<(SpikeRaster, OpCounts), NclError> {
    let operating = method.operating_steps(config.data.steps);
    if operating < raster.steps() {
        let reduced = resample(raster, operating, ResampleStrategy::Decimate)?;
        let ops = OpCounts::codec(reduced.steps() as u64, 0, false);
        Ok((reduced, ops))
    } else {
        Ok((raster.clone(), OpCounts::default()))
    }
}

/// Pre-training (Alg. 1 lines 1–5): trains a fresh network on the 19
/// pre-training classes at the native timestep and constant threshold.
///
/// # Errors
///
/// Returns [`NclError`] for invalid configs or training failures.
pub fn pretrain(config: &ScenarioConfig) -> Result<PretrainOutcome, NclError> {
    config.validate()?;
    let data = scenario_data(config)?;
    let split = scenario_split(config)?;
    let train = split.pretrain_subset(&data.train);
    let test = split.pretrain_subset(&data.test);

    let mut network = Network::new(config.network.clone())?;
    let mut optimizer = Optimizer::adam(config.pretrain_lr);
    let options = TrainOptions {
        from_stage: 0,
        batch_size: config.batch_size,
        parallelism: config.parallelism,
        threshold_mode: ThresholdMode::Constant,
    };
    let mut rng = Rng::seed_from_u64(config.seed ^ PRETRAIN_SALT);

    let refs = sample_refs(&train);
    let mut epoch_losses = Vec::with_capacity(config.pretrain_epochs);
    // One arena set for the whole phase: epochs after the first allocate
    // nothing on the training hot path.
    let mut scratch = trainer::TrainScratch::new();
    for _ in 0..config.pretrain_epochs {
        let report = trainer::train_epoch_with(
            &mut network,
            &refs,
            &mut optimizer,
            &options,
            &mut rng,
            &mut scratch,
        )?;
        epoch_losses.push(report.mean_loss);
    }

    let test_refs = sample_refs(&test);
    let acc = trainer::evaluate(&network, &test_refs, 0, ThresholdMode::Constant)?;
    Ok(PretrainOutcome {
        network,
        test_acc: acc.top1(),
        epoch_losses,
    })
}

/// Latent-replay generation (Alg. 1 lines 6–20): runs the frozen stages on
/// the replay subset, stores activations per the method's storage policy,
/// and counts the device work (frozen inference + codec + latent-memory
/// writes).
///
/// # Errors
///
/// Returns [`NclError`] for invalid specs or simulation failures.
pub fn prepare_buffer(
    network: &Network,
    config: &ScenarioConfig,
    method: &MethodSpec,
    train_data: &Dataset,
    split: &ClassIncrementalSplit,
) -> Result<(LatentReplayBuffer, OpCounts), NclError> {
    method.validate()?;
    let mut buffer = LatentReplayBuffer::new(config.alignment);
    let mut ops = OpCounts::default();
    let Some(replay) = &method.replay else {
        return Ok((buffer, ops));
    };

    let mut rng = Rng::seed_from_u64(config.seed ^ REPLAY_SALT);
    let replay_set = replay_subset(train_data, split, replay.per_class, &mut rng)?;

    let base = config.network.lif.v_threshold;
    for sample in &replay_set {
        // Reduced methods decimate the event stream first: their whole
        // latent-generation pass runs at T*.
        let (input, input_ops) = method_input(&sample.raster, method, config)?;
        ops += input_ops;
        // Alg. 1 lines 8-19: the latent activations are generated with the
        // method's threshold policy applied to the frozen stages.
        let schedule = method.threshold_mode.schedule_for(&input, base)?;
        let (activation, activity) =
            network.activations_at_traced(config.insertion_layer, &input, Some(&schedule))?;
        ops += OpCounts::forward(&activity, config.network.recurrent);

        let entry = match replay.storage {
            StoragePolicy::Codec(factor) => {
                let compressed = codec::compress(&activation, factor);
                ops += OpCounts::codec(
                    compressed.stored_steps() as u64,
                    activation.neurons() as u64,
                    true,
                );
                LatentEntry::compressed(compressed, sample.label)
            }
            StoragePolicy::Reduced(_) => {
                // The activation already lives at T*; store it verbatim.
                ops +=
                    OpCounts::codec(activation.steps() as u64, activation.neurons() as u64, true);
                LatentEntry::reduced(activation, config.data.steps, sample.label)
            }
        };
        let outcome = buffer.push(entry);
        debug_assert!(
            outcome.was_stored(),
            "unbounded scenario buffer accepts every entry"
        );
    }
    Ok((buffer, ops))
}

/// New-task activation capture (Alg. 1 line 23): decimates each CL
/// training sample to the method's operating timestep, then runs the
/// frozen stages on it. Returns the samples and the device work of one
/// generation pass; the scenario charges that work once per CL epoch, as
/// Alg. 1 regenerates `A_new` inside the epoch loop.
///
/// # Errors
///
/// Returns [`NclError`] for simulation failures.
pub fn new_task_activations(
    network: &Network,
    config: &ScenarioConfig,
    method: &MethodSpec,
    cl_train: &Dataset,
) -> Result<(Vec<(SpikeRaster, u16)>, OpCounts), NclError> {
    let mut samples = Vec::with_capacity(cl_train.len());
    let mut ops = OpCounts::default();
    let base = config.network.lif.v_threshold;
    for s in cl_train {
        let (input, input_ops) = method_input(&s.raster, method, config)?;
        ops += input_ops;
        let schedule = method.threshold_mode.schedule_for(&input, base)?;
        let (activation, activity) =
            network.activations_at_traced(config.insertion_layer, &input, Some(&schedule))?;
        ops += OpCounts::forward(&activity, config.network.recurrent);
        samples.push((activation, s.label));
    }
    Ok((samples, ops))
}

/// Converts evaluation samples to the learning-path inputs of a method:
/// input decimated to the operating timestep, then frozen activations at
/// the insertion layer. (Evaluation work is not charged to training
/// cost.)
///
/// # Errors
///
/// Returns [`NclError`] for simulation failures.
pub fn eval_activations(
    network: &Network,
    config: &ScenarioConfig,
    method: &MethodSpec,
    eval_data: &Dataset,
) -> Result<Vec<(SpikeRaster, u16)>, NclError> {
    let base = config.network.lif.v_threshold;
    let mut out = Vec::with_capacity(eval_data.len());
    for s in eval_data {
        let (input, _) = method_input(&s.raster, method, config)?;
        let schedule = method.threshold_mode.schedule_for(&input, base)?;
        let activation =
            network.activations_at_scheduled(config.insertion_layer, &input, Some(&schedule))?;
        out.push((activation, s.label));
    }
    Ok(out)
}

/// The RNG stream for the CL training phase of a scenario.
#[must_use]
pub fn cl_rng(config: &ScenarioConfig) -> Rng {
    Rng::seed_from_u64(config.seed ^ CL_SALT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::MethodSpec;

    fn smoke() -> ScenarioConfig {
        let mut c = ScenarioConfig::smoke();
        c.pretrain_epochs = 2; // keep the phase tests fast
        c
    }

    #[test]
    fn pretrain_produces_working_network() {
        let config = smoke();
        let outcome = pretrain(&config).unwrap();
        assert_eq!(outcome.epoch_losses.len(), 2);
        assert!(outcome.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(outcome.test_acc >= 0.0 && outcome.test_acc <= 1.0);
    }

    #[test]
    fn pretrain_is_deterministic() {
        let config = smoke();
        let a = pretrain(&config).unwrap();
        let b = pretrain(&config).unwrap();
        assert_eq!(a.network, b.network);
        assert_eq!(a.epoch_losses, b.epoch_losses);
    }

    #[test]
    fn prepare_buffer_stores_per_policy() {
        let config = smoke();
        let data = scenario_data(&config).unwrap();
        let split = scenario_split(&config).unwrap();
        let network = Network::new(config.network.clone()).unwrap();

        // SpikingLR: codec x2 storage at native steps.
        let sota = MethodSpec::spiking_lr(2);
        let (buf, ops) = prepare_buffer(&network, &config, &sota, &data.train, &split).unwrap();
        assert_eq!(buf.len(), 2 * (config.data.classes as usize - 1));
        let native = config.data.steps;
        for e in &buf {
            assert_eq!(e.stored_steps(), native.div_ceil(2));
            assert_eq!(e.original_steps(), native);
        }
        assert!(ops.synaptic_ops > 0, "frozen stages cost synaptic work");
        assert!(ops.mem_write_bits > 0, "latent memory written");

        // Replay4NCL: reduced storage.
        let ours = MethodSpec::replay4ncl(2, native / 2);
        let (buf, _) = prepare_buffer(&network, &config, &ours, &data.train, &split).unwrap();
        for e in &buf {
            assert_eq!(e.stored_steps(), native / 2);
        }

        // Baseline: nothing stored, nothing spent.
        let (buf, ops) = prepare_buffer(
            &network,
            &config,
            &MethodSpec::baseline(),
            &data.train,
            &split,
        )
        .unwrap();
        assert!(buf.is_empty());
        assert!(ops.is_zero());
    }

    #[test]
    fn buffer_never_contains_new_class() {
        let config = smoke();
        let data = scenario_data(&config).unwrap();
        let split = scenario_split(&config).unwrap();
        let network = Network::new(config.network.clone()).unwrap();
        let (buf, _) = prepare_buffer(
            &network,
            &config,
            &MethodSpec::spiking_lr(3),
            &data.train,
            &split,
        )
        .unwrap();
        let new_class = config.data.classes - 1;
        assert!(buf.iter().all(|e| e.label() != new_class));
    }

    #[test]
    fn new_task_activations_reduce_for_replay4ncl() {
        let config = smoke();
        let data = scenario_data(&config).unwrap();
        let split = scenario_split(&config).unwrap();
        let cl_train = split.continual_subset(&data.train);
        let network = Network::new(config.network.clone()).unwrap();

        let native = config.data.steps;
        let (sota_acts, sota_ops) =
            new_task_activations(&network, &config, &MethodSpec::spiking_lr(2), &cl_train).unwrap();
        assert!(sota_acts.iter().all(|(r, _)| r.steps() == native));

        let (our_acts, our_ops) = new_task_activations(
            &network,
            &config,
            &MethodSpec::replay4ncl(2, native / 2),
            &cl_train,
        )
        .unwrap();
        assert!(our_acts.iter().all(|(r, _)| r.steps() == native / 2));
        // Both pay frozen-forward work; ours additionally decimates.
        assert!(sota_ops.synaptic_ops > 0 && our_ops.synaptic_ops > 0);
        assert!(our_ops.codec_frames > sota_ops.codec_frames);
        // All samples are the held-out class.
        assert!(our_acts.iter().all(|(_, l)| *l == config.data.classes - 1));
    }

    #[test]
    fn eval_activations_match_operating_steps() {
        let config = smoke();
        let data = scenario_data(&config).unwrap();
        let split = scenario_split(&config).unwrap();
        let old_test = split.pretrain_subset(&data.test);
        let network = Network::new(config.network.clone()).unwrap();
        let method = MethodSpec::replay4ncl(2, config.data.steps / 2);
        let acts = eval_activations(&network, &config, &method, &old_test).unwrap();
        assert_eq!(acts.len(), old_test.len());
        assert!(acts.iter().all(|(r, _)| r.steps() == config.data.steps / 2));
    }
}
