//! Pre-trained model caching.
//!
//! Pre-training dominates the cost of every figure regeneration, and every
//! method comparison starts from the *same* pre-trained network. This
//! module memoizes pre-training outcomes (a) in-process and (b) on disk
//! under `NCL_CACHE_DIR` (default `target/ncl-cache`), keyed by a hash of
//! every configuration field that influences pre-training.
//!
//! Concurrent callers — the `ncl_runtime` engine runs many scenarios at
//! once, typically sharing one pre-train key — are *single-flighted*: a
//! per-key in-flight guard lets the first caller train while the rest
//! block on the guard and then read the freshly-memoized entry, so a key
//! is never trained twice however many workers race on it.
//!
//! Disk-cache persistence failures are non-fatal but no longer silent:
//! they are logged to stderr unless `NCL_CACHE_QUIET` is set.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use ncl_snn::{serialize, Network};

use crate::config::ScenarioConfig;
use crate::error::NclError;
use crate::phases;

/// In-process memo of pre-trained networks.
static MEMO: OnceLock<Mutex<HashMap<u64, (Network, f64)>>> = OnceLock::new();

/// Per-key in-flight guards: the mutex a caller must hold while producing
/// the entry for that key. Entries are tiny and keyed by config hash, so
/// they are kept for the process lifetime.
static INFLIGHT: OnceLock<Mutex<HashMap<u64, Arc<Mutex<()>>>>> = OnceLock::new();

/// Per-key count of *actual* pre-training runs (not cache hits), for the
/// single-flight tests and cache diagnostics.
static TRAIN_RUNS: OnceLock<Mutex<HashMap<u64, u64>>> = OnceLock::new();

fn memo() -> &'static Mutex<HashMap<u64, (Network, f64)>> {
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

fn inflight_gate(key: u64) -> Arc<Mutex<()>> {
    let gates = INFLIGHT.get_or_init(|| Mutex::new(HashMap::new()));
    Arc::clone(gates.lock().entry(key).or_default())
}

/// How many times `key` was actually pre-trained (in this process), as
/// opposed to served from the memo or disk cache. With the single-flight
/// guard this stays at 1 per key no matter how many threads race.
#[must_use]
pub fn training_runs(key: u64) -> u64 {
    TRAIN_RUNS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .get(&key)
        .copied()
        .unwrap_or(0)
}

fn record_training_run(key: u64) {
    *TRAIN_RUNS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .entry(key)
        .or_insert(0) += 1;
}

/// Hash of every config field pre-training depends on. The insertion
/// layer, CL epochs and profile are deliberately excluded — they only
/// affect the CL phase, so figure sweeps over them share one cache entry.
#[must_use]
pub fn pretrain_key(config: &ScenarioConfig) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}", config.data).hash(&mut hasher);
    format!("{:?}", config.network).hash(&mut hasher);
    config.pretrain_epochs.hash(&mut hasher);
    config.pretrain_lr.to_bits().hash(&mut hasher);
    config.batch_size.hash(&mut hasher);
    config.seed.hash(&mut hasher);
    hasher.finish()
}

fn cache_dir() -> PathBuf {
    std::env::var_os("NCL_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/ncl-cache"))
}

fn cache_path(key: u64) -> PathBuf {
    cache_dir().join(format!("pretrain-{key:016x}.snn"))
}

/// Whether disk-cache warnings are suppressed (`NCL_CACHE_QUIET` set to
/// anything but `0` or the empty string).
#[must_use]
pub fn warnings_suppressed() -> bool {
    std::env::var_os("NCL_CACHE_QUIET").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Persistence failures only cost future retraining, but they must not
/// disappear invisibly: a mis-set `NCL_CACHE_DIR` would otherwise silently
/// retrain on every process start.
fn warn_persist_failed(path: &Path, error: &std::io::Error) {
    if !warnings_suppressed() {
        eprintln!(
            "replay4ncl::cache: warning: failed to persist pre-trained model to {} ({error}); \
             set NCL_CACHE_QUIET=1 to silence",
            path.display()
        );
    }
}

/// Returns the pre-trained network and its old-class test accuracy for a
/// scenario, training it on first use and reusing the in-process/on-disk
/// cache afterwards.
///
/// Concurrent callers with the same pre-train key are single-flighted: one
/// trains, the rest block and reuse its result. Disk-cache write failures
/// still return the trained result but are logged to stderr (silence with
/// `NCL_CACHE_QUIET`); malformed cache files are ignored and retrained.
///
/// # Errors
///
/// Returns [`NclError`] if the configuration is invalid or training fails.
pub fn pretrained_network(config: &ScenarioConfig) -> Result<(Network, f64), NclError> {
    config.validate()?;
    let key = pretrain_key(config);

    if let Some(hit) = memo().lock().get(&key) {
        return Ok(hit.clone());
    }

    // Serialize producers of this key. Whoever wins the gate trains (or
    // loads from disk) and memoizes; the losers block here, then find the
    // memo populated. Failures release the gate so the next caller retries.
    let gate = inflight_gate(key);
    let _guard = gate.lock();
    if let Some(hit) = memo().lock().get(&key) {
        return Ok(hit.clone());
    }

    let path = cache_path(key);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(network) = serialize::from_bytes(&bytes) {
            let acc = evaluate_pretrain(config, &network)?;
            let entry = (network, acc);
            memo().lock().insert(key, entry.clone());
            return Ok(entry);
        }
    }

    let outcome = phases::pretrain(config)?;
    record_training_run(key);
    let entry = (outcome.network, outcome.test_acc);
    match std::fs::create_dir_all(cache_dir()) {
        Ok(()) => {
            if let Err(e) = std::fs::write(&path, serialize::to_bytes(&entry.0)) {
                warn_persist_failed(&path, &e);
            }
        }
        Err(e) => warn_persist_failed(&path, &e),
    }
    memo().lock().insert(key, entry.clone());
    Ok(entry)
}

/// Re-evaluates a (possibly disk-loaded) pre-trained network on the
/// scenario's old-class test split.
fn evaluate_pretrain(config: &ScenarioConfig, network: &Network) -> Result<f64, NclError> {
    let data = phases::scenario_data(config)?;
    let split = phases::scenario_split(config)?;
    let test = split.pretrain_subset(&data.test);
    let refs = phases::sample_refs(&test);
    let acc = ncl_snn::trainer::evaluate(
        network,
        &refs,
        0,
        ncl_snn::adaptive::ThresholdMode::Constant,
    )?;
    Ok(acc.top1())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioConfig {
        let mut c = ScenarioConfig::smoke();
        c.pretrain_epochs = 2;
        c.seed = 9912; // distinct cache key for this test module
        c
    }

    #[test]
    fn key_is_stable_and_selective() {
        let a = tiny();
        assert_eq!(pretrain_key(&a), pretrain_key(&a.clone()));
        // CL-only fields do not change the key.
        let mut b = a.clone();
        b.cl_epochs += 10;
        b.insertion_layer = 0;
        assert_eq!(pretrain_key(&a), pretrain_key(&b));
        // Pre-training fields do.
        let mut c = a.clone();
        c.pretrain_epochs += 1;
        assert_ne!(pretrain_key(&a), pretrain_key(&c));
        let mut d = a.clone();
        d.data.seed += 1;
        assert_ne!(pretrain_key(&a), pretrain_key(&d));
    }

    #[test]
    fn memo_returns_identical_network() {
        let config = tiny();
        let (n1, a1) = pretrained_network(&config).unwrap();
        let (n2, a2) = pretrained_network(&config).unwrap();
        assert_eq!(n1, n2);
        assert!((a1 - a2).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_is_rejected_before_cache() {
        let mut config = tiny();
        config.batch_size = 0;
        assert!(pretrained_network(&config).is_err());
    }

    /// A seed no other test or earlier process used: a warm memo or a
    /// stale on-disk entry for the key would bypass training and break the
    /// `training_runs` accounting these tests assert on.
    fn unused_seed(salt: u64) -> u64 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64);
        (u64::from(std::process::id()) << 32) ^ (nanos << 8) ^ salt
    }

    /// Removes the on-disk entry a fresh-key test persisted: the key is
    /// unique by construction, so the file could never be reused and would
    /// only accumulate as garbage under the cache dir.
    fn discard_disk_entry(key: u64) {
        let _ = std::fs::remove_file(cache_path(key));
    }

    #[test]
    fn concurrent_callers_single_flight_one_training() {
        let mut config = tiny();
        config.seed = unused_seed(1);
        let key = pretrain_key(&config);
        assert_eq!(training_runs(key), 0, "key must start untrained");

        let outcomes: Vec<(Network, f64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let config = config.clone();
                    scope.spawn(move || pretrained_network(&config).expect("pretrain"))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect()
        });

        assert_eq!(
            training_runs(key),
            1,
            "4 racing callers must train exactly once"
        );
        for (network, acc) in &outcomes[1..] {
            assert_eq!(network, &outcomes[0].0);
            assert!((acc - outcomes[0].1).abs() < 1e-12);
        }
        discard_disk_entry(key);
    }

    #[test]
    fn distinct_keys_do_not_serialize_each_other() {
        // Two different keys trained concurrently: both train (no false
        // sharing of the in-flight guard).
        let mut a = tiny();
        a.seed = unused_seed(2);
        let mut b = a.clone();
        b.seed += 1;
        std::thread::scope(|scope| {
            let ha = scope.spawn(|| pretrained_network(&a).expect("a"));
            let hb = scope.spawn(|| pretrained_network(&b).expect("b"));
            ha.join().expect("a join");
            hb.join().expect("b join");
        });
        assert_eq!(training_runs(pretrain_key(&a)), 1);
        assert_eq!(training_runs(pretrain_key(&b)), 1);
        discard_disk_entry(pretrain_key(&a));
        discard_disk_entry(pretrain_key(&b));
    }

    #[test]
    fn quiet_flag_parsing() {
        // Do not mutate the environment here (tests run concurrently);
        // with the variable unset, warnings are enabled.
        if std::env::var_os("NCL_CACHE_QUIET").is_none() {
            assert!(!warnings_suppressed());
        }
    }
}
