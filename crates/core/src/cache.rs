//! Pre-trained model caching.
//!
//! Pre-training dominates the cost of every figure regeneration, and every
//! method comparison starts from the *same* pre-trained network. This
//! module memoizes pre-training outcomes (a) in-process and (b) on disk
//! under `NCL_CACHE_DIR` (default `target/ncl-cache`), keyed by a hash of
//! every configuration field that influences pre-training.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::OnceLock;

use parking_lot::Mutex;

use ncl_snn::{serialize, Network};

use crate::config::ScenarioConfig;
use crate::error::NclError;
use crate::phases;

/// In-process memo of pre-trained networks.
static MEMO: OnceLock<Mutex<HashMap<u64, (Network, f64)>>> = OnceLock::new();

fn memo() -> &'static Mutex<HashMap<u64, (Network, f64)>> {
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Hash of every config field pre-training depends on. The insertion
/// layer, CL epochs and profile are deliberately excluded — they only
/// affect the CL phase, so figure sweeps over them share one cache entry.
#[must_use]
pub fn pretrain_key(config: &ScenarioConfig) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}", config.data).hash(&mut hasher);
    format!("{:?}", config.network).hash(&mut hasher);
    config.pretrain_epochs.hash(&mut hasher);
    config.pretrain_lr.to_bits().hash(&mut hasher);
    config.batch_size.hash(&mut hasher);
    config.seed.hash(&mut hasher);
    hasher.finish()
}

fn cache_dir() -> PathBuf {
    std::env::var_os("NCL_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/ncl-cache"))
}

fn cache_path(key: u64) -> PathBuf {
    cache_dir().join(format!("pretrain-{key:016x}.snn"))
}

/// Returns the pre-trained network and its old-class test accuracy for a
/// scenario, training it on first use and reusing the in-process/on-disk
/// cache afterwards.
///
/// Disk-cache write failures are swallowed (the result is still returned);
/// malformed cache files are ignored and retrained.
///
/// # Errors
///
/// Returns [`NclError`] if the configuration is invalid or training fails.
pub fn pretrained_network(config: &ScenarioConfig) -> Result<(Network, f64), NclError> {
    config.validate()?;
    let key = pretrain_key(config);

    if let Some(hit) = memo().lock().get(&key) {
        return Ok(hit.clone());
    }

    let path = cache_path(key);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(network) = serialize::from_bytes(&bytes) {
            let acc = evaluate_pretrain(config, &network)?;
            let entry = (network, acc);
            memo().lock().insert(key, entry.clone());
            return Ok(entry);
        }
    }

    let outcome = phases::pretrain(config)?;
    let entry = (outcome.network, outcome.test_acc);
    if std::fs::create_dir_all(cache_dir()).is_ok() {
        // Best effort: a failed write only costs future retraining.
        let _ = std::fs::write(&path, serialize::to_bytes(&entry.0));
    }
    memo().lock().insert(key, entry.clone());
    Ok(entry)
}

/// Re-evaluates a (possibly disk-loaded) pre-trained network on the
/// scenario's old-class test split.
fn evaluate_pretrain(config: &ScenarioConfig, network: &Network) -> Result<f64, NclError> {
    let data = phases::scenario_data(config)?;
    let split = phases::scenario_split(config)?;
    let test = split.pretrain_subset(&data.test);
    let refs = phases::sample_refs(&test);
    let acc = ncl_snn::trainer::evaluate(
        network,
        &refs,
        0,
        ncl_snn::adaptive::ThresholdMode::Constant,
    )?;
    Ok(acc.top1())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioConfig {
        let mut c = ScenarioConfig::smoke();
        c.pretrain_epochs = 2;
        c.seed = 9912; // distinct cache key for this test module
        c
    }

    #[test]
    fn key_is_stable_and_selective() {
        let a = tiny();
        assert_eq!(pretrain_key(&a), pretrain_key(&a.clone()));
        // CL-only fields do not change the key.
        let mut b = a.clone();
        b.cl_epochs += 10;
        b.insertion_layer = 0;
        assert_eq!(pretrain_key(&a), pretrain_key(&b));
        // Pre-training fields do.
        let mut c = a.clone();
        c.pretrain_epochs += 1;
        assert_ne!(pretrain_key(&a), pretrain_key(&c));
        let mut d = a.clone();
        d.data.seed += 1;
        assert_ne!(pretrain_key(&a), pretrain_key(&d));
    }

    #[test]
    fn memo_returns_identical_network() {
        let config = tiny();
        let (n1, a1) = pretrained_network(&config).unwrap();
        let (n2, a2) = pretrained_network(&config).unwrap();
        assert_eq!(n1, n2);
        assert!((a1 - a2).abs() < 1e-12);
    }

    #[test]
    fn invalid_config_is_rejected_before_cache() {
        let mut config = tiny();
        config.batch_size = 0;
        assert!(pretrained_network(&config).is_err());
    }
}
