//! **Replay4NCL** — an efficient memory-replay methodology for
//! neuromorphic continual learning (Minhas et al., DAC 2025), reproduced
//! in Rust.
//!
//! A recurrent spiking network is pre-trained on 19 of 20 classes of an
//! SHD-like event dataset, then learns the 20th class in a
//! continual-learning (CL) phase. To avoid catastrophic forgetting,
//! *latent replay* activations — spike rasters captured at an insertion
//! layer — are mixed into the CL training stream. Replay4NCL's
//! contribution over the SpikingLR state of the art is efficiency on
//! embedded devices:
//!
//! 1. **timestep optimization** — latent data is stored and replayed at a
//!    reduced timestep count T* (20 % smaller latent memory, multiple-fold
//!    lower training latency/energy);
//! 2. **parameter adjustments** — an adaptive firing threshold (Alg. 1)
//!    and a 100× lower CL learning rate compensate the information lost
//!    with fewer spikes;
//! 3. **insertion-layer strategy** — a design-space exploration over where
//!    the latent data enters the network.
//!
//! The [`methods`] module expresses the baseline, SpikingLR and
//! Replay4NCL as settings of one knob set; [`scenario`] runs the full
//! class-incremental protocol and records accuracy plus modeled
//! latency/energy/memory per epoch.
//!
//! # Quickstart
//!
//! ```no_run
//! use replay4ncl::{cache, methods::MethodSpec, scenario, ScenarioConfig};
//!
//! # fn main() -> Result<(), replay4ncl::NclError> {
//! let config = ScenarioConfig::smoke(); // or ScenarioConfig::paper()
//! let (network, pretrain_acc) = cache::pretrained_network(&config)?;
//! let t_star = config.data.steps * 2 / 5; // the paper's T* = 40 at T = 100
//! let result = scenario::run_method(
//!     &config,
//!     &MethodSpec::replay4ncl(4, t_star),
//!     &network,
//!     pretrain_acc,
//! )?;
//! println!("{}", replay4ncl::report::summarize(&result));
//! # Ok(())
//! # }
//! ```

pub mod buffer;
pub mod cache;
pub mod config;
pub mod error;
pub mod methods;
pub mod metrics;
pub mod phases;
pub mod report;
pub mod scenario;
pub mod sequence;

pub use config::ScenarioConfig;
pub use error::NclError;
pub use methods::MethodSpec;
pub use scenario::{EpochRecord, ScenarioResult};
