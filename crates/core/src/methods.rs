//! Continual-learning method specifications.
//!
//! All three systems the paper evaluates are expressed as settings of one
//! knob set, which makes ablations (Section III-B's individual parameter
//! adjustments) first-class:
//!
//! | method | replay | stored frames | decompress | threshold | η divisor |
//! |---|---|---|---|---|---|
//! | [`MethodSpec::baseline`] | no | — | — | constant | 1 |
//! | [`MethodSpec::spiking_lr`] | yes | `T / 2` (codec ×2) | yes | constant | 1 |
//! | [`MethodSpec::replay4ncl`] | yes | `T*` (reduced) | no | adaptive | 100 |

use ncl_snn::adaptive::{AdaptivePolicy, ThresholdMode};
use ncl_spike::codec::CompressionFactor;
use serde::{Deserialize, Serialize};

use crate::error::NclError;

/// How latent-replay activations are stored (and therefore how many frames
/// the latent memory holds per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoragePolicy {
    /// Keep every `factor`-th frame of the native-T activation (the
    /// SpikingLR codec of Fig. 7); replay decompresses back to `T`.
    Codec(CompressionFactor),
    /// Decimate to a fixed reduced frame count `T*` (Replay4NCL's timestep
    /// optimization); replay feeds the stored frames directly.
    Reduced(usize),
}

impl StoragePolicy {
    /// Frames stored per sample for a native step count of `native_steps`.
    #[must_use]
    pub fn stored_steps(&self, native_steps: usize) -> usize {
        match self {
            StoragePolicy::Codec(factor) => native_steps.div_ceil(factor.get() as usize),
            StoragePolicy::Reduced(t_star) => (*t_star).min(native_steps),
        }
    }
}

/// Replay configuration of a method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplaySpec {
    /// Latent samples stored per old class (`TS_replay` size / class).
    pub per_class: usize,
    /// Storage policy for the latent activations.
    pub storage: StoragePolicy,
    /// Whether replay re-expands stored frames to the native step count
    /// (SpikingLR) or feeds them directly at the stored length
    /// (Replay4NCL).
    pub decompress: bool,
}

/// A fully-specified continual-learning method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSpec {
    /// Display name (used in reports and figures).
    pub name: String,
    /// Replay settings; `None` is the naive fine-tuning baseline.
    pub replay: Option<ReplaySpec>,
    /// Threshold handling in the CL phase (learning stages only).
    pub threshold_mode: ThresholdMode,
    /// CL learning-rate divisor: `η_cl = η_pre / divisor` (Alg. 1: 100).
    pub lr_divisor: f32,
}

impl MethodSpec {
    /// The no-NCL baseline: fine-tune the learning stages on new-task data
    /// only (exhibits catastrophic forgetting, Fig. 1(a)).
    #[must_use]
    pub fn baseline() -> Self {
        MethodSpec {
            name: "Baseline".into(),
            replay: None,
            threshold_mode: ThresholdMode::Constant,
            lr_divisor: 1.0,
        }
    }

    /// The state-of-the-art SpikingLR (Dequino et al.): native timesteps,
    /// ×2 codec storage with decompression, constant threshold, full CL
    /// learning rate.
    #[must_use]
    pub fn spiking_lr(replay_per_class: usize) -> Self {
        MethodSpec {
            name: "SpikingLR".into(),
            replay: Some(ReplaySpec {
                per_class: replay_per_class,
                storage: StoragePolicy::Codec(
                    CompressionFactor::new(2).expect("2 is a valid factor"),
                ),
                decompress: true,
            }),
            threshold_mode: ThresholdMode::Constant,
            lr_divisor: 1.0,
        }
    }

    /// SpikingLR with naively reduced timesteps and no enhancements — the
    /// case-study configuration of Fig. 2(b) / Fig. 8.
    #[must_use]
    pub fn spiking_lr_reduced(replay_per_class: usize, t_star: usize) -> Self {
        MethodSpec {
            name: format!("SpikingLR-T{t_star}"),
            replay: Some(ReplaySpec {
                per_class: replay_per_class,
                storage: StoragePolicy::Reduced(t_star),
                decompress: false,
            }),
            threshold_mode: ThresholdMode::Constant,
            lr_divisor: 1.0,
        }
    }

    /// The proposed Replay4NCL: reduced-timestep latent storage replayed
    /// directly, adaptive threshold, `η_cl = η_pre / 100`.
    #[must_use]
    pub fn replay4ncl(replay_per_class: usize, t_star: usize) -> Self {
        MethodSpec {
            name: "Replay4NCL".into(),
            replay: Some(ReplaySpec {
                per_class: replay_per_class,
                storage: StoragePolicy::Reduced(t_star),
                decompress: false,
            }),
            threshold_mode: ThresholdMode::Adaptive(AdaptivePolicy::default()),
            lr_divisor: 100.0,
        }
    }

    /// Replay4NCL with individual enhancements toggled (for the ablation
    /// study): `adaptive_threshold` off falls back to a constant threshold,
    /// `reduced_lr` off keeps the pre-training learning rate.
    #[must_use]
    pub fn replay4ncl_ablation(
        replay_per_class: usize,
        t_star: usize,
        adaptive_threshold: bool,
        reduced_lr: bool,
    ) -> Self {
        let mut spec = MethodSpec::replay4ncl(replay_per_class, t_star);
        spec.name = format!(
            "Replay4NCL[thr={},lr={}]",
            if adaptive_threshold {
                "adaptive"
            } else {
                "const"
            },
            if reduced_lr { "low" } else { "full" }
        );
        if !adaptive_threshold {
            spec.threshold_mode = ThresholdMode::Constant;
        }
        if !reduced_lr {
            spec.lr_divisor = 1.0;
        }
        spec
    }

    /// Returns the spec with a different CL learning-rate divisor.
    ///
    /// Alg. 1 fixes `η_cl = η_pre/100` for the authors' SHD-scale training
    /// budget (~10⁴ optimizer steps). Reproductions running far fewer
    /// steps scale the divisor proportionally to keep the *mechanism*
    /// (careful updates, smoother convergence) at the same effective
    /// strength; see EXPERIMENTS.md.
    #[must_use]
    pub fn with_lr_divisor(mut self, divisor: f32) -> Self {
        self.lr_divisor = divisor;
        self
    }

    /// Whether this method uses memory replay.
    #[must_use]
    pub fn uses_replay(&self) -> bool {
        self.replay.is_some()
    }

    /// The timestep count at which the learning stages operate, given the
    /// native step count (`T*` for reduced storage, `T` otherwise).
    #[must_use]
    pub fn operating_steps(&self, native_steps: usize) -> usize {
        match &self.replay {
            Some(ReplaySpec {
                storage: StoragePolicy::Reduced(t_star),
                decompress: false,
                ..
            }) => (*t_star).min(native_steps),
            _ => native_steps,
        }
    }

    /// Validates the method parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NclError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), NclError> {
        if self.lr_divisor <= 0.0 || !self.lr_divisor.is_finite() {
            return Err(NclError::InvalidConfig {
                what: "lr_divisor",
                detail: format!("must be positive and finite, got {}", self.lr_divisor),
            });
        }
        if let Some(replay) = &self.replay {
            if replay.per_class == 0 {
                return Err(NclError::InvalidConfig {
                    what: "replay.per_class",
                    detail: "replay methods need at least 1 stored sample per class".into(),
                });
            }
            if let StoragePolicy::Reduced(0) = replay.storage {
                return Err(NclError::InvalidConfig {
                    what: "replay.storage",
                    detail: "reduced timestep count must be at least 1".into(),
                });
            }
            if replay.decompress && matches!(replay.storage, StoragePolicy::Reduced(_)) {
                return Err(NclError::InvalidConfig {
                    what: "replay.decompress",
                    detail: "reduced storage has no codec factor to decompress with".into(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(MethodSpec::baseline().validate().is_ok());
        assert!(MethodSpec::spiking_lr(10).validate().is_ok());
        assert!(MethodSpec::replay4ncl(10, 40).validate().is_ok());
        assert!(MethodSpec::spiking_lr_reduced(10, 20).validate().is_ok());
        for (thr, lr) in [(true, true), (true, false), (false, true), (false, false)] {
            assert!(MethodSpec::replay4ncl_ablation(10, 40, thr, lr)
                .validate()
                .is_ok());
        }
    }

    #[test]
    fn preset_knobs_match_paper_table() {
        let sota = MethodSpec::spiking_lr(10);
        assert!(sota.uses_replay());
        assert_eq!(sota.lr_divisor, 1.0);
        assert!(matches!(sota.threshold_mode, ThresholdMode::Constant));
        let r = sota.replay.unwrap();
        assert!(r.decompress);
        assert_eq!(r.storage.stored_steps(100), 50);

        let ours = MethodSpec::replay4ncl(10, 40);
        assert_eq!(ours.lr_divisor, 100.0);
        assert!(matches!(ours.threshold_mode, ThresholdMode::Adaptive(_)));
        let r = ours.replay.unwrap();
        assert!(!r.decompress);
        assert_eq!(r.storage.stored_steps(100), 40);

        assert!(!MethodSpec::baseline().uses_replay());
    }

    #[test]
    fn paper_memory_saving_from_storage_policies() {
        // 50 frames (SpikingLR) vs 40 frames (Replay4NCL) = 20 % saving.
        let sota = MethodSpec::spiking_lr(10)
            .replay
            .unwrap()
            .storage
            .stored_steps(100);
        let ours = MethodSpec::replay4ncl(10, 40)
            .replay
            .unwrap()
            .storage
            .stored_steps(100);
        assert!((1.0 - ours as f64 / sota as f64 - 0.20).abs() < 1e-12);
    }

    #[test]
    fn operating_steps() {
        assert_eq!(MethodSpec::baseline().operating_steps(100), 100);
        assert_eq!(MethodSpec::spiking_lr(5).operating_steps(100), 100);
        assert_eq!(MethodSpec::replay4ncl(5, 40).operating_steps(100), 40);
        assert_eq!(
            MethodSpec::replay4ncl(5, 400).operating_steps(100),
            100,
            "clamped"
        );
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut m = MethodSpec::replay4ncl(10, 40);
        m.lr_divisor = 0.0;
        assert!(m.validate().is_err());
        let mut m = MethodSpec::replay4ncl(0, 40);
        m.replay.as_mut().unwrap().per_class = 0;
        assert!(m.validate().is_err());
        let mut m = MethodSpec::replay4ncl(10, 40);
        m.replay.as_mut().unwrap().storage = StoragePolicy::Reduced(0);
        assert!(m.validate().is_err());
        let mut m = MethodSpec::replay4ncl(10, 40);
        m.replay.as_mut().unwrap().decompress = true;
        assert!(m.validate().is_err(), "reduced storage cannot decompress");
    }

    #[test]
    fn ablation_toggles() {
        let m = MethodSpec::replay4ncl_ablation(5, 40, false, true);
        assert!(matches!(m.threshold_mode, ThresholdMode::Constant));
        assert_eq!(m.lr_divisor, 100.0);
        let m = MethodSpec::replay4ncl_ablation(5, 40, true, false);
        assert!(matches!(m.threshold_mode, ThresholdMode::Adaptive(_)));
        assert_eq!(m.lr_divisor, 1.0);
    }
}
