//! Plain-text report rendering for scenario results and figure series.

use crate::metrics::ClMetrics;
use crate::scenario::ScenarioResult;

/// Renders a fixed-width text table. The first row of `rows` may be used
/// as a header by passing it in `headers`.
///
/// # Example
///
/// ```
/// let t = replay4ncl::report::render_table(
///     &["method", "old acc"],
///     &[vec!["SpikingLR".into(), "86.2".into()],
///       vec!["Replay4NCL".into(), "90.4".into()]],
/// );
/// assert!(t.contains("Replay4NCL"));
/// assert!(t.lines().count() >= 4);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep = |w: &Vec<usize>| -> String {
        let mut s = String::from("+");
        for width in w {
            s.push_str(&"-".repeat(width + 2));
            s.push('+');
        }
        s
    };
    let render_row = |cells: &[String]| -> String {
        let mut s = String::from("|");
        for (i, width) in widths.iter().enumerate() {
            let cell = cells.get(i).map_or("", String::as_str);
            s.push_str(&format!(" {cell:<width$} |"));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep(&widths));
    out.push('\n');
    out.push_str(&render_row(
        &headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep(&widths));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str(&sep(&widths));
    out
}

/// Formats a fraction as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// One-paragraph summary of a scenario result.
#[must_use]
pub fn summarize(result: &ScenarioResult) -> String {
    let m = ClMetrics::of(result);
    let cost = result.total_cost();
    format!(
        "{} @ insertion layer {} (T={}): old {} / new {} (forgetting {}), \
         latent memory {:.2} KiB, CL latency {}, energy {}",
        result.method,
        result.insertion_layer,
        result.operating_steps,
        pct(m.old_top1),
        pct(m.new_top1),
        pct(m.forgetting),
        result.memory.kib(),
        cost.latency,
        cost.energy,
    )
}

/// Side-by-side comparison row of a method against a baseline result
/// (speed-up, energy saving, memory saving) — the numbers the paper's
/// abstract reports.
#[must_use]
pub fn comparison_row(ours: &ScenarioResult, sota: &ScenarioResult) -> Vec<String> {
    let our_cost = ours.total_cost();
    let sota_cost = sota.total_cost();
    vec![
        ours.method.clone(),
        pct(ours.final_old_acc()),
        pct(ours.final_new_acc()),
        format!("{:.2}x", our_cost.speedup_vs(&sota_cost)),
        pct(our_cost.energy_saving_vs(&sota_cost)),
        pct(ours.memory.saving_vs(&sota.memory)),
    ]
}

/// Serializes the per-epoch records of a result as CSV (header +
/// one row per epoch) for external plotting tools.
///
/// Columns: `epoch, old_acc, new_acc, mean_loss, cum_latency_s,
/// cum_energy_j`.
#[must_use]
pub fn epochs_to_csv(result: &ScenarioResult) -> String {
    let mut out = String::from("epoch,old_acc,new_acc,mean_loss,cum_latency_s,cum_energy_j\n");
    for (i, e) in result.epochs.iter().enumerate() {
        let cost = result.cost_through_epoch(i);
        out.push_str(&format!(
            "{},{:.6},{:.6},{:.6},{:.9},{:.12}\n",
            e.epoch,
            e.old_acc,
            e.new_acc,
            e.mean_loss,
            cost.latency.seconds(),
            cost.energy.joules(),
        ));
    }
    out
}

/// Serializes a method-comparison table as CSV: one row per result with
/// final accuracies, cost and memory.
#[must_use]
pub fn comparison_to_csv(results: &[&ScenarioResult]) -> String {
    let mut out = String::from(
        "method,insertion,operating_steps,old_acc,new_acc,forgetting,latency_s,energy_j,memory_bits\n",
    );
    for r in results {
        let cost = r.total_cost();
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.9},{:.12},{}\n",
            r.method,
            r.insertion_layer,
            r.operating_steps,
            r.final_old_acc(),
            r.final_new_acc(),
            r.forgetting(),
            cost.latency.seconds(),
            cost.energy.joules(),
            r.memory.total_bits,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EpochRecord;
    use ncl_hw::memory::MemoryFootprint;
    use ncl_hw::{HardwareProfile, OpCounts};

    fn result(name: &str, ops_scale: u64, bits: u64) -> ScenarioResult {
        ScenarioResult {
            method: name.into(),
            insertion_layer: 3,
            operating_steps: 40,
            pretrain_acc: 0.95,
            epochs: vec![EpochRecord {
                epoch: 0,
                mean_loss: 0.4,
                old_acc: 0.9,
                new_acc: 0.8,
                ops: OpCounts {
                    synaptic_ops: 1000 * ops_scale,
                    ..OpCounts::default()
                },
            }],
            prep_ops: OpCounts::default(),
            memory: MemoryFootprint {
                samples: 19,
                payload_bits_per_sample: bits / 19,
                total_bits: bits,
            },
            profile: HardwareProfile::embedded(),
        }
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["a", "long header"],
            &[
                vec!["x".into(), "y".into()],
                vec!["wide cell".into(), "z".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.len() >= 5);
        let width = lines[0].len();
        assert!(
            lines.iter().all(|l| l.len() == width),
            "all rows same width"
        );
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9043), "90.43%");
        assert_eq!(pct(0.0), "0.00%");
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = summarize(&result("Replay4NCL", 1, 1000));
        assert!(s.contains("Replay4NCL"));
        assert!(s.contains("90.00%"));
        assert!(s.contains("insertion layer 3"));
    }

    #[test]
    fn epochs_csv_has_header_and_rows() {
        let r = result("Replay4NCL", 1, 1000);
        let csv = epochs_to_csv(&r);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + r.epochs.len());
        assert!(lines[0].starts_with("epoch,old_acc"));
        assert!(lines[1].starts_with("0,0.9"));
        // Every row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == fields));
    }

    #[test]
    fn comparison_csv_lists_all_methods() {
        let a = result("SpikingLR", 10, 1000);
        let b = result("Replay4NCL", 2, 800);
        let csv = comparison_to_csv(&[&a, &b]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("SpikingLR"));
        assert!(csv.contains("Replay4NCL"));
        assert!(csv.contains(",800\n") || csv.contains(",800"));
    }

    #[test]
    fn comparison_row_computes_ratios() {
        let ours = result("Replay4NCL", 2, 800);
        let sota = result("SpikingLR", 10, 1000);
        let row = comparison_row(&ours, &sota);
        assert_eq!(row[0], "Replay4NCL");
        assert_eq!(row[3], "5.00x"); // 10/2
        assert_eq!(row[4], "80.00%");
        assert_eq!(row[5], "20.00%");
    }
}
