//! Error type for the Replay4NCL methodology layer.

use std::error::Error;
use std::fmt;

use ncl_data::DataError;
use ncl_snn::SnnError;
use ncl_spike::SpikeError;

/// Error returned by scenario construction and execution.
#[derive(Debug)]
pub enum NclError {
    /// A method or scenario parameter was invalid.
    InvalidConfig {
        /// Which parameter failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Underlying SNN failure.
    Snn(SnnError),
    /// Underlying dataset failure.
    Data(DataError),
    /// Underlying spike-raster failure.
    Spike(SpikeError),
    /// Model-cache I/O failure (non-fatal for correctness; surfaced so the
    /// caller can fall back to retraining).
    Cache(std::io::Error),
}

impl fmt::Display for NclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NclError::InvalidConfig { what, detail } => write!(f, "invalid {what}: {detail}"),
            NclError::Snn(e) => write!(f, "snn failure: {e}"),
            NclError::Data(e) => write!(f, "dataset failure: {e}"),
            NclError::Spike(e) => write!(f, "spike failure: {e}"),
            NclError::Cache(e) => write!(f, "model cache i/o failure: {e}"),
        }
    }
}

impl Error for NclError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NclError::Snn(e) => Some(e),
            NclError::Data(e) => Some(e),
            NclError::Spike(e) => Some(e),
            NclError::Cache(e) => Some(e),
            NclError::InvalidConfig { .. } => None,
        }
    }
}

impl From<SnnError> for NclError {
    fn from(e: SnnError) -> Self {
        NclError::Snn(e)
    }
}

impl From<DataError> for NclError {
    fn from(e: DataError) -> Self {
        NclError::Data(e)
    }
}

impl From<SpikeError> for NclError {
    fn from(e: SpikeError) -> Self {
        NclError::Spike(e)
    }
}

impl From<std::io::Error> for NclError {
    fn from(e: std::io::Error) -> Self {
        NclError::Cache(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: NclError = SnnError::InvalidStage {
            stage: 1,
            layers: 0,
        }
        .into();
        assert!(e.to_string().contains("snn"));
        assert!(e.source().is_some());
        let e: NclError = DataError::EmptySelection { op: "x" }.into();
        assert!(e.to_string().contains("dataset"));
        let e: NclError = SpikeError::InvalidParameter {
            what: "f",
            detail: "d".into(),
        }
        .into();
        assert!(e.to_string().contains("spike"));
        let e: NclError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("cache"));
        let e = NclError::InvalidConfig {
            what: "epochs",
            detail: "zero".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("epochs"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NclError>();
    }
}
