//! Continual-learning quality metrics.

use serde::{Deserialize, Serialize};

use crate::scenario::ScenarioResult;

/// Summary metrics of one method's scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClMetrics {
    /// Final Top-1 accuracy on old tasks.
    pub old_top1: f64,
    /// Final Top-1 accuracy on the new task.
    pub new_top1: f64,
    /// Accuracy drop on old tasks vs pre-training.
    pub forgetting: f64,
    /// Mean of old and new accuracy (the "average accuracy" CL metric).
    pub average: f64,
    /// Total-variation roughness of the new-task learning curve (the
    /// Fig. 13 "smoothness" comparison, lower = smoother).
    pub new_curve_roughness: f32,
}

impl ClMetrics {
    /// Extracts metrics from a scenario result.
    #[must_use]
    pub fn of(result: &ScenarioResult) -> Self {
        let old = result.final_old_acc();
        let new = result.final_new_acc();
        ClMetrics {
            old_top1: old,
            new_top1: new,
            forgetting: result.forgetting(),
            average: (old + new) / 2.0,
            new_curve_roughness: ncl_tensor::stats::roughness(&result.new_acc_curve()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EpochRecord;
    use ncl_hw::memory::MemoryFootprint;
    use ncl_hw::{HardwareProfile, OpCounts};

    fn fake_result(old: f64, new: f64, pre: f64) -> ScenarioResult {
        ScenarioResult {
            method: "Fake".into(),
            insertion_layer: 3,
            operating_steps: 40,
            pretrain_acc: pre,
            epochs: vec![
                EpochRecord {
                    epoch: 0,
                    mean_loss: 1.0,
                    old_acc: 0.5,
                    new_acc: 0.2,
                    ops: OpCounts::default(),
                },
                EpochRecord {
                    epoch: 1,
                    mean_loss: 0.5,
                    old_acc: old,
                    new_acc: new,
                    ops: OpCounts::default(),
                },
            ],
            prep_ops: OpCounts::default(),
            memory: MemoryFootprint {
                samples: 0,
                payload_bits_per_sample: 0,
                total_bits: 0,
            },
            profile: HardwareProfile::embedded(),
        }
    }

    #[test]
    fn metrics_extraction() {
        let m = ClMetrics::of(&fake_result(0.9, 0.7, 0.95));
        assert!((m.old_top1 - 0.9).abs() < 1e-12);
        assert!((m.new_top1 - 0.7).abs() < 1e-12);
        assert!((m.forgetting - 0.05).abs() < 1e-12);
        assert!((m.average - 0.8).abs() < 1e-12);
        assert!(m.new_curve_roughness > 0.0);
    }

    #[test]
    fn no_negative_forgetting() {
        // Backward transfer (old acc improves) clamps forgetting at 0.
        let m = ClMetrics::of(&fake_result(0.97, 0.7, 0.95));
        assert_eq!(m.forgetting, 0.0);
    }
}
