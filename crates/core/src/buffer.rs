//! The latent-replay buffer: what the embedded device's latent memory
//! holds.

use ncl_spike::codec::{CompressedRaster, CompressionFactor};
use ncl_spike::memory::{sample_footprint, Alignment};
use ncl_spike::SpikeRaster;
use serde::{Deserialize, Serialize};

use ncl_hw::memory::MemoryFootprint;

use crate::error::NclError;

/// One stored latent-replay sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatentEntry {
    frames: SpikeRaster,
    original_steps: usize,
    codec_factor: Option<CompressionFactor>,
    label: u16,
}

impl LatentEntry {
    /// A codec-compressed entry (SpikingLR storage): frames are every
    /// `factor`-th frame of a native-length activation.
    #[must_use]
    pub fn compressed(compressed: CompressedRaster, label: u16) -> Self {
        LatentEntry {
            original_steps: compressed.original_steps(),
            codec_factor: Some(compressed.factor()),
            frames: compressed.into_frames(),
            label,
        }
    }

    /// A reduced-timestep entry (Replay4NCL storage): `frames` already live
    /// at the reduced step count and are replayed verbatim.
    #[must_use]
    pub fn reduced(frames: SpikeRaster, original_steps: usize, label: u16) -> Self {
        LatentEntry {
            frames,
            original_steps,
            codec_factor: None,
            label,
        }
    }

    /// Reassembles an entry from its persisted parts — the entry point for
    /// checkpoint restores, where the fields were stored separately.
    ///
    /// # Errors
    ///
    /// Returns [`NclError::Spike`] if a codec entry's frame count does not
    /// match `ceil(original_steps / factor)` (the same consistency
    /// [`LatentEntry::compressed`] guarantees by construction), or
    /// [`NclError::InvalidConfig`] if a reduced entry stores more frames
    /// than its native step count.
    pub fn from_parts(
        frames: SpikeRaster,
        original_steps: usize,
        codec_factor: Option<CompressionFactor>,
        label: u16,
    ) -> Result<Self, NclError> {
        if let Some(factor) = codec_factor {
            // Route through the codec's own validation so a corrupted
            // checkpoint can never yield an entry `replay_raster` fails on.
            let compressed = CompressedRaster::from_parts(frames, original_steps, factor)?;
            return Ok(LatentEntry::compressed(compressed, label));
        }
        if frames.steps() > original_steps {
            return Err(NclError::InvalidConfig {
                what: "latent entry",
                detail: format!(
                    "reduced entry stores {} frames but claims only {original_steps} native steps",
                    frames.steps()
                ),
            });
        }
        Ok(LatentEntry::reduced(frames, original_steps, label))
    }

    /// Class label of the stored sample.
    #[must_use]
    pub fn label(&self) -> u16 {
        self.label
    }

    /// Borrow of the stored frames (what occupies latent memory).
    #[must_use]
    pub fn frames(&self) -> &SpikeRaster {
        &self.frames
    }

    /// The codec factor of a compressed entry (`None` for reduced
    /// storage).
    #[must_use]
    pub fn codec_factor(&self) -> Option<CompressionFactor> {
        self.codec_factor
    }

    /// Stored frame count (what occupies latent memory).
    #[must_use]
    pub fn stored_steps(&self) -> usize {
        self.frames.steps()
    }

    /// Native step count of the activation this entry was captured from.
    #[must_use]
    pub fn original_steps(&self) -> usize {
        self.original_steps
    }

    /// Payload bits in latent memory.
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        self.frames.payload_bits()
    }

    /// Materializes the raster to replay.
    ///
    /// With `decompress = true` a codec entry is re-expanded to its native
    /// length (SpikingLR); otherwise the stored frames are fed directly
    /// (Replay4NCL). Reduced entries ignore `decompress` — they have no
    /// codec factor to re-expand with.
    ///
    /// # Errors
    ///
    /// Returns [`NclError::Spike`] if the stored parts are inconsistent
    /// (cannot happen through the public constructors).
    pub fn replay_raster(&self, decompress: bool) -> Result<SpikeRaster, NclError> {
        match (decompress, self.codec_factor) {
            (true, Some(factor)) => {
                let c =
                    CompressedRaster::from_parts(self.frames.clone(), self.original_steps, factor)?;
                Ok(c.decompress())
            }
            _ => Ok(self.frames.clone()),
        }
    }
}

/// Outcome of a [`LatentReplayBuffer::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushOutcome {
    /// The entry was stored; `evicted` older entries were dropped to make
    /// room under the capacity bound.
    Stored {
        /// Number of entries evicted by this push.
        evicted: usize,
    },
    /// The entry alone exceeds `capacity_bits` and was not stored — the
    /// buffer is unchanged. Accepting it could never satisfy the budget
    /// invariant, no matter how many existing entries were evicted.
    Rejected,
}

impl PushOutcome {
    /// Whether the entry was stored.
    #[must_use]
    pub fn was_stored(&self) -> bool {
        matches!(self, PushOutcome::Stored { .. })
    }

    /// Number of entries evicted (0 for a rejected push).
    #[must_use]
    pub fn evicted(&self) -> usize {
        match self {
            PushOutcome::Stored { evicted } => *evicted,
            PushOutcome::Rejected => 0,
        }
    }
}

/// The latent memory of the device: stored activations of old-task samples
/// plus bit-exact size accounting.
///
/// **Budget invariant:** when a capacity bound is configured (see
/// [`LatentReplayBuffer::with_capacity_bits`]), after *every* push
/// `footprint().total_bits <= capacity_bits` holds — oversized entries
/// are rejected outright and normal pushes evict class-balanced until the
/// store fits. No sequence of pushes can leave the store over budget.
///
/// # Example
///
/// ```
/// use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};
/// use ncl_spike::memory::Alignment;
/// use ncl_spike::SpikeRaster;
///
/// let mut buffer = LatentReplayBuffer::new(Alignment::Byte);
/// buffer.push(LatentEntry::reduced(SpikeRaster::new(50, 40), 100, 3));
/// assert_eq!(buffer.len(), 1);
/// assert_eq!(buffer.footprint().payload_bits_per_sample, 50 * 40);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatentReplayBuffer {
    entries: Vec<LatentEntry>,
    alignment: Alignment,
    capacity_bits: Option<u64>,
    /// Running aligned footprint of `entries` — maintained on every
    /// push/eviction so the budget check is O(1) instead of a per-push
    /// O(n) re-sum. Always equals `footprint().total_bits`.
    total_aligned_bits: u64,
    /// Entry count per class, sorted by label — maintained on every
    /// push/eviction so class-balance decisions and [`class_counts`] are
    /// O(classes), never an O(n) rebuild. Always equals the rebuild from
    /// `entries` (checked by a debug assertion on every push).
    ///
    /// [`class_counts`]: LatentReplayBuffer::class_counts
    counts: Vec<(u16, usize)>,
}

impl LatentReplayBuffer {
    /// Creates an empty buffer with the given alignment policy and no
    /// capacity bound.
    #[must_use]
    pub fn new(alignment: Alignment) -> Self {
        LatentReplayBuffer {
            entries: Vec::new(),
            alignment,
            capacity_bits: None,
            total_aligned_bits: 0,
            counts: Vec::new(),
        }
    }

    /// Creates a buffer bounded to `capacity_bits` of (aligned) latent
    /// memory. When a push would exceed the bound, entries are evicted
    /// class-balanced: the oldest entry of the currently most-represented
    /// class goes first, so no class starves (the property replay
    /// correctness depends on).
    #[must_use]
    pub fn with_capacity_bits(alignment: Alignment, capacity_bits: u64) -> Self {
        LatentReplayBuffer {
            entries: Vec::new(),
            alignment,
            capacity_bits: Some(capacity_bits),
            total_aligned_bits: 0,
            counts: Vec::new(),
        }
    }

    /// Rebuilds a buffer from persisted entries — the checkpoint-restore
    /// entry point. Restoring is *strict*: unlike [`push`], it never
    /// evicts, because a restore that silently drops entries would load a
    /// different buffer than was saved.
    ///
    /// [`push`]: LatentReplayBuffer::push
    ///
    /// # Errors
    ///
    /// Returns [`NclError::InvalidConfig`] if the entries' aligned
    /// footprint exceeds `capacity_bits` — a snapshot that cannot have
    /// come from a buffer honouring the budget invariant.
    pub fn from_entries(
        alignment: Alignment,
        capacity_bits: Option<u64>,
        entries: Vec<LatentEntry>,
    ) -> Result<Self, NclError> {
        let mut total_aligned_bits = 0u64;
        let mut counts: Vec<(u16, usize)> = Vec::new();
        for entry in &entries {
            total_aligned_bits += sample_footprint(entry.payload_bits(), alignment).aligned_bits;
            bump_count(&mut counts, entry.label());
        }
        if let Some(budget) = capacity_bits {
            if total_aligned_bits > budget {
                return Err(NclError::InvalidConfig {
                    what: "latent buffer snapshot",
                    detail: format!(
                        "{total_aligned_bits} aligned bits exceed the {budget}-bit capacity"
                    ),
                });
            }
        }
        Ok(LatentReplayBuffer {
            entries,
            alignment,
            capacity_bits,
            total_aligned_bits,
            counts,
        })
    }

    /// The configured capacity bound, if any.
    #[must_use]
    pub fn capacity_bits(&self) -> Option<u64> {
        self.capacity_bits
    }

    /// The alignment policy entries are accounted under.
    #[must_use]
    pub fn alignment(&self) -> Alignment {
        self.alignment
    }

    /// Aligned bits one entry occupies under this buffer's policy.
    fn entry_bits(&self, entry: &LatentEntry) -> u64 {
        sample_footprint(entry.payload_bits(), self.alignment).aligned_bits
    }

    /// Stores an entry, evicting class-balanced if a capacity bound is
    /// configured.
    ///
    /// An entry whose *own* aligned footprint exceeds `capacity_bits` is
    /// rejected (returning [`PushOutcome::Rejected`]) rather than stored
    /// over budget — storing it could never satisfy the budget invariant.
    /// Every accepted push leaves `footprint().total_bits <=
    /// capacity_bits`.
    pub fn push(&mut self, entry: LatentEntry) -> PushOutcome {
        let entry_bits = self.entry_bits(&entry);
        let Some(budget) = self.capacity_bits else {
            self.total_aligned_bits += entry_bits;
            bump_count(&mut self.counts, entry.label());
            self.entries.push(entry);
            return PushOutcome::Stored { evicted: 0 };
        };
        if entry_bits > budget {
            return PushOutcome::Rejected;
        }
        self.total_aligned_bits += entry_bits;
        bump_count(&mut self.counts, entry.label());
        self.entries.push(entry);

        // Evict until the store fits. The running total and the per-class
        // counts both live on the struct and are maintained incrementally,
        // so the budget check is O(1) and picking the heaviest class is
        // O(classes) — no O(n) recount per push and no O(n²) recounts per
        // eviction burst.
        let mut evicted = 0;
        while self.total_aligned_bits > budget && self.entries.len() > 1 {
            // Drop the oldest entry of the most-represented class (ties
            // go to the smallest label, matching the original rebuild
            // order).
            let heaviest = self
                .counts
                .iter()
                .max_by_key(|(label, count)| (*count, u16::MAX - *label))
                .map(|(label, _)| *label)
                .expect("buffer non-empty");
            let victim = self
                .entries
                .iter()
                .position(|e| e.label() == heaviest)
                .expect("heaviest class has entries");
            let removed = self.entries.remove(victim);
            self.total_aligned_bits -= self.entry_bits(&removed);
            drop_count(&mut self.counts, heaviest);
            evicted += 1;
        }
        debug_assert!(
            self.total_aligned_bits <= budget,
            "budget invariant violated after push"
        );
        debug_assert_eq!(
            self.total_aligned_bits,
            self.footprint().total_bits,
            "running total out of sync with the exact footprint"
        );
        debug_assert_eq!(
            self.counts,
            self.rebuild_class_counts(),
            "incremental class counts out of sync with the entries"
        );
        PushOutcome::Stored { evicted }
    }

    /// Entry count per class label, sorted by label — a borrow of the
    /// incrementally maintained counts, O(classes) to consume and free of
    /// the per-call O(entries) rebuild the old `HashMap` return performed.
    #[must_use]
    pub fn class_counts(&self) -> &[(u16, usize)] {
        &self.counts
    }

    /// Entry count of one class label.
    #[must_use]
    pub fn class_count(&self, label: u16) -> usize {
        self.counts
            .binary_search_by_key(&label, |&(l, _)| l)
            .map_or(0, |i| self.counts[i].1)
    }

    /// The O(entries) recount the cached [`class_counts`] replaced — kept
    /// as the debug-assertion oracle for the incremental maintenance.
    ///
    /// [`class_counts`]: LatentReplayBuffer::class_counts
    fn rebuild_class_counts(&self) -> Vec<(u16, usize)> {
        let mut counts: Vec<(u16, usize)> = Vec::new();
        for e in &self.entries {
            bump_count(&mut counts, e.label());
        }
        counts
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over stored entries.
    pub fn iter(&self) -> std::slice::Iter<'_, LatentEntry> {
        self.entries.iter()
    }

    /// Total stored payload bits (sum over entries, before alignment).
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        self.entries.iter().map(LatentEntry::payload_bits).sum()
    }

    /// Memory footprint under the buffer's alignment policy.
    #[must_use]
    pub fn footprint(&self) -> MemoryFootprint {
        let total: u64 = self
            .entries
            .iter()
            .map(|e| sample_footprint(e.payload_bits(), self.alignment).aligned_bits)
            .sum();
        MemoryFootprint {
            samples: self.entries.len(),
            payload_bits_per_sample: self.entries.first().map_or(0, LatentEntry::payload_bits),
            total_bits: total,
        }
    }

    /// Materializes all replay rasters with their labels.
    ///
    /// # Errors
    ///
    /// Propagates [`LatentEntry::replay_raster`] failures.
    pub fn replay_samples(&self, decompress: bool) -> Result<Vec<(SpikeRaster, u16)>, NclError> {
        self.entries
            .iter()
            .map(|e| Ok((e.replay_raster(decompress)?, e.label())))
            .collect()
    }
}

/// Increments `label`'s entry in a label-sorted count vector.
fn bump_count(counts: &mut Vec<(u16, usize)>, label: u16) {
    match counts.binary_search_by_key(&label, |&(l, _)| l) {
        Ok(i) => counts[i].1 += 1,
        Err(i) => counts.insert(i, (label, 1)),
    }
}

/// Decrements `label`'s entry in a label-sorted count vector, removing it
/// at zero.
fn drop_count(counts: &mut Vec<(u16, usize)>, label: u16) {
    if let Ok(i) = counts.binary_search_by_key(&label, |&(l, _)| l) {
        if counts[i].1 > 1 {
            counts[i].1 -= 1;
        } else {
            counts.remove(i);
        }
    }
}

impl<'a> IntoIterator for &'a LatentReplayBuffer {
    type Item = &'a LatentEntry;
    type IntoIter = std::slice::Iter<'a, LatentEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_spike::codec;

    fn activation(neurons: usize, steps: usize) -> SpikeRaster {
        SpikeRaster::from_fn(neurons, steps, |n, t| (n * 7 + t * 3) % 5 == 0)
    }

    #[test]
    fn compressed_entry_round_trip() {
        let act = activation(50, 100);
        let c = codec::compress(&act, CompressionFactor::new(2).unwrap());
        let entry = LatentEntry::compressed(c.clone(), 4);
        assert_eq!(entry.label(), 4);
        assert_eq!(entry.stored_steps(), 50);
        assert_eq!(entry.original_steps(), 100);
        assert_eq!(entry.payload_bits(), 50 * 50);
        // Decompressed replay equals codec decompression.
        let replay = entry.replay_raster(true).unwrap();
        assert_eq!(replay, c.decompress());
        assert_eq!(replay.steps(), 100);
        // Direct replay feeds the stored frames.
        let direct = entry.replay_raster(false).unwrap();
        assert_eq!(direct.steps(), 50);
    }

    #[test]
    fn reduced_entry_ignores_decompress_flag() {
        let frames = activation(50, 40);
        let entry = LatentEntry::reduced(frames.clone(), 100, 2);
        assert_eq!(entry.replay_raster(true).unwrap(), frames);
        assert_eq!(entry.replay_raster(false).unwrap(), frames);
        assert_eq!(entry.payload_bits(), 50 * 40);
    }

    #[test]
    fn buffer_accounting_matches_paper_saving() {
        // SpikingLR store: 19 entries of 50x50; Replay4NCL: 19 of 50x40.
        let mut sota = LatentReplayBuffer::new(Alignment::Bit);
        let mut ours = LatentReplayBuffer::new(Alignment::Bit);
        for label in 0..19u16 {
            let act = activation(50, 100);
            sota.push(LatentEntry::compressed(
                codec::compress(&act, CompressionFactor::new(2).unwrap()),
                label,
            ));
            ours.push(LatentEntry::reduced(
                ncl_spike::resample::resample(
                    &act,
                    40,
                    ncl_spike::resample::ResampleStrategy::Decimate,
                )
                .unwrap(),
                100,
                label,
            ));
        }
        assert_eq!(sota.len(), 19);
        let saving = 1.0 - ours.payload_bits() as f64 / sota.payload_bits() as f64;
        assert!(
            (saving - 0.20).abs() < 1e-12,
            "paper's 20% latent memory saving"
        );
        // Aligned footprints keep the saving close to 20 %.
        let fp_saving = ours.footprint().saving_vs(&sota.footprint());
        assert!((0.18..=0.22).contains(&fp_saving));
    }

    #[test]
    fn replay_samples_materializes_all() {
        let mut buffer = LatentReplayBuffer::new(Alignment::Byte);
        for label in 0..3u16 {
            buffer.push(LatentEntry::reduced(activation(10, 20), 40, label));
        }
        let samples = buffer.replay_samples(false).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2].1, 2);
        assert!(samples.iter().all(|(r, _)| r.steps() == 20));
        assert_eq!(buffer.iter().count(), 3);
        assert_eq!((&buffer).into_iter().count(), 3);
    }

    #[test]
    fn empty_buffer() {
        let buffer = LatentReplayBuffer::new(Alignment::Byte);
        assert!(buffer.is_empty());
        assert_eq!(buffer.payload_bits(), 0);
        assert_eq!(buffer.footprint().total_bits, 0);
        assert!(buffer.replay_samples(true).unwrap().is_empty());
        assert_eq!(buffer.capacity_bits(), None);
    }

    #[test]
    fn unbounded_buffer_never_evicts() {
        let mut buffer = LatentReplayBuffer::new(Alignment::Byte);
        for i in 0..20 {
            let outcome = buffer.push(LatentEntry::reduced(activation(10, 20), 40, i % 3));
            assert_eq!(outcome, PushOutcome::Stored { evicted: 0 });
        }
        assert_eq!(buffer.len(), 20);
    }

    #[test]
    fn bounded_buffer_stays_under_capacity() {
        // Each entry: 10x20 = 200 payload bits + 32 metadata, byte-aligned
        // = 232 bits. Budget for ~4 entries.
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 950);
        let mut total_evicted = 0;
        for i in 0..10u16 {
            let outcome = buffer.push(LatentEntry::reduced(activation(10, 20), 40, i % 2));
            assert!(outcome.was_stored(), "entries fit individually");
            total_evicted += outcome.evicted();
        }
        assert!(buffer.footprint().total_bits <= 950);
        assert_eq!(buffer.len() + total_evicted, 10);
        assert!(buffer.len() >= 4);
        assert_eq!(buffer.capacity_bits(), Some(950));
    }

    #[test]
    fn eviction_is_class_balanced() {
        // Class 0 gets many entries, class 1 gets one; under pressure the
        // lone class-1 entry must survive.
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 950);
        buffer.push(LatentEntry::reduced(activation(10, 20), 40, 1));
        for _ in 0..12 {
            buffer.push(LatentEntry::reduced(activation(10, 20), 40, 0));
        }
        assert_eq!(buffer.class_count(1), 1, "minority class survives eviction");
        assert!(buffer.class_count(0) >= 1);
    }

    #[test]
    fn class_counts_are_cached_and_sorted() {
        let mut buffer = LatentReplayBuffer::new(Alignment::Byte);
        for label in [3u16, 0, 3, 7, 0, 3] {
            buffer.push(LatentEntry::reduced(activation(10, 20), 40, label));
        }
        assert_eq!(buffer.class_counts(), &[(0, 2), (3, 3), (7, 1)]);
        assert_eq!(buffer.class_count(3), 3);
        assert_eq!(buffer.class_count(5), 0);
    }

    #[test]
    fn from_entries_round_trips_and_rejects_over_budget() {
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 950);
        for i in 0..4u16 {
            buffer.push(LatentEntry::reduced(activation(10, 20), 40, i % 2));
        }
        let entries: Vec<LatentEntry> = buffer.iter().cloned().collect();
        let restored =
            LatentReplayBuffer::from_entries(Alignment::Byte, Some(950), entries.clone()).unwrap();
        assert_eq!(restored, buffer);
        assert_eq!(restored.class_counts(), buffer.class_counts());
        assert_eq!(restored.alignment(), Alignment::Byte);
        // A capacity the snapshot does not fit is a hard error, never a
        // silent eviction.
        assert!(LatentReplayBuffer::from_entries(Alignment::Byte, Some(10), entries).is_err());
    }

    #[test]
    fn entry_from_parts_validates_consistency() {
        // Codec entries round-trip through their parts.
        let act = activation(10, 20);
        let c = codec::compress(&act, CompressionFactor::new(2).unwrap());
        let entry = LatentEntry::compressed(c.clone(), 5);
        let rebuilt = LatentEntry::from_parts(
            entry.frames().clone(),
            entry.original_steps(),
            entry.codec_factor(),
            entry.label(),
        )
        .unwrap();
        assert_eq!(rebuilt, entry);
        // Reduced entries too.
        let entry = LatentEntry::reduced(activation(10, 8), 20, 2);
        let rebuilt =
            LatentEntry::from_parts(entry.frames().clone(), 20, None, entry.label()).unwrap();
        assert_eq!(rebuilt, entry);
        // Inconsistent parts are rejected.
        let factor = CompressionFactor::new(2).unwrap();
        assert!(LatentEntry::from_parts(activation(10, 3), 20, Some(factor), 0).is_err());
        assert!(LatentEntry::from_parts(activation(10, 30), 20, None, 0).is_err());
    }

    #[test]
    fn oversized_entry_is_rejected_not_stored_over_budget() {
        // Each 10x20 entry is 232 aligned bits; a 1-bit budget can never
        // hold it. The old behaviour silently kept it and left the store
        // over budget — now the push is rejected and the buffer unchanged.
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 1);
        let outcome = buffer.push(LatentEntry::reduced(activation(10, 20), 40, 0));
        assert_eq!(outcome, PushOutcome::Rejected);
        assert!(buffer.is_empty());
        assert_eq!(buffer.footprint().total_bits, 0);
        assert_eq!(outcome.evicted(), 0);
    }

    #[test]
    fn budget_invariant_holds_after_every_push() {
        // Mixed sizes, some oversized: after each push the aligned
        // footprint must respect the bound — the regression the old
        // `len() > 1` guard allowed to break with a single big entry.
        let budget = 950u64;
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, budget);
        for (i, (neurons, steps)) in [(10, 20), (40, 40), (10, 20), (50, 30), (10, 20)]
            .iter()
            .enumerate()
        {
            let outcome = buffer.push(LatentEntry::reduced(
                activation(*neurons, *steps),
                80,
                i as u16,
            ));
            assert!(
                buffer.footprint().total_bits <= budget,
                "over budget after push {i} ({outcome:?})"
            );
        }
        // The two large entries (40x40 = 1632 bits, 50x30 = 1536 bits)
        // must have been rejected; the small ones stored.
        assert!(buffer.iter().all(|e| e.payload_bits() == 200));
    }
}
