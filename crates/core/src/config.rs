//! Scenario configuration: dataset, network, protocol and cost-model
//! settings shared by every method under comparison.

use ncl_data::ShdLikeConfig;
use ncl_hw::HardwareProfile;
use ncl_snn::NetworkConfig;
use ncl_spike::memory::Alignment;
use serde::{Deserialize, Serialize};

use crate::error::NclError;

/// Configuration of one class-incremental experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Synthetic SHD-like dataset parameters.
    pub data: ShdLikeConfig,
    /// Network architecture.
    pub network: NetworkConfig,
    /// Latent-replay insertion layer (stage whose output is captured);
    /// `0..=network.layers()`.
    pub insertion_layer: usize,
    /// Pre-training epochs (`E_pre`).
    pub pretrain_epochs: usize,
    /// Continual-learning epochs (`E_cl`).
    pub cl_epochs: usize,
    /// Pre-training learning rate (`η_pre`, Alg. 1: 1e-3).
    pub pretrain_lr: f32,
    /// Mini-batch size for both phases.
    pub batch_size: usize,
    /// Gradient-worker threads.
    pub parallelism: usize,
    /// Shuffling/derived-stream seed (independent of data and weight
    /// seeds).
    pub seed: u64,
    /// Latent-store alignment policy.
    pub alignment: Alignment,
    /// Hardware profile for latency/energy reporting.
    pub profile: HardwareProfile,
}

impl ScenarioConfig {
    /// Paper-scale configuration: 700-channel SHD-like data at T = 100,
    /// the Fig. 6 network, 19+1 classes, insertion layer 3.
    #[must_use]
    pub fn paper() -> Self {
        ScenarioConfig {
            data: ShdLikeConfig::paper(),
            network: NetworkConfig::paper(),
            insertion_layer: 3,
            pretrain_epochs: 30,
            cl_epochs: 50,
            pretrain_lr: 1e-3,
            batch_size: 16,
            parallelism: 2,
            seed: 0xD15C0,
            alignment: Alignment::Byte,
            profile: HardwareProfile::embedded(),
        }
    }

    /// Reduced-scale configuration for fast smoke runs and integration
    /// tests: a small network on few samples, still exercising every code
    /// path (recurrence, replay, compression, adaptive thresholds).
    #[must_use]
    pub fn smoke() -> Self {
        let mut data = ShdLikeConfig::smoke_test();
        data.classes = 4;
        data.channels = 48;
        data.steps = 40;
        data.train_per_class = 10;
        data.test_per_class = 5;
        let mut network = NetworkConfig::tiny(48, 4);
        network.hidden_sizes = vec![24, 16];
        ScenarioConfig {
            data,
            network,
            insertion_layer: 1,
            pretrain_epochs: 10,
            cl_epochs: 6,
            pretrain_lr: 2e-3,
            batch_size: 4,
            parallelism: 2,
            seed: 7,
            alignment: Alignment::Byte,
            profile: HardwareProfile::embedded(),
        }
    }

    /// Number of pre-training classes (all but the held-out last class).
    #[must_use]
    pub fn old_classes(&self) -> u16 {
        self.data.classes.saturating_sub(1)
    }

    /// Validates the full configuration, including cross-field consistency
    /// (dataset shape vs network input, insertion layer vs depth).
    ///
    /// # Errors
    ///
    /// Returns [`NclError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), NclError> {
        self.data.validate()?;
        self.network.validate()?;
        if self.data.channels != self.network.input_size {
            return Err(NclError::InvalidConfig {
                what: "network.input_size",
                detail: format!(
                    "dataset has {} channels but the network expects {}",
                    self.data.channels, self.network.input_size
                ),
            });
        }
        if self.data.classes < 2 {
            return Err(NclError::InvalidConfig {
                what: "data.classes",
                detail: "class-incremental learning needs at least 2 classes".into(),
            });
        }
        if usize::from(self.data.classes) != self.network.output_size {
            return Err(NclError::InvalidConfig {
                what: "network.output_size",
                detail: format!(
                    "dataset has {} classes but the network has {} outputs",
                    self.data.classes, self.network.output_size
                ),
            });
        }
        if self.insertion_layer > self.network.layers() {
            return Err(NclError::InvalidConfig {
                what: "insertion_layer",
                detail: format!(
                    "must be in 0..={}, got {}",
                    self.network.layers(),
                    self.insertion_layer
                ),
            });
        }
        if self.pretrain_epochs == 0 || self.cl_epochs == 0 {
            return Err(NclError::InvalidConfig {
                what: "epochs",
                detail: "pretrain_epochs and cl_epochs must be at least 1".into(),
            });
        }
        if self.pretrain_lr <= 0.0 || !self.pretrain_lr.is_finite() {
            return Err(NclError::InvalidConfig {
                what: "pretrain_lr",
                detail: "must be positive and finite".into(),
            });
        }
        if self.batch_size == 0 || self.parallelism == 0 {
            return Err(NclError::InvalidConfig {
                what: "batch_size/parallelism",
                detail: "must be at least 1".into(),
            });
        }
        if !self.profile.is_valid() {
            return Err(NclError::InvalidConfig {
                what: "profile",
                detail: "hardware profile has non-positive parameters".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(ScenarioConfig::paper().validate().is_ok());
        assert!(ScenarioConfig::smoke().validate().is_ok());
    }

    #[test]
    fn paper_preset_matches_protocol() {
        let c = ScenarioConfig::paper();
        assert_eq!(c.data.classes, 20);
        assert_eq!(c.old_classes(), 19);
        assert_eq!(c.network.hidden_sizes, vec![200, 100, 50]);
        assert_eq!(c.insertion_layer, 3);
        assert_eq!(c.cl_epochs, 50);
        assert!((c.pretrain_lr - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn cross_field_validation() {
        let mut c = ScenarioConfig::smoke();
        c.network.input_size += 1;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::smoke();
        c.network.output_size += 1;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::smoke();
        c.insertion_layer = c.network.layers() + 1;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::smoke();
        c.pretrain_epochs = 0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::smoke();
        c.cl_epochs = 0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::smoke();
        c.pretrain_lr = -1.0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::smoke();
        c.batch_size = 0;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::smoke();
        c.profile.clock_hz = 0.0;
        assert!(c.validate().is_err());
    }
}
