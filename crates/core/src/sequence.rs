//! Multi-increment continual learning — an extension beyond the paper.
//!
//! The paper evaluates a single increment (19 classes pre-trained, one
//! learned continually). Real deployments keep going: new classes arrive
//! one after another, and the latent store grows with each. This module
//! generalizes the scenario driver to a *sequence* of class increments:
//!
//! 1. pre-train on the first `C − k` classes;
//! 2. for each remaining class: generate/extend the latent-replay buffer
//!    (old classes *and* previously-learned increments), train the
//!    learning stages on replay ∪ new, evaluate on everything seen.
//!
//! Because the frozen stages never change, latent entries captured in
//! earlier increments remain valid — the defining property that makes
//! latent replay suitable for lifelong operation.

use ncl_data::split::ClassIncrementalSplit;
use ncl_hw::memory::MemoryFootprint;
use ncl_hw::OpCounts;
use ncl_snn::optimizer::Optimizer;
use ncl_snn::trainer::{self, TrainOptions};
use ncl_spike::SpikeRaster;
use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;
use crate::error::NclError;
use crate::methods::MethodSpec;
use crate::phases;

/// Outcome of one class increment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncrementRecord {
    /// The class learned in this increment.
    pub class: u16,
    /// Top-1 accuracy on classes seen *before* this increment.
    pub old_acc: f64,
    /// Top-1 accuracy on the just-learned class.
    pub new_acc: f64,
    /// Top-1 accuracy over everything seen so far (old ∪ new).
    pub seen_acc: f64,
    /// Latent-memory bits after this increment.
    pub memory_bits: u64,
}

/// Outcome of a full increment sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceResult {
    /// Method display name.
    pub method: String,
    /// Test accuracy on the pre-trained classes before any increment.
    pub pretrain_acc: f64,
    /// One record per increment, in order.
    pub increments: Vec<IncrementRecord>,
    /// Total device work across all increments (prep + training).
    pub total_ops: OpCounts,
    /// Final latent-store footprint.
    pub final_memory: MemoryFootprint,
}

impl SequenceResult {
    /// Accuracy over all classes after the last increment.
    #[must_use]
    pub fn final_seen_acc(&self) -> f64 {
        self.increments.last().map_or(0.0, |r| r.seen_acc)
    }
}

/// Runs a sequence of `new_classes` single-class increments with `method`,
/// pre-training on the remaining classes first.
///
/// # Errors
///
/// Returns [`NclError::InvalidConfig`] if `new_classes` is 0 or leaves
/// fewer than one pre-training class, plus any simulation failure.
pub fn run_sequence(
    config: &ScenarioConfig,
    method: &MethodSpec,
    new_classes: usize,
) -> Result<SequenceResult, NclError> {
    config.validate()?;
    method.validate()?;
    let classes = config.data.classes;
    if new_classes == 0 || new_classes as u16 >= classes {
        return Err(NclError::InvalidConfig {
            what: "new_classes",
            detail: format!("must be in 1..{classes}, got {new_classes}"),
        });
    }
    let first_new = classes - new_classes as u16;

    // --- pre-train on classes 0..first_new ------------------------------
    let data = phases::scenario_data(config)?;
    let pre_split =
        ClassIncrementalSplit::new((0..first_new).collect(), (first_new..classes).collect())?;
    let pre_train_set = pre_split.pretrain_subset(&data.train);
    let pre_test_set = pre_split.pretrain_subset(&data.test);

    let mut network = ncl_snn::Network::new(config.network.clone())?;
    let mut optimizer = Optimizer::adam(config.pretrain_lr);
    let options = TrainOptions {
        from_stage: 0,
        batch_size: config.batch_size,
        parallelism: config.parallelism,
        threshold_mode: ncl_snn::adaptive::ThresholdMode::Constant,
    };
    let mut rng = ncl_tensor::Rng::seed_from_u64(config.seed ^ 0x5E0);
    let refs = phases::sample_refs(&pre_train_set);
    // One arena set reused across the pre-training epochs and every
    // increment's CL epochs (reshaped automatically at the stage switch).
    let mut scratch = trainer::TrainScratch::new();
    for _ in 0..config.pretrain_epochs {
        trainer::train_epoch_with(
            &mut network,
            &refs,
            &mut optimizer,
            &options,
            &mut rng,
            &mut scratch,
        )?;
    }
    let pretrain_acc = trainer::evaluate(
        &network,
        &phases::sample_refs(&pre_test_set),
        0,
        ncl_snn::adaptive::ThresholdMode::Constant,
    )?
    .top1();

    // --- increments ------------------------------------------------------
    let mut total_ops = OpCounts::default();
    let mut increments = Vec::with_capacity(new_classes);
    let mut seen: Vec<u16> = (0..first_new).collect();
    let mut final_memory = MemoryFootprint {
        samples: 0,
        payload_bits_per_sample: 0,
        total_bits: 0,
    };

    for class in first_new..classes {
        let split = ClassIncrementalSplit::new(seen.clone(), vec![class])?;

        // (Re)build the latent buffer over everything seen so far. The
        // frozen stages are unchanged, so this equals extending the store
        // incrementally; the generation cost of only the *new* entries is
        // charged (previous entries persist in latent memory).
        let (buffer, prep_ops) =
            phases::prepare_buffer(&network, config, method, &data.train, &split)?;
        if method.uses_replay() {
            // Charge generation for one class's worth of entries (the new
            // additions); earlier increments already paid for theirs.
            let fresh_fraction = 1.0 / seen.len().max(1) as f64;
            total_ops += scale_ops(&prep_ops, fresh_fraction);
        }
        final_memory = buffer.footprint();

        let decompress = method.replay.as_ref().is_some_and(|r| r.decompress);
        let replay_samples = buffer.replay_samples(decompress)?;

        let cl_train = split.continual_subset(&data.train);
        let (new_samples, anew_ops) =
            phases::new_task_activations(&network, config, method, &cl_train)?;

        let mut optimizer = Optimizer::adam(config.pretrain_lr / method.lr_divisor);
        let options = TrainOptions {
            from_stage: config.insertion_layer,
            batch_size: config.batch_size,
            parallelism: config.parallelism,
            threshold_mode: method.threshold_mode,
        };
        let mut rng = phases::cl_rng(config).fork(u64::from(class));
        let mut train_set: Vec<(&SpikeRaster, u16)> = Vec::new();
        train_set.extend(new_samples.iter().map(|(r, l)| (r, *l)));
        train_set.extend(replay_samples.iter().map(|(r, l)| (r, *l)));

        let trained_params = network.trainable_params(config.insertion_layer)? as u64;
        for _ in 0..config.cl_epochs {
            let report = trainer::train_epoch_with(
                &mut network,
                &train_set,
                &mut optimizer,
                &options,
                &mut rng,
                &mut scratch,
            )?;
            total_ops += anew_ops;
            if let Some(activity) = &report.activity {
                total_ops += OpCounts::training(activity, config.network.recurrent, trained_params);
            }
        }

        // Evaluate on old (seen-before), new, and everything.
        let old_test = split.pretrain_subset(&data.test);
        let new_test = split.continual_subset(&data.test);
        let old_eval = phases::eval_activations(&network, config, method, &old_test)?;
        let new_eval = phases::eval_activations(&network, config, method, &new_test)?;
        let eval = |samples: &[(SpikeRaster, u16)]| -> Result<f64, NclError> {
            let refs: Vec<(&SpikeRaster, u16)> = samples.iter().map(|(r, l)| (r, *l)).collect();
            Ok(trainer::evaluate(
                &network,
                &refs,
                config.insertion_layer,
                method.threshold_mode,
            )?
            .top1())
        };
        let old_acc = eval(&old_eval)?;
        let new_acc = eval(&new_eval)?;
        let total = old_eval.len() + new_eval.len();
        let seen_acc = if total == 0 {
            0.0
        } else {
            (old_acc * old_eval.len() as f64 + new_acc * new_eval.len() as f64) / total as f64
        };

        increments.push(IncrementRecord {
            class,
            old_acc,
            new_acc,
            seen_acc,
            memory_bits: final_memory.total_bits,
        });
        seen.push(class);
    }

    Ok(SequenceResult {
        method: method.name.clone(),
        pretrain_acc,
        increments,
        total_ops,
        final_memory,
    })
}

/// Scales all counters of an op-count by a fraction (for incremental
/// prep-cost attribution).
fn scale_ops(ops: &OpCounts, fraction: f64) -> OpCounts {
    let s = |v: u64| (v as f64 * fraction).round() as u64;
    OpCounts {
        synaptic_ops: s(ops.synaptic_ops),
        neuron_updates: s(ops.neuron_updates),
        weight_updates: s(ops.weight_updates),
        codec_frames: s(ops.codec_frames),
        mem_read_bits: s(ops.mem_read_bits),
        mem_write_bits: s(ops.mem_write_bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ScenarioConfig {
        let mut c = ScenarioConfig::smoke();
        c.seed = 31_337;
        c.pretrain_epochs = 8;
        c.cl_epochs = 10;
        c.insertion_layer = 1;
        c
    }

    #[test]
    fn rejects_degenerate_sequences() {
        let c = config();
        let m = MethodSpec::replay4ncl(2, 16).with_lr_divisor(2.0);
        assert!(run_sequence(&c, &m, 0).is_err());
        assert!(run_sequence(&c, &m, c.data.classes as usize).is_err());
    }

    #[test]
    fn two_increments_learn_both_classes() {
        let c = config();
        let m = MethodSpec::replay4ncl(4, 16).with_lr_divisor(2.0);
        let r = run_sequence(&c, &m, 2).unwrap();
        assert_eq!(r.increments.len(), 2);
        assert_eq!(r.increments[0].class, 2);
        assert_eq!(r.increments[1].class, 3);
        assert!(r.pretrain_acc > 0.5, "2-class pretrain should work");
        // The store grows with the second increment.
        assert!(r.increments[1].memory_bits > r.increments[0].memory_bits);
        assert_eq!(r.final_memory.total_bits, r.increments[1].memory_bits);
        assert!(!r.total_ops.is_zero());
        assert!((0.0..=1.0).contains(&r.final_seen_acc()));
    }

    #[test]
    fn replay_sequence_retains_better_than_baseline_sequence() {
        let c = config();
        let replayed =
            run_sequence(&c, &MethodSpec::replay4ncl(4, 16).with_lr_divisor(2.0), 2).unwrap();
        let naive = run_sequence(&c, &MethodSpec::baseline(), 2).unwrap();
        assert!(
            replayed.increments[1].old_acc > naive.increments[1].old_acc,
            "replay must retain more after two increments: {} vs {}",
            replayed.increments[1].old_acc,
            naive.increments[1].old_acc
        );
        // Baseline stores nothing.
        assert_eq!(naive.final_memory.total_bits, 0);
    }

    #[test]
    fn sequence_is_deterministic() {
        let c = config();
        let m = MethodSpec::spiking_lr(3);
        let a = run_sequence(&c, &m, 2).unwrap();
        let b = run_sequence(&c, &m, 2).unwrap();
        assert_eq!(a, b);
    }
}
