//! The fleet members: what a learner and a follower each contribute to
//! the replication protocol.
//!
//! Both types implement [`ncl_serve::ReplicaSync`] and are mounted on a
//! serve instance via [`ncl_serve::Server::start_with_sync`]:
//!
//! * [`LearnerReplica`] wraps a [`DeltaPublisher`]. The learner process
//!   publishes a fresh checkpoint after every committed increment; the
//!   wire side answers `delta`/`checkpoint` fetches from the publisher
//!   and refuses applies (nothing overwrites the learner's state but
//!   its own training).
//! * [`FollowerReplica`] holds the follower's full daemon state (a
//!   [`Checkpoint`]) behind a mutex. `apply_delta` decodes, applies
//!   against the held base — bit-identity enforced by the delta's
//!   target CRC — and hot-swaps the registry at the learner's exact
//!   version. Any mismatch reports an error precise enough for the
//!   router to fall back to a full checkpoint.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ncl_obs::{Counter, Log2Histogram, Registry};
use ncl_online::checkpoint::Checkpoint;
use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::delta::CheckpointDelta;
use ncl_online::error::OnlineError;
use ncl_online::publish::DeltaPublisher;
use ncl_online::stream::SampleStream;
use ncl_serve::error::ServeError;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::sync::ReplicaSync;
use serde_json::Value;

/// Maps a replication-layer decode/apply failure onto the wire error.
fn repl(e: &OnlineError) -> ServeError {
    ServeError::Replication {
        detail: e.to_string(),
    }
}

/// Applies an encoded delta against `state`, hot-swapping `registry` —
/// the one decode/check/swap sequence both follower flavors share.
/// `state` only advances if the swap succeeded.
fn apply_delta_to(
    registry: &ModelRegistry,
    state: &mut Checkpoint,
    payload: &[u8],
) -> Result<u64, ServeError> {
    let delta = CheckpointDelta::from_bytes(payload).map_err(|e| repl(&e))?;
    if delta.version <= state.version {
        return Err(ServeError::StaleVersion {
            current: state.version,
            proposed: delta.version,
        });
    }
    let next = delta.apply(state).map_err(|e| repl(&e))?;
    // Swap first: if the registry refuses (shape/stale), the held
    // state must not advance either.
    let version = registry.swap_network_at(
        next.network.clone(),
        &format!("delta-v{}", next.version),
        next.version,
    )?;
    *state = next;
    Ok(version)
}

/// Applies an encoded full checkpoint against `state`, hot-swapping
/// `registry` (the fallback path when no delta bridges the gap).
fn apply_checkpoint_to(
    registry: &ModelRegistry,
    state: &mut Checkpoint,
    payload: &[u8],
) -> Result<u64, ServeError> {
    let next = Checkpoint::from_bytes(payload).map_err(|e| repl(&e))?;
    if next.config_digest != state.config_digest {
        return Err(ServeError::Replication {
            detail: "checkpoint from a differently-configured fleet".into(),
        });
    }
    if next.version <= state.version {
        return Err(ServeError::StaleVersion {
            current: state.version,
            proposed: next.version,
        });
    }
    let version = registry.swap_network_at(
        next.network.clone(),
        &format!("checkpoint-v{}", next.version),
        next.version,
    )?;
    *state = next;
    Ok(version)
}

/// The learner's side of replication: serves deltas and checkpoints
/// from its [`DeltaPublisher`], accepts nothing.
pub struct LearnerReplica {
    publisher: Arc<DeltaPublisher>,
}

impl LearnerReplica {
    /// Wraps the publisher the learner process feeds after increments.
    #[must_use]
    pub fn new(publisher: Arc<DeltaPublisher>) -> Self {
        LearnerReplica { publisher }
    }
}

impl ReplicaSync for LearnerReplica {
    fn role(&self) -> &'static str {
        "learner"
    }

    fn health_extra(&self) -> Vec<(&'static str, Value)> {
        vec![("published_version", Value::from(self.publisher.version()))]
    }

    fn fetch_delta(&self, base_version: u64) -> Result<(u64, Vec<u8>), ServeError> {
        self.publisher
            .delta_from(base_version)
            .ok_or_else(|| ServeError::Replication {
                detail: format!(
                    "no retained delta from v{base_version} (published v{})",
                    self.publisher.version()
                ),
            })
    }

    fn apply_delta(&self, _payload: &[u8]) -> Result<u64, ServeError> {
        Err(ServeError::Replication {
            detail: "the learner's state comes from training, not pushed deltas".into(),
        })
    }

    fn fetch_checkpoint(&self) -> Result<Vec<u8>, ServeError> {
        Ok(self.publisher.checkpoint_bytes())
    }

    fn apply_checkpoint(&self, _payload: &[u8]) -> Result<u64, ServeError> {
        Err(ServeError::Replication {
            detail: "the learner's state comes from training, not pushed checkpoints".into(),
        })
    }
}

/// A follower's replication state: the daemon checkpoint it currently
/// mirrors, the registry it hot-swaps, and sync counters for `health`.
pub struct FollowerReplica {
    registry: Arc<ModelRegistry>,
    state: Mutex<Checkpoint>,
    deltas_applied: Arc<Counter>,
    full_syncs: Arc<Counter>,
    apply_bytes: Arc<Log2Histogram>,
}

impl FollowerReplica {
    /// Builds a follower from its bootstrap checkpoint, creating the
    /// registry that serves it (version mirrored from the checkpoint).
    #[must_use]
    pub fn new(initial: Checkpoint) -> Self {
        let registry = Arc::new(ModelRegistry::with_initial_version(
            initial.network.clone(),
            "bootstrap",
            initial.version,
        ));
        FollowerReplica {
            registry,
            state: Mutex::new(initial),
            deltas_applied: Arc::new(Counter::new()),
            full_syncs: Arc::new(Counter::new()),
            apply_bytes: Arc::new(Log2Histogram::new()),
        }
    }

    /// Exposes this follower's replication counters in `registry` as
    /// `replica_*` series (shared handles, not copies).
    pub fn register_into(&self, registry: &Registry) {
        let _ = registry.adopt_counter(
            "replica_deltas_applied_total",
            &[],
            "Checkpoint deltas this follower applied.",
            Arc::clone(&self.deltas_applied),
        );
        let _ = registry.adopt_counter(
            "replica_full_syncs_total",
            &[],
            "Full-checkpoint resyncs this follower applied.",
            Arc::clone(&self.full_syncs),
        );
        let _ = registry.adopt_histogram(
            "replica_apply_bytes",
            &[],
            "Payload size of applied deltas and checkpoints in bytes.",
            Arc::clone(&self.apply_bytes),
        );
    }

    /// The registry this follower serves through.
    #[must_use]
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// The mirrored checkpoint's full encoding (bit-identity checks).
    #[must_use]
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        // Held state only advances after a successful swap, so a
        // poisoned guard still protects a coherent checkpoint — recover
        // it rather than panic on the replication path.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .to_bytes()
    }

    /// Deltas applied since startup.
    #[must_use]
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied.get()
    }

    /// Full-checkpoint resyncs since startup.
    #[must_use]
    pub fn full_syncs(&self) -> u64 {
        self.full_syncs.get()
    }
}

impl ReplicaSync for FollowerReplica {
    fn role(&self) -> &'static str {
        "follower"
    }

    fn health_extra(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("deltas_applied", Value::from(self.deltas_applied())),
            ("full_syncs", Value::from(self.full_syncs())),
        ]
    }

    fn fetch_delta(&self, _base_version: u64) -> Result<(u64, Vec<u8>), ServeError> {
        Err(ServeError::Replication {
            detail: "followers do not publish deltas".into(),
        })
    }

    fn apply_delta(&self, payload: &[u8]) -> Result<u64, ServeError> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let version = apply_delta_to(&self.registry, &mut state, payload)?;
        self.deltas_applied.inc();
        self.apply_bytes.record(payload.len() as u64);
        Ok(version)
    }

    fn fetch_checkpoint(&self) -> Result<Vec<u8>, ServeError> {
        Ok(self.checkpoint_bytes())
    }

    fn apply_checkpoint(&self, payload: &[u8]) -> Result<u64, ServeError> {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let version = apply_checkpoint_to(&self.registry, &mut state, payload)?;
        self.full_syncs.inc();
        self.apply_bytes.record(payload.len() as u64);
        Ok(version)
    }
}

/// What an [`ElasticReplica`] currently is. The variants own exactly
/// the state that differs between the roles; everything role-agnostic
/// (registry, stream, config, counters) lives on the replica itself and
/// survives role changes.
enum RoleState {
    /// Serving + applying: the mirrored fleet checkpoint (boxed to keep
    /// the variants' footprints comparable).
    Follower { state: Box<Checkpoint> },
    /// Training + publishing: the delta ring, plus the handle and stop
    /// flag of the internal ingest thread.
    Learner {
        publisher: Arc<DeltaPublisher>,
        stop: Arc<AtomicBool>,
        ingest: Option<std::thread::JoinHandle<()>>,
    },
}

/// A replica that can change role over the wire — the member type of an
/// elastic fleet.
///
/// It starts as a follower (mirroring a bootstrap [`Checkpoint`],
/// applying deltas). On `promote` it resumes an [`OnlineLearner`] from
/// its *currently applied* checkpoint — the crash-safe resume path,
/// reached over the wire — and spawns an internal ingest thread that
/// continues the deterministic sample stream from the checkpoint's
/// cursor, publishing a delta after every increment. Because the stream
/// and training are deterministic, the promoted replica publishes
/// byte-for-byte the checkpoints the dead learner would have published,
/// so survivors converge exactly as if nothing had failed.
///
/// On `demote` (a deposed learner rejoining a fleet that moved on) the
/// ingest thread is stopped and joined, and the replica falls back to
/// mirroring its last *published* checkpoint.
///
/// Every role change and fenced write goes through the replica's
/// monotonic fleet-epoch fence: `promote` must strictly advance it,
/// `demote` and stamped applies must not regress it.
pub struct ElasticReplica {
    config: OnlineConfig,
    stream: SampleStream,
    pace: Duration,
    registry: Arc<ModelRegistry>,
    obs: Arc<Registry>,
    epoch: AtomicU64,
    role: Mutex<RoleState>,
    deltas_applied: Arc<Counter>,
    full_syncs: Arc<Counter>,
    apply_bytes: Arc<Log2Histogram>,
    /// The error that stopped the ingest thread, if any (surfaced via
    /// `health` — the thread itself must never panic).
    ingest_error: Arc<Mutex<Option<String>>>,
}

impl ElasticReplica {
    /// Builds an elastic replica in follower role from its bootstrap
    /// checkpoint. `stream` and `pace` are dormant until a promotion:
    /// they define the event stream a promoted learner continues.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] for an invalid config or a bootstrap
    /// checkpoint from a differently-configured fleet (promotion would
    /// fail late otherwise; refuse it early).
    pub fn follower(
        config: OnlineConfig,
        initial: Checkpoint,
        stream: SampleStream,
        pace: Duration,
        obs: Arc<Registry>,
    ) -> Result<Self, ServeError> {
        config.validate().map_err(|e| repl(&e))?;
        if initial.config_digest != config.determinism_digest() {
            return Err(ServeError::Replication {
                detail: "bootstrap checkpoint from a differently-configured fleet".into(),
            });
        }
        let registry = Arc::new(ModelRegistry::with_initial_version(
            initial.network.clone(),
            "bootstrap",
            initial.version,
        ));
        Ok(ElasticReplica {
            config,
            stream,
            pace,
            registry,
            obs,
            epoch: AtomicU64::new(0),
            role: Mutex::new(RoleState::Follower {
                state: Box::new(initial),
            }),
            deltas_applied: Arc::new(Counter::new()),
            full_syncs: Arc::new(Counter::new()),
            apply_bytes: Arc::new(Log2Histogram::new()),
            ingest_error: Arc::new(Mutex::new(None)),
        })
    }

    /// [`ElasticReplica::follower`] from an encoded checkpoint — the
    /// cold-join path: a new replica fetches the fleet's checkpoint
    /// through the router and starts from these bytes.
    ///
    /// # Errors
    ///
    /// As [`ElasticReplica::follower`], plus decode failures.
    pub fn from_checkpoint_bytes(
        config: OnlineConfig,
        payload: &[u8],
        stream: SampleStream,
        pace: Duration,
        obs: Arc<Registry>,
    ) -> Result<Self, ServeError> {
        let initial = Checkpoint::from_bytes(payload).map_err(|e| repl(&e))?;
        ElasticReplica::follower(config, initial, stream, pace, obs)
    }

    /// The registry this replica serves through (in both roles).
    #[must_use]
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// Exposes this replica's replication counters (same `replica_*`
    /// families as a fixed-role follower; they keep counting across
    /// role changes).
    pub fn register_into(&self, registry: &Registry) {
        let _ = registry.adopt_counter(
            "replica_deltas_applied_total",
            &[],
            "Checkpoint deltas this follower applied.",
            Arc::clone(&self.deltas_applied),
        );
        let _ = registry.adopt_counter(
            "replica_full_syncs_total",
            &[],
            "Full-checkpoint resyncs this follower applied.",
            Arc::clone(&self.full_syncs),
        );
        let _ = registry.adopt_histogram(
            "replica_apply_bytes",
            &[],
            "Payload size of applied deltas and checkpoints in bytes.",
            Arc::clone(&self.apply_bytes),
        );
    }

    /// The fleet epoch this replica is fenced at.
    #[must_use]
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The error that stopped a promoted learner's ingest thread, if
    /// one occurred.
    #[must_use]
    pub fn ingest_error(&self) -> Option<String> {
        self.ingest_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// This replica's current full checkpoint encoding — the applied
    /// state as a follower, the published state as a learner
    /// (bit-identity checks in tests and benches).
    #[must_use]
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*role {
            RoleState::Follower { state } => state.to_bytes(),
            RoleState::Learner { publisher, .. } => publisher.checkpoint_bytes(),
        }
    }
}

impl Drop for ElasticReplica {
    fn drop(&mut self) {
        // A promoted learner owns a live ingest thread; stop and join
        // it so a dropped replica never leaves training running.
        let mut role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let RoleState::Learner { stop, ingest, .. } = &mut *role {
            stop.store(true, Ordering::Release);
            if let Some(handle) = ingest.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The promoted learner's ingest loop: continue the deterministic
/// stream from the resumed checkpoint's cursor, publish after every
/// increment, stop on demand. Runs on its own thread; must never
/// panic — failures park in `ingest_error` and end the loop.
fn run_ingest(
    mut learner: OnlineLearner,
    stream: &SampleStream,
    pace: Duration,
    publisher: &DeltaPublisher,
    stop: &AtomicBool,
    ingest_error: &Mutex<Option<String>>,
) {
    let fail = |message: String| {
        *ingest_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(message);
    };
    let cursor = learner.cursor();
    for event in stream.events_from(cursor) {
        if stop.load(Ordering::Acquire) {
            return;
        }
        match learner.ingest(event) {
            Ok(IngestOutcome::Increment(_)) => {
                if let Err(e) = publisher.publish(learner.checkpoint()) {
                    fail(format!("publishing an increment failed: {e}"));
                    return;
                }
            }
            Ok(_) => {}
            Err(e) => {
                fail(format!("ingest failed: {e}"));
                return;
            }
        }
        if !pace.is_zero() {
            std::thread::sleep(pace);
        }
    }
}

impl ReplicaSync for ElasticReplica {
    fn role(&self) -> &'static str {
        let role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*role {
            RoleState::Follower { .. } => "follower",
            RoleState::Learner { .. } => "learner",
        }
    }

    fn health_extra(&self) -> Vec<(&'static str, Value)> {
        let mut extra = vec![
            ("elastic", Value::from(true)),
            ("deltas_applied", Value::from(self.deltas_applied.get())),
            ("full_syncs", Value::from(self.full_syncs.get())),
        ];
        let role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let RoleState::Learner { publisher, .. } = &*role {
            extra.push(("published_version", Value::from(publisher.version())));
        }
        drop(role);
        if let Some(message) = self.ingest_error() {
            extra.push(("ingest_error", Value::from(message)));
        }
        extra
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn observe_epoch(&self, epoch: u64) -> Result<(), ServeError> {
        // fetch_max adopts a newer epoch and reports the old fence in
        // one atomic step.
        let fenced = self.epoch.fetch_max(epoch, Ordering::AcqRel);
        if epoch < fenced {
            return Err(ServeError::Replication {
                detail: format!(
                    "write fenced: stamped epoch {epoch} is behind fleet epoch {fenced}"
                ),
            });
        }
        Ok(())
    }

    fn promote(&self, epoch: u64) -> Result<u64, ServeError> {
        let fenced = self.epoch.load(Ordering::Acquire);
        if epoch <= fenced {
            return Err(ServeError::Replication {
                detail: format!("promotion epoch {epoch} does not advance the fence {fenced}"),
            });
        }
        let mut role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &mut *role {
            RoleState::Learner { publisher, .. } => {
                // Already the learner; just adopt the newer epoch.
                self.epoch.store(epoch, Ordering::Release);
                Ok(publisher.version())
            }
            RoleState::Follower { state } => {
                let learner = OnlineLearner::resume_into_registry_with_obs(
                    self.config.clone(),
                    (**state).clone(),
                    Arc::clone(&self.registry),
                    Arc::clone(&self.obs),
                )
                .map_err(|e| repl(&e))?;
                let version = learner.version();
                let publisher = Arc::new(DeltaPublisher::with_ring(
                    learner.checkpoint(),
                    self.config.delta_ring,
                ));
                let stop = Arc::new(AtomicBool::new(false));
                let thread_stream = self.stream.clone();
                let thread_publisher = Arc::clone(&publisher);
                let thread_stop = Arc::clone(&stop);
                let thread_error = Arc::clone(&self.ingest_error);
                let pace = self.pace;
                let ingest = std::thread::Builder::new()
                    .name("ncl-elastic-ingest".into())
                    .spawn(move || {
                        run_ingest(
                            learner,
                            &thread_stream,
                            pace,
                            &thread_publisher,
                            &thread_stop,
                            &thread_error,
                        );
                    })
                    .map_err(|e| ServeError::Replication {
                        detail: format!("could not spawn the ingest thread: {e}"),
                    })?;
                *role = RoleState::Learner {
                    publisher,
                    stop,
                    ingest: Some(ingest),
                };
                self.epoch.store(epoch, Ordering::Release);
                Ok(version)
            }
        }
    }

    fn demote(&self, epoch: u64) -> Result<u64, ServeError> {
        let fenced = self.epoch.load(Ordering::Acquire);
        if epoch < fenced {
            return Err(ServeError::Replication {
                detail: format!("demotion epoch {epoch} is behind the fence {fenced}"),
            });
        }
        let mut role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let version = match &mut *role {
            RoleState::Follower { state } => state.version,
            RoleState::Learner {
                publisher,
                stop,
                ingest,
            } => {
                stop.store(true, Ordering::Release);
                if let Some(handle) = ingest.take() {
                    let _ = handle.join();
                }
                // Fall back to mirroring the last *published* state:
                // that is what the fleet saw, and what deltas/full
                // syncs from the new learner will be built against.
                let state =
                    Checkpoint::from_bytes(&publisher.checkpoint_bytes()).map_err(|e| repl(&e))?;
                let version = state.version;
                *role = RoleState::Follower {
                    state: Box::new(state),
                };
                version
            }
        };
        self.epoch.store(epoch, Ordering::Release);
        Ok(version)
    }

    fn fetch_delta(&self, base_version: u64) -> Result<(u64, Vec<u8>), ServeError> {
        let role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*role {
            RoleState::Follower { .. } => Err(ServeError::Replication {
                detail: "followers do not publish deltas".into(),
            }),
            RoleState::Learner { publisher, .. } => {
                publisher
                    .delta_from(base_version)
                    .ok_or_else(|| ServeError::Replication {
                        detail: format!(
                            "no retained delta from v{base_version} (published v{})",
                            publisher.version()
                        ),
                    })
            }
        }
    }

    fn apply_delta(&self, payload: &[u8]) -> Result<u64, ServeError> {
        let mut role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &mut *role {
            RoleState::Learner { .. } => Err(ServeError::Replication {
                detail: "the learner's state comes from training, not pushed deltas".into(),
            }),
            RoleState::Follower { state } => {
                let version = apply_delta_to(&self.registry, state, payload)?;
                self.deltas_applied.inc();
                self.apply_bytes.record(payload.len() as u64);
                Ok(version)
            }
        }
    }

    fn fetch_checkpoint(&self) -> Result<Vec<u8>, ServeError> {
        Ok(self.checkpoint_bytes())
    }

    fn apply_checkpoint(&self, payload: &[u8]) -> Result<u64, ServeError> {
        let mut role = self
            .role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &mut *role {
            RoleState::Learner { .. } => Err(ServeError::Replication {
                detail: "the learner's state comes from training, not pushed checkpoints".into(),
            }),
            RoleState::Follower { state } => {
                let version = apply_checkpoint_to(&self.registry, state, payload)?;
                self.full_syncs.inc();
                self.apply_bytes.record(payload.len() as u64);
                Ok(version)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::{Network, NetworkConfig};
    use ncl_spike::memory::Alignment;
    use ncl_spike::SpikeRaster;
    use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};

    fn checkpoint(version: u64) -> Checkpoint {
        let mut network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        network
            .visit_trainable_mut(1, |slice| {
                for v in slice.iter_mut() {
                    *v += version as f32 * 0.5;
                }
            })
            .unwrap();
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 8_192);
        for i in 0..version.min(4) as u16 {
            let act = SpikeRaster::from_fn(4, 8, |n, t| (n + t + i as usize).is_multiple_of(3));
            buffer.push(LatentEntry::reduced(act, 16, i));
        }
        Checkpoint {
            version,
            cursor: version * 5,
            event_digest: version ^ 0x99,
            config_digest: 1234,
            known_classes: vec![0, 1],
            network,
            buffer,
            pending: Vec::new(),
        }
    }

    #[test]
    fn follower_applies_deltas_bit_identically_and_rejects_mismatches() {
        let base = checkpoint(1);
        let next = checkpoint(2);
        let after = checkpoint(3);
        let follower = FollowerReplica::new(base.clone());
        assert_eq!(follower.registry().version(), 1);

        let delta = CheckpointDelta::between(&base, &next).unwrap();
        let version = follower.apply_delta(&delta.to_bytes()).unwrap();
        assert_eq!(version, 2);
        assert_eq!(follower.registry().version(), 2);
        assert_eq!(follower.checkpoint_bytes(), next.to_bytes());
        assert_eq!(follower.registry().current().network, next.network);
        assert_eq!(follower.deltas_applied(), 1);

        // The same delta again: stale, state untouched.
        assert!(matches!(
            follower.apply_delta(&delta.to_bytes()),
            Err(ServeError::StaleVersion {
                current: 2,
                proposed: 2
            })
        ));

        // A delta skipping the held base: replication error (router
        // falls back to a full checkpoint), state untouched.
        let wrong_base = CheckpointDelta::between(&after, &checkpoint(4)).unwrap();
        assert!(matches!(
            follower.apply_delta(&wrong_base.to_bytes()),
            Err(ServeError::Replication { .. })
        ));
        // Garbage bytes too.
        assert!(follower.apply_delta(&[0xFF; 16]).is_err());
        assert_eq!(follower.checkpoint_bytes(), next.to_bytes());

        // The fallback: a full checkpoint jumps straight to v4.
        let v = follower
            .apply_checkpoint(&checkpoint(4).to_bytes())
            .unwrap();
        assert_eq!(v, 4);
        assert_eq!(follower.full_syncs(), 1);
        assert_eq!(follower.registry().version(), 4);
    }

    #[test]
    fn follower_rejects_foreign_and_stale_checkpoints() {
        let follower = FollowerReplica::new(checkpoint(3));
        let mut foreign = checkpoint(5);
        foreign.config_digest ^= 1;
        assert!(matches!(
            follower.apply_checkpoint(&foreign.to_bytes()),
            Err(ServeError::Replication { .. })
        ));
        assert!(matches!(
            follower.apply_checkpoint(&checkpoint(3).to_bytes()),
            Err(ServeError::StaleVersion { .. })
        ));
        assert_eq!(follower.registry().version(), 3);
    }

    #[test]
    fn learner_serves_its_publisher_and_refuses_applies() {
        let publisher = Arc::new(DeltaPublisher::new(checkpoint(1)));
        publisher.publish(checkpoint(2)).unwrap();
        let learner = LearnerReplica::new(Arc::clone(&publisher));
        assert_eq!(learner.role(), "learner");

        let (version, bytes) = learner.fetch_delta(1).unwrap();
        assert_eq!(version, 2);
        assert!(CheckpointDelta::from_bytes(&bytes).is_ok());
        assert!(learner.fetch_delta(9).is_err());
        assert_eq!(
            learner.fetch_checkpoint().unwrap(),
            checkpoint(2).to_bytes()
        );
        assert!(learner.apply_delta(&bytes).is_err());
        assert!(learner.apply_checkpoint(&[]).is_err());
    }
}
