//! `ncl-router-bench` — measures the sharded-serving fleet and emits
//! `BENCH_router.json`.
//!
//! Boots an in-process two-replica fleet (learner + follower, both
//! from the same deterministic bootstrap) behind a router, then
//! measures the three numbers the sharding design is accountable for:
//!
//! 1. **Routing overhead** — predict latency/throughput direct to a
//!    replica vs through the router.
//! 2. **Delta economy** — published checkpoint-delta size vs the full
//!    checkpoint per increment (the scenario puts the insertion layer
//!    at the last hidden layer, so increments only touch the readout —
//!    the regime the paper's frozen-backbone design creates).
//! 3. **Propagation latency** — time from the learner publishing an
//!    increment to the follower serving that exact version, while
//!    routed load keeps flowing.
//!
//! Gates (exit 1 on violation): zero failed requests anywhere, every
//! delta ≤ 10% of its full checkpoint, and the follower's final state
//! **bit-identical** to the learner's checkpoint.
//!
//! ```sh
//! ncl-router-bench [--quick] [--requests N] [--out PATH]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncl_data::ShdLikeConfig;
use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::publish::DeltaPublisher;
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_router::backend::Backend;
use ncl_router::replica::{FollowerReplica, LearnerReplica};
use ncl_router::router::{Router, RouterConfig};
use ncl_serve::client::NclClient;
use ncl_serve::protocol::object;
use ncl_serve::server::{Server, ServerConfig};
use ncl_serve::sync::ReplicaSync;
use ncl_snn::NetworkConfig;
use ncl_spike::SpikeRaster;
use serde_json::Value;

struct Args {
    quick: bool,
    requests: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        requests: 400,
        out: "BENCH_router.json".to_owned(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--requests" => {
                args.requests = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("ncl-router-bench: --requests needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("ncl-router-bench: --out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("ncl-router-bench: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.quick {
        args.requests = args.requests.min(120);
    }
    args
}

/// The fleet scenario: the insertion layer sits at the last hidden
/// layer, so an increment's learning stage is the readout alone —
/// deltas ship ~2% of the parameters. (The smoke scenario's insertion
/// layer 1 would retrain most of the network and make deltas pointless.)
fn fleet_config() -> OnlineConfig {
    let mut config = OnlineConfig::smoke();
    let mut data = ShdLikeConfig::smoke_test();
    data.classes = 5;
    data.channels = 64;
    data.steps = 40;
    data.train_per_class = 8;
    data.test_per_class = 4;
    let mut network = NetworkConfig::tiny(64, 5);
    network.hidden_sizes = vec![48, 24];
    config.scenario.data = data;
    config.scenario.network = network;
    config.scenario.insertion_layer = 2;
    config.scenario.pretrain_epochs = 6;
    config.scenario.cl_epochs = 4;
    config.scenario.seed = 11;
    config.capacity_bits = Some(24 * 1024);
    config
}

fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Drives `count` predicts against `addr`; returns (ok, failed,
/// latencies µs, wall).
fn drive(
    addr: std::net::SocketAddr,
    raster: &SpikeRaster,
    count: usize,
) -> (u64, u64, Vec<u64>, Duration) {
    let mut ok = 0u64;
    let mut failed = 0u64;
    let mut latencies = Vec::with_capacity(count);
    let started = Instant::now();
    let mut client = NclClient::connect(addr).expect("connect");
    for i in 0..count {
        let sent = Instant::now();
        match client.predict(i as u64, raster) {
            Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                ok += 1;
                latencies.push(sent.elapsed().as_micros() as u64);
            }
            _ => failed += 1,
        }
    }
    (ok, failed, latencies, started.elapsed())
}

fn load_block(ok: u64, failed: u64, latencies: &mut [u64], wall: Duration) -> Value {
    latencies.sort_unstable();
    object(vec![
        ("requests_ok", Value::from(ok)),
        ("requests_failed", Value::from(failed)),
        (
            "requests_per_sec",
            Value::from(ok as f64 / wall.as_secs_f64().max(1e-9)),
        ),
        ("p50_us", Value::from(percentile_us(latencies, 0.50))),
        ("p95_us", Value::from(percentile_us(latencies, 0.95))),
    ])
}

fn main() {
    let args = parse_args();
    let total_start = Instant::now();
    let config = fleet_config();

    // --- fleet bootstrap ------------------------------------------------
    eprintln!("bootstrapping the fleet (shared deterministic base)...");
    let mut learner = OnlineLearner::bootstrap(config.clone()).expect("bootstrap");
    let publisher = Arc::new(DeltaPublisher::new(learner.checkpoint()));
    let learner_sync: Arc<dyn ReplicaSync> = Arc::new(LearnerReplica::new(Arc::clone(&publisher)));
    let learner_server = Server::start_with_sync(
        learner.registry(),
        ServerConfig::default(),
        Some(learner_sync),
    )
    .expect("learner server");

    // The follower starts from the learner's checkpoint *bytes* — the
    // same payload a cold follower would fetch over the wire.
    let follower_ckpt = ncl_online::Checkpoint::from_bytes(&learner.checkpoint_bytes())
        .expect("decode bootstrap checkpoint");
    let follower = Arc::new(FollowerReplica::new(follower_ckpt));
    let follower_sync: Arc<dyn ReplicaSync> = Arc::clone(&follower) as Arc<dyn ReplicaSync>;
    let follower_server = Server::start_with_sync(
        follower.registry(),
        ServerConfig::default(),
        Some(follower_sync),
    )
    .expect("follower server");

    let backends = vec![
        Arc::new(Backend::new(0, learner_server.local_addr())),
        Arc::new(Backend::new(1, follower_server.local_addr())),
    ];
    let router = Router::start(
        backends,
        RouterConfig {
            sync_interval: Duration::from_millis(25),
            ..RouterConfig::default()
        },
    )
    .expect("router");

    let input_size = config.scenario.data.channels;
    let raster = SpikeRaster::from_fn(input_size, 24, |n, t| (n * 5 + t * 3) % 11 == 0);

    // --- 1. routing overhead -------------------------------------------
    eprintln!("measuring direct vs routed predict paths...");
    let (d_ok, d_failed, mut d_lat, d_wall) =
        drive(learner_server.local_addr(), &raster, args.requests);
    let (r_ok, r_failed, mut r_lat, r_wall) = drive(router.local_addr(), &raster, args.requests);
    let direct = load_block(d_ok, d_failed, &mut d_lat, d_wall);
    let routed = load_block(r_ok, r_failed, &mut r_lat, r_wall);
    let overhead_pct = {
        let direct_p50 = percentile_us(&d_lat, 0.50).max(1) as f64;
        let routed_p50 = percentile_us(&r_lat, 0.50) as f64;
        (routed_p50 - direct_p50) / direct_p50 * 100.0
    };

    // --- 2 + 3. stream increments: delta economy + propagation ----------
    eprintln!("running the learning stream under routed load...");
    let stream = SampleStream::generate(&StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: 16,
        total_events: if args.quick { 40 } else { 56 },
        novel_every: 3,
        seed: 0xF1EE7,
    })
    .expect("stream");

    // Background routed load while increments propagate.
    let stop_load = Arc::new(AtomicBool::new(false));
    let bg_ok = Arc::new(AtomicU64::new(0));
    let bg_failed = Arc::new(AtomicU64::new(0));
    let bg_handle = {
        let stop = Arc::clone(&stop_load);
        let ok = Arc::clone(&bg_ok);
        let failed = Arc::clone(&bg_failed);
        let addr = router.local_addr();
        let raster = raster.clone();
        std::thread::spawn(move || {
            let mut client = NclClient::connect(addr).expect("bg connect");
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                match client.predict(i, &raster) {
                    Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                i += 1;
            }
        })
    };

    let mut increments: Vec<Value> = Vec::new();
    let mut max_ratio = 0.0f64;
    let mut propagation_ms: Vec<u64> = Vec::new();
    for event in stream.events_from(learner.cursor()) {
        let outcome = learner.ingest(event).expect("ingest");
        if let IngestOutcome::Increment(report) = outcome {
            let delta_bytes = publisher.publish(learner.checkpoint()).expect("publish");
            let full_bytes = publisher.checkpoint_bytes().len();
            let ratio = delta_bytes as f64 / full_bytes as f64;
            max_ratio = max_ratio.max(ratio);
            // Propagation: publish -> follower registry serves the
            // learner's exact version (the 25 ms sync loop relays it).
            let published = Instant::now();
            let target = learner.version();
            let deadline = Instant::now() + Duration::from_secs(10);
            while follower.registry().version() < target {
                if Instant::now() > deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let reached = follower.registry().version() >= target;
            let elapsed_ms = published.elapsed().as_millis() as u64;
            propagation_ms.push(elapsed_ms);
            eprintln!(
                "increment v{}: delta {delta_bytes} B / full {full_bytes} B \
                 (ratio {:.1}%), propagated in {elapsed_ms} ms{}",
                report.version,
                ratio * 100.0,
                if reached { "" } else { " [TIMED OUT]" },
            );
            increments.push(object(vec![
                ("version", Value::from(report.version)),
                ("delta_bytes", Value::from(delta_bytes)),
                ("full_checkpoint_bytes", Value::from(full_bytes)),
                ("ratio", Value::from(ratio)),
                ("propagation_ms", Value::from(elapsed_ms)),
                ("propagated", Value::from(reached)),
            ]));
        }
    }
    stop_load.store(true, Ordering::Release);
    bg_handle.join().expect("bg load thread");

    // --- bit-identity ----------------------------------------------------
    // The follower converges to the last *published* checkpoint; the
    // learner's live state keeps drifting (cursor/pending advance on
    // non-increment events), so the publisher's bytes are the target.
    router.sync_now();
    let published_bytes = publisher.checkpoint_bytes();
    let follower_bytes = follower.checkpoint_bytes();
    let bit_identical = published_bytes == follower_bytes;

    propagation_ms.sort_unstable();
    let report = object(vec![
        ("bench", Value::from("router")),
        ("replicas", Value::from(2u64)),
        ("requests_per_phase", Value::from(args.requests)),
        ("direct", direct),
        ("routed", routed),
        ("router_overhead_pct", Value::from(overhead_pct)),
        (
            "background",
            object(vec![
                ("requests_ok", Value::from(bg_ok.load(Ordering::Relaxed))),
                (
                    "requests_failed",
                    Value::from(bg_failed.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "delta",
            object(vec![
                ("increments", Value::from(increments.len())),
                ("max_ratio", Value::from(max_ratio)),
                ("deltas_applied", Value::from(follower.deltas_applied())),
                ("full_syncs", Value::from(follower.full_syncs())),
                ("per_increment", increments.into_iter().collect::<Value>()),
            ]),
        ),
        (
            "propagation",
            object(vec![
                ("p50_ms", Value::from(percentile_us(&propagation_ms, 0.50))),
                ("max_ms", Value::from(percentile_us(&propagation_ms, 1.0))),
            ]),
        ),
        ("follower_bit_identical", Value::from(bit_identical)),
        (
            "total_wall_s",
            Value::from(total_start.elapsed().as_secs_f64()),
        ),
    ]);
    std::fs::write(&args.out, format!("{}\n", report.to_json_pretty())).expect("write report");
    println!("{}", report.to_json_pretty());
    eprintln!("wrote {}", args.out);

    router.shutdown();
    learner_server.shutdown();
    follower_server.shutdown();

    // --- gates -----------------------------------------------------------
    let mut bad = Vec::new();
    if d_failed + r_failed + bg_failed.load(Ordering::Relaxed) > 0 {
        bad.push("requests failed".to_owned());
    }
    if propagation_ms.is_empty() {
        bad.push("no increments ran".to_owned());
    }
    if max_ratio > 0.10 {
        bad.push(format!(
            "delta ratio {:.1}% exceeds the 10% gate",
            max_ratio * 100.0
        ));
    }
    if !bit_identical {
        bad.push("follower checkpoint is not bit-identical to the learner's".to_owned());
    }
    if !bad.is_empty() {
        for problem in &bad {
            eprintln!("ncl-router-bench: GATE FAILED: {problem}");
        }
        std::process::exit(1);
    }
    eprintln!("all gates passed");
}
