//! `ncl-fleet-bench` — measures the elastic fleet's failure-handling
//! paths and emits `BENCH_fleet.json`.
//!
//! Two phases:
//!
//! 1. **Failover latency** — a three-replica elastic fleet under live
//!    routed load; each round partitions the current learner and
//!    measures partition → promotion latency (detection across
//!    `failover_ticks` unhealthy sync ticks plus the promote op), then
//!    heals the deposed learner and waits for its fenced demotion.
//! 2. **Rejoin catch-up** — a ring-limited synthetic learner; one
//!    follower lags exactly `ring` versions (pure delta catch-up, one
//!    hop per sync tick) and a second joins past ring depth (full
//!    checkpoint fallback). Reports wall time and bytes shipped on
//!    each path.
//!
//! Gates (exit 1 on violation): zero failed client requests through
//! every partition, one promotion per round plus the initial election,
//! survivors byte-identical after the chaos, the delta path applying
//! exactly `ring` deltas with zero full syncs, the full-sync path
//! shipping a checkpoint no smaller than any single delta.
//!
//! ```sh
//! ncl-fleet-bench [--quick] [--rounds N] [--out PATH]
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncl_online::daemon::{OnlineConfig, OnlineLearner};
use ncl_online::publish::DeltaPublisher;
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_online::Checkpoint;
use ncl_router::backend::Backend;
use ncl_router::faults::FaultPlan;
use ncl_router::replica::{ElasticReplica, FollowerReplica, LearnerReplica};
use ncl_router::router::{Router, RouterConfig};
use ncl_serve::client::NclClient;
use ncl_serve::protocol::object;
use ncl_serve::registry::ModelRegistry;
use ncl_serve::server::{Server, ServerConfig};
use ncl_serve::sync::ReplicaSync;
use serde_json::Value;

struct Args {
    quick: bool,
    rounds: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        rounds: 4,
        out: "BENCH_fleet.json".to_owned(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--rounds" => {
                args.rounds = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("ncl-fleet-bench: --rounds needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                args.out = iter.next().unwrap_or_else(|| {
                    eprintln!("ncl-fleet-bench: --out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("ncl-fleet-bench: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.quick {
        args.rounds = args.rounds.min(2);
    }
    args.rounds = args.rounds.max(1);
    args
}

/// Small config that bootstraps in seconds. The stream is all warmup
/// (no novel class): failover rounds measure the control plane, not
/// training, so a promoted learner drains its stream without an
/// increment and every survivor stays on the bootstrap bytes.
fn fleet_config() -> (OnlineConfig, StreamConfig) {
    let mut config = OnlineConfig::smoke();
    config.scenario.pretrain_epochs = 4;
    config.scenario.cl_epochs = 3;
    config.scenario.parallelism = 2;
    config.delta_ring = 4;
    let stream = StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: 8,
        total_events: 8,
        novel_every: 1,
        seed: 0xF1EE7,
    };
    (config, stream)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn poll_until(deadline_secs: u64, what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(deadline_secs);
    while !done() {
        if Instant::now() > deadline {
            eprintln!("ncl-fleet-bench: timed out waiting for {what}");
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

struct Node {
    replica: Arc<ElasticReplica>,
    server: Server,
}

fn start_node(config: &OnlineConfig, bootstrap: &Checkpoint, stream: &SampleStream) -> Node {
    let obs = Arc::new(ncl_obs::Registry::new());
    let replica = Arc::new(
        ElasticReplica::follower(
            config.clone(),
            bootstrap.clone(),
            stream.clone(),
            Duration::from_millis(1),
            Arc::clone(&obs),
        )
        .expect("elastic follower"),
    );
    replica.register_into(&obs);
    let sync: Arc<dyn ReplicaSync> = Arc::clone(&replica) as Arc<dyn ReplicaSync>;
    let server =
        Server::start_with_obs(replica.registry(), ServerConfig::default(), Some(sync), obs)
            .expect("replica server");
    Node { replica, server }
}

/// Phase 1: failover rounds. Returns the JSON block plus the background
/// load outcome (ok, failed), survivor bit-identity and promotion count.
fn failover_phase(args: &Args) -> (Value, u64, u64, bool, u64) {
    let (config, stream_config) = fleet_config();
    let stream = SampleStream::generate(&stream_config).expect("stream");
    eprintln!("bootstrapping the elastic fleet (shared deterministic base)...");
    let learner = OnlineLearner::bootstrap(config.clone()).expect("bootstrap");
    let bootstrap = learner.checkpoint();
    drop(learner);

    let nodes: Vec<Node> = (0..3)
        .map(|_| start_node(&config, &bootstrap, &stream))
        .collect();
    let plan = Arc::new(FaultPlan::new(0xFA110));
    let backends: Vec<Arc<Backend>> = nodes
        .iter()
        .enumerate()
        .map(|(id, node)| Arc::new(Backend::new(id, node.server.local_addr())))
        .collect();
    for backend in &backends {
        backend.configure_breaker(Duration::from_millis(10), Duration::from_millis(50));
    }
    let sync_interval = Duration::from_millis(10);
    let failover_ticks = 3u32;
    let router = Router::start_with_faults(
        backends,
        RouterConfig {
            sync_interval,
            failover_ticks,
            ..RouterConfig::default()
        },
        Some(Arc::clone(&plan)),
    )
    .expect("router");
    let addr = router.local_addr();

    // Live client load across every partition in the phase.
    let stop = Arc::new(AtomicBool::new(false));
    let bg_ok = Arc::new(AtomicU64::new(0));
    let bg_failed = Arc::new(AtomicU64::new(0));
    let probe = stream.events()[0].raster.clone();
    let load = {
        let stop = Arc::clone(&stop);
        let ok = Arc::clone(&bg_ok);
        let failed = Arc::clone(&bg_failed);
        std::thread::spawn(move || {
            let mut client = NclClient::connect(addr).expect("bg connect");
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                match client.predict(i, &probe) {
                    Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                i += 1;
            }
        })
    };

    // Initial election: a fleet of followers has no learner, so after
    // `failover_ticks` learner-less ticks the router promotes one.
    let started = Instant::now();
    poll_until(30, "the initial election", || router.promotions() >= 1);
    let initial_election_ms = started.elapsed().as_millis() as u64;
    eprintln!("initial election in {initial_election_ms} ms");

    let mut detection_ms: Vec<u64> = Vec::new();
    for round in 0..args.rounds {
        poll_until(30, "a single settled learner", || {
            nodes
                .iter()
                .filter(|n| n.replica.role() == "learner")
                .count()
                == 1
        });
        let lid = nodes
            .iter()
            .position(|n| n.replica.role() == "learner")
            .expect("a learner is live");
        let promotions = router.promotions();
        let demotions = router.demotions();

        plan.partition(lid);
        let t0 = Instant::now();
        poll_until(30, "failover promotion", || {
            router.promotions() > promotions
        });
        let latency = t0.elapsed().as_millis() as u64;
        detection_ms.push(latency);
        eprintln!("round {round}: partitioned learner {lid}, promoted a successor in {latency} ms");

        plan.heal(lid);
        poll_until(30, "the deposed learner's demotion", || {
            router.demotions() > demotions && nodes[lid].replica.role() == "follower"
        });
    }

    // Let in-flight requests settle, then stop the load.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Release);
    load.join().expect("bg load thread");

    // No increments ran (the stream is all warmup), so every survivor —
    // including each deposed learner, which fell back to its last
    // published checkpoint — must still hold the bootstrap bytes.
    let reference = nodes[0].replica.checkpoint_bytes();
    let bit_identical = nodes
        .iter()
        .all(|n| n.replica.checkpoint_bytes() == reference);

    detection_ms.sort_unstable();
    let block = object(vec![
        ("rounds", Value::from(args.rounds)),
        ("failover_ticks", Value::from(u64::from(failover_ticks))),
        (
            "sync_interval_ms",
            Value::from(sync_interval.as_millis() as u64),
        ),
        ("initial_election_ms", Value::from(initial_election_ms)),
        (
            "detection_to_promotion_ms",
            detection_ms
                .iter()
                .map(|&v| Value::from(v))
                .collect::<Value>(),
        ),
        ("p50_ms", Value::from(percentile(&detection_ms, 0.50))),
        ("max_ms", Value::from(percentile(&detection_ms, 1.0))),
        ("promotions", Value::from(router.promotions())),
        ("demotions", Value::from(router.demotions())),
        ("final_epoch", Value::from(router.epoch())),
    ]);

    let ok = bg_ok.load(Ordering::Relaxed);
    let failed = bg_failed.load(Ordering::Relaxed);
    let promotions = router.promotions();
    router.shutdown();
    for node in nodes {
        node.server.shutdown();
    }
    (block, ok, failed, bit_identical, promotions)
}

/// Hand-built checkpoint chain for the rejoin phase (versions differ in
/// the trainable weights, so deltas are real payloads).
fn synth(version: u64) -> Checkpoint {
    use ncl_snn::{Network, NetworkConfig};
    use ncl_spike::memory::Alignment;
    use replay4ncl::buffer::LatentReplayBuffer;

    let mut network = Network::new(NetworkConfig::tiny(6, 3)).expect("network");
    network
        .visit_trainable_mut(1, |slice| {
            for v in slice.iter_mut() {
                *v += version as f32 * 0.01;
            }
        })
        .expect("bump weights");
    Checkpoint {
        version,
        cursor: version * 10,
        event_digest: version ^ 0xAB,
        config_digest: 42,
        known_classes: vec![0, 1],
        network,
        buffer: LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 8_192),
        pending: Vec::new(),
    }
}

fn start_synth_follower() -> (Arc<FollowerReplica>, Server) {
    let replica = Arc::new(FollowerReplica::new(synth(1)));
    let sync: Arc<dyn ReplicaSync> = Arc::clone(&replica) as Arc<dyn ReplicaSync>;
    let server = Server::start_with_sync(replica.registry(), ServerConfig::default(), Some(sync))
        .expect("follower server");
    (replica, server)
}

/// Phase 2: rejoin catch-up economics, delta ring vs full sync.
/// Returns the JSON block plus each path's convergence verdict.
fn rejoin_phase() -> (Value, bool, bool) {
    const RING: usize = 8;
    let base = synth(1);
    let registry = Arc::new(ModelRegistry::with_initial_version(
        base.network.clone(),
        "synth",
        1,
    ));
    let publisher = Arc::new(DeltaPublisher::with_ring(base, RING));
    let learner_sync: Arc<dyn ReplicaSync> = Arc::new(LearnerReplica::new(Arc::clone(&publisher)));
    let learner_server = Server::start_with_sync(
        Arc::clone(&registry),
        ServerConfig::default(),
        Some(learner_sync),
    )
    .expect("synth learner server");

    let (near, near_server) = start_synth_follower();
    let (far, far_server) = start_synth_follower();

    let router = Router::start(
        vec![
            Arc::new(Backend::new(0, learner_server.local_addr())),
            Arc::new(Backend::new(1, near_server.local_addr())),
        ],
        RouterConfig {
            // Driven manually with sync_now(): deterministic tick count.
            sync_interval: Duration::from_secs(3600),
            ..RouterConfig::default()
        },
    )
    .expect("router");

    // Lag == ring capacity: catch-up is one retained delta per tick.
    let target = 1 + RING as u64;
    let network = synth(target).network.clone();
    while publisher.version() < target {
        publisher
            .publish(synth(publisher.version() + 1))
            .expect("publish");
    }
    registry
        .swap_network_at(network, "synth", target)
        .expect("swap");
    let delta_bytes: usize = (1..target)
        .map(|v| publisher.delta_from(v).expect("retained delta").1.len())
        .sum();
    let t0 = Instant::now();
    for _ in 0..RING {
        router.sync_now();
    }
    let delta_wall_us = t0.elapsed().as_micros() as u64;
    // Verdict taken *now*: the full-sync scenario below publishes one
    // more version, which the sync loop would also walk `near` through.
    let near_deltas = near.deltas_applied();
    let near_ok = near.registry().version() == target
        && near_deltas == RING as u64
        && near.full_syncs() == 0
        && near.checkpoint_bytes() == synth(target).to_bytes();
    eprintln!(
        "delta catch-up: lag {RING} -> {near_deltas} delta(s), {delta_bytes} B in {delta_wall_us} us"
    );

    // One more publish pushes v1 out of the ring; a fresh joiner at v1
    // must take the full-checkpoint path on its first sync.
    let network = synth(target + 1).network.clone();
    publisher.publish(synth(target + 1)).expect("publish");
    registry
        .swap_network_at(network, "synth", target + 1)
        .expect("swap");
    let full_bytes = publisher.checkpoint_bytes().len();
    let mut control = NclClient::connect(router.local_addr()).expect("control");
    let joined = control
        .join(&far_server.local_addr().to_string())
        .expect("join");
    assert_eq!(joined.get("ok").and_then(Value::as_bool), Some(true));
    let t0 = Instant::now();
    router.sync_now();
    let full_wall_us = t0.elapsed().as_micros() as u64;
    eprintln!(
        "full-sync catch-up: lag {} -> {} full sync(s), {full_bytes} B in {full_wall_us} us",
        RING + 1,
        far.full_syncs(),
    );

    let far_ok = far.registry().version() == target + 1
        && far.full_syncs() == 1
        && far.deltas_applied() == 0
        && far.checkpoint_bytes() == publisher.checkpoint_bytes();

    let block = object(vec![
        ("ring", Value::from(RING)),
        (
            "delta",
            object(vec![
                ("lag", Value::from(RING)),
                ("deltas_applied", Value::from(near_deltas)),
                ("full_syncs", Value::from(near.full_syncs())),
                ("bytes", Value::from(delta_bytes)),
                ("bytes_per_hop", Value::from(delta_bytes / RING)),
                ("catch_up_us", Value::from(delta_wall_us)),
                ("converged", Value::from(near_ok)),
            ]),
        ),
        (
            "full_sync",
            object(vec![
                ("lag", Value::from(RING + 1)),
                ("deltas_applied", Value::from(far.deltas_applied())),
                ("full_syncs", Value::from(far.full_syncs())),
                ("bytes", Value::from(full_bytes)),
                ("catch_up_us", Value::from(full_wall_us)),
                ("converged", Value::from(far_ok)),
            ]),
        ),
        (
            "delta_hop_vs_full_ratio",
            Value::from(delta_bytes as f64 / RING as f64 / full_bytes as f64),
        ),
    ]);

    router.shutdown();
    learner_server.shutdown();
    near_server.shutdown();
    far_server.shutdown();
    (block, near_ok, far_ok)
}

fn main() {
    let args = parse_args();
    let total_start = Instant::now();

    let (failover, bg_ok, bg_failed, survivors_identical, promotions) = failover_phase(&args);
    let (rejoin, delta_converged, full_converged) = rejoin_phase();

    let report = object(vec![
        ("bench", Value::from("fleet")),
        ("replicas", Value::from(3u64)),
        ("failover", failover),
        (
            "background",
            object(vec![
                ("requests_ok", Value::from(bg_ok)),
                ("requests_failed", Value::from(bg_failed)),
            ]),
        ),
        ("survivors_bit_identical", Value::from(survivors_identical)),
        ("rejoin", rejoin),
        (
            "total_wall_s",
            Value::from(total_start.elapsed().as_secs_f64()),
        ),
    ]);
    std::fs::write(&args.out, format!("{}\n", report.to_json_pretty())).expect("write report");
    println!("{}", report.to_json_pretty());
    eprintln!("wrote {}", args.out);

    // --- gates -----------------------------------------------------------
    let mut bad = Vec::new();
    if bg_failed > 0 {
        bad.push(format!(
            "{bg_failed} client request(s) failed during failover"
        ));
    }
    if bg_ok == 0 {
        bad.push("the background load made no progress".to_owned());
    }
    if !survivors_identical {
        bad.push("survivors diverged after the failover rounds".to_owned());
    }
    if promotions != args.rounds as u64 + 1 {
        bad.push(format!(
            "expected {} promotion(s) (initial election + one per round), saw {promotions}",
            args.rounds + 1
        ));
    }
    if !delta_converged {
        bad.push("the delta catch-up path did not converge".to_owned());
    }
    if !full_converged {
        bad.push("the full-sync catch-up path did not converge".to_owned());
    }
    if !bad.is_empty() {
        for problem in &bad {
            eprintln!("ncl-fleet-bench: GATE FAILED: {problem}");
        }
        std::process::exit(1);
    }
    eprintln!("all gates passed");
}
