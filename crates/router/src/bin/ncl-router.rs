//! `ncl-router` — the front door of a sharded serving fleet.
//!
//! Fronts N `ncl-replica` processes on one address: predicts are
//! dispatched to the least-loaded healthy replica (or by consistent
//! hash of the request id), transport failures fail over to the
//! survivors, and the built-in sync loop keeps followers converged on
//! the learner's checkpoints by relaying KB-scale deltas.
//!
//! The fleet is elastic: replicas can `join`/`leave` over the wire, and
//! `--failover-ticks N` sets how many consecutive learner-less sync
//! ticks the router tolerates before promoting the most caught-up
//! follower.
//!
//! ```sh
//! ncl-router --backend ADDR [--backend ADDR ...]
//!            [--port N] [--policy least-loaded|hash] [--sync-ms N]
//!            [--failover-ticks N]
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use ncl_router::backend::Backend;
use ncl_router::router::{DispatchPolicy, Router, RouterConfig};

struct Args {
    port: u16,
    backends: Vec<SocketAddr>,
    policy: DispatchPolicy,
    sync_ms: u64,
    failover_ticks: u32,
}

fn usage(problem: &str) -> ! {
    eprintln!("ncl-router: {problem}");
    eprintln!(
        "usage: ncl-router --backend ADDR [--backend ADDR ...] [--port N] \
         [--policy least-loaded|hash] [--sync-ms N] [--failover-ticks N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 0,
        backends: Vec::new(),
        policy: DispatchPolicy::LeastLoaded,
        sync_ms: 150,
        failover_ticks: RouterConfig::default().failover_ticks,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--port" => {
                args.port = value("--port")
                    .parse()
                    .unwrap_or_else(|_| usage("--port must be a port number"));
            }
            "--backend" => {
                let addr = value("--backend");
                args.backends.push(
                    addr.parse()
                        .unwrap_or_else(|_| usage(&format!("bad backend address {addr}"))),
                );
            }
            "--policy" => {
                args.policy = match value("--policy").as_str() {
                    "least-loaded" => DispatchPolicy::LeastLoaded,
                    "hash" => DispatchPolicy::ConsistentHash,
                    other => usage(&format!(
                        "--policy must be least-loaded or hash, got {other}"
                    )),
                };
            }
            "--sync-ms" => {
                args.sync_ms = value("--sync-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--sync-ms must be an integer"));
            }
            "--failover-ticks" => {
                args.failover_ticks = value("--failover-ticks")
                    .parse()
                    .unwrap_or_else(|_| usage("--failover-ticks must be an integer"));
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if args.backends.is_empty() {
        usage("at least one --backend is required");
    }
    args
}

fn main() {
    let args = parse_args();
    let backends: Vec<Arc<Backend>> = args
        .backends
        .iter()
        .enumerate()
        .map(|(id, &addr)| Arc::new(Backend::new(id, addr)))
        .collect();
    let router = match Router::start(
        backends,
        RouterConfig {
            port: args.port,
            policy: args.policy,
            sync_interval: Duration::from_millis(args.sync_ms.max(10)),
            failover_ticks: args.failover_ticks,
            ..RouterConfig::default()
        },
    ) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("ncl-router: {e}");
            std::process::exit(1);
        }
    };
    let healthy = router.backends().iter().filter(|b| b.is_healthy()).count();
    println!(
        "listening on {} fronting {} replica(s) ({} healthy)",
        router.local_addr(),
        router.backends().len(),
        healthy
    );
    router.wait();
    println!("drained and stopped.");
}
