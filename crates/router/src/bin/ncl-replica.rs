//! `ncl-replica` — one member of an elastic sharded serving fleet.
//!
//! Both roles serve the same deterministic daemon state (identical
//! configs produce bit-identical v1 checkpoints, so every replica
//! starts from the same base — the property the delta chain relies on),
//! then diverge:
//!
//! * `--role learner` runs the continual-learning stream: it ingests
//!   events (paced by `--pace-ms` so increments land mid-load),
//!   publishes a checkpoint delta after every increment, and answers
//!   `delta`/`checkpoint` fetches. `--delta-ring N` sets how many
//!   consecutive deltas it retains before laggards need a full sync.
//! * `--role follower` mounts an elastic replica: it serves and applies
//!   whatever the router relays, and can be *promoted* to learner over
//!   the wire — it then resumes training from its last applied
//!   checkpoint and continues the same deterministic stream.
//!
//! Elastic-fleet flags: `--join ADDR` registers this replica with a
//! running router once it is listening; `--bootstrap-from ADDR` skips
//! local bootstrap entirely and cold-starts from the fleet's current
//! checkpoint, fetched through the router's `checkpoint` relay.
//!
//! ```sh
//! ncl-replica --role learner|follower [--port N] [--workers N]
//!             [--events N] [--warmup N] [--novel-every N] [--pace-ms N]
//!             [--arrival-threshold N] [--cl-epochs N] [--pretrain-epochs N]
//!             [--seed N] [--delta-ring N] [--join ADDR]
//!             [--bootstrap-from ADDR] [--quiet]
//! ```
//!
//! The stream flags matter for the learner and for any follower that
//! may be promoted; pass one flag set to the whole fleet so every
//! member would continue the identical stream.

use std::sync::Arc;
use std::time::Duration;

use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::publish::DeltaPublisher;
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_router::replica::{ElasticReplica, LearnerReplica};
use ncl_serve::client::NclClient;
use ncl_serve::protocol::from_hex;
use ncl_serve::server::{Server, ServerConfig};
use ncl_serve::sync::ReplicaSync;
use serde_json::Value;

#[derive(PartialEq)]
enum Role {
    Learner,
    Follower,
}

struct Args {
    role: Role,
    port: u16,
    workers: usize,
    events: usize,
    warmup: usize,
    novel_every: usize,
    pace_ms: u64,
    arrival_threshold: usize,
    cl_epochs: usize,
    pretrain_epochs: usize,
    seed: u64,
    delta_ring: usize,
    join: Option<String>,
    bootstrap_from: Option<String>,
    quiet: bool,
}

fn usage(problem: &str) -> ! {
    eprintln!("ncl-replica: {problem}");
    eprintln!(
        "usage: ncl-replica --role learner|follower [--port N] [--workers N] [--events N] \
         [--warmup N] [--novel-every N] [--pace-ms N] [--arrival-threshold N] [--cl-epochs N] \
         [--pretrain-epochs N] [--seed N] [--delta-ring N] [--join ADDR] \
         [--bootstrap-from ADDR] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        role: Role::Follower,
        port: 0,
        workers: 2,
        events: 60,
        warmup: 24,
        novel_every: 3,
        pace_ms: 0,
        arrival_threshold: 4,
        cl_epochs: 6,
        pretrain_epochs: 10,
        seed: 0x57EA4,
        delta_ring: OnlineConfig::smoke().delta_ring,
        join: None,
        bootstrap_from: None,
        quiet: false,
    };
    let mut role_given = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        macro_rules! parse {
            ($flag:literal) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " must be a non-negative integer")))
            };
        }
        match arg.as_str() {
            "--role" => {
                role_given = true;
                args.role = match value("--role").as_str() {
                    "learner" => Role::Learner,
                    "follower" => Role::Follower,
                    other => usage(&format!("--role must be learner or follower, got {other}")),
                };
            }
            "--port" => args.port = parse!("--port"),
            "--workers" => args.workers = parse!("--workers"),
            "--events" => args.events = parse!("--events"),
            "--warmup" => args.warmup = parse!("--warmup"),
            "--novel-every" => args.novel_every = parse!("--novel-every"),
            "--pace-ms" => args.pace_ms = parse!("--pace-ms"),
            "--arrival-threshold" => args.arrival_threshold = parse!("--arrival-threshold"),
            "--cl-epochs" => args.cl_epochs = parse!("--cl-epochs"),
            "--pretrain-epochs" => args.pretrain_epochs = parse!("--pretrain-epochs"),
            "--seed" => args.seed = parse!("--seed"),
            "--delta-ring" => args.delta_ring = parse!("--delta-ring"),
            "--join" => args.join = Some(value("--join")),
            "--bootstrap-from" => args.bootstrap_from = Some(value("--bootstrap-from")),
            "--quiet" => args.quiet = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if !role_given {
        usage("--role is required");
    }
    if args.role == Role::Learner && args.bootstrap_from.is_some() {
        usage("--bootstrap-from is a follower flag (the learner's state comes from training)");
    }
    args
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("ncl-replica: {e}");
        std::process::exit(1);
    }
}

/// Fetches the fleet's current checkpoint bytes through the router's
/// `checkpoint` relay (the cold-join bootstrap path).
fn fetch_checkpoint(router: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let mut client = NclClient::connect(router)?;
    let response = client.checkpoint()?;
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        let error = response
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unrecognised response");
        return Err(format!("checkpoint fetch via {router} failed: {error}").into());
    }
    let payload = response
        .get("payload")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("checkpoint response from {router} carried no payload"))?;
    Ok(from_hex(payload)?)
}

/// Registers this replica's serving address with a running router.
fn join_fleet(router: &str, own_addr: &str, quiet: bool) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = NclClient::connect(router)?;
    let response = client.join(own_addr)?;
    if response.get("ok").and_then(Value::as_bool) != Some(true) {
        let error = response
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("unrecognised response");
        return Err(format!("join via {router} failed: {error}").into());
    }
    if !quiet {
        let id = response.get("id").and_then(Value::as_u64).unwrap_or(0);
        println!("joined the fleet at {router} as replica {id}");
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = OnlineConfig::smoke();
    config.scenario.parallelism = args.workers.max(1);
    config.scenario.cl_epochs = args.cl_epochs.max(1);
    config.scenario.pretrain_epochs = args.pretrain_epochs.max(1);
    config.arrival_threshold = args.arrival_threshold;
    config.delta_ring = args.delta_ring.max(1);

    // One metric registry per process; the `metrics` wire op serves it,
    // and the router merges it into the fleet exposition.
    let obs = Arc::new(ncl_obs::Registry::new());

    // The deterministic event stream. The learner ingests it directly;
    // an elastic follower keeps it dormant so a promotion can continue
    // it from the promoted checkpoint's cursor.
    let stream = SampleStream::generate(&StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: args.warmup,
        total_events: args.events,
        novel_every: args.novel_every.max(1),
        seed: args.seed,
    })?;
    let pace = Duration::from_millis(args.pace_ms);

    let server_config = ServerConfig {
        port: args.port,
        ..ServerConfig::default()
    };
    match args.role {
        Role::Follower => {
            let replica = if let Some(router) = &args.bootstrap_from {
                // Cold join: adopt the fleet's current state instead of
                // re-deriving the v1 bootstrap locally.
                let payload = fetch_checkpoint(router)?;
                let replica = ElasticReplica::from_checkpoint_bytes(
                    config,
                    &payload,
                    stream,
                    pace,
                    Arc::clone(&obs),
                )?;
                if !args.quiet {
                    println!(
                        "bootstrapped from the fleet via {router}: {} B checkpoint, model v{}",
                        payload.len(),
                        replica.registry().version()
                    );
                }
                Arc::new(replica)
            } else {
                let learner = OnlineLearner::bootstrap_with_obs(config.clone(), Arc::clone(&obs))?;
                if !args.quiet {
                    println!(
                        "bootstrapped: {} classes at {:.1}% test accuracy, {} latent entries",
                        learner.known_classes().len(),
                        learner.pretrain_acc() * 100.0,
                        learner.buffer().len()
                    );
                }
                Arc::new(ElasticReplica::follower(
                    config,
                    learner.checkpoint(),
                    stream,
                    pace,
                    Arc::clone(&obs),
                )?)
            };
            replica.register_into(&obs);
            let registry = replica.registry();
            let sync: Arc<dyn ReplicaSync> = replica;
            let server =
                Server::start_with_obs(registry, server_config, Some(sync), Arc::clone(&obs))?;
            println!(
                "listening on {} (model v{}, role follower)",
                server.local_addr(),
                server.registry().version()
            );
            if let Some(router) = &args.join {
                join_fleet(router, &server.local_addr().to_string(), args.quiet)?;
            }
            server.wait();
        }
        Role::Learner => {
            let mut learner = OnlineLearner::bootstrap_with_obs(config.clone(), Arc::clone(&obs))?;
            if !args.quiet {
                println!(
                    "bootstrapped: {} classes at {:.1}% test accuracy, {} latent entries",
                    learner.known_classes().len(),
                    learner.pretrain_acc() * 100.0,
                    learner.buffer().len()
                );
            }
            let publisher = Arc::new(DeltaPublisher::with_ring(
                learner.checkpoint(),
                config.delta_ring,
            ));
            let sync: Arc<dyn ReplicaSync> = Arc::new(LearnerReplica::new(Arc::clone(&publisher)));
            let server = Server::start_with_obs(
                learner.registry(),
                server_config,
                Some(sync),
                Arc::clone(&obs),
            )?;
            println!(
                "listening on {} (model v{}, role learner)",
                server.local_addr(),
                learner.version()
            );
            if let Some(router) = &args.join {
                join_fleet(router, &server.local_addr().to_string(), args.quiet)?;
            }

            let delta_hist = obs.histogram(
                "online_delta_bytes",
                "Encoded size of published checkpoint deltas in bytes.",
            );
            let mut increments = 0usize;
            for event in stream.events_from(learner.cursor()) {
                if let IngestOutcome::Increment(report) = learner.ingest(event)? {
                    increments += 1;
                    let delta_bytes = publisher.publish(learner.checkpoint())?;
                    delta_hist.record(delta_bytes as u64);
                    println!(
                        "increment v{}: learned class(es) {:?}, published a {} B delta",
                        report.version, report.classes, delta_bytes
                    );
                }
                if args.pace_ms > 0 {
                    std::thread::sleep(Duration::from_millis(args.pace_ms));
                }
            }
            println!(
                "stream done: {} events, {} increment(s), model v{}",
                args.events,
                increments,
                learner.version()
            );
            server.wait();
        }
    }
    println!("drained and stopped.");
    Ok(())
}
