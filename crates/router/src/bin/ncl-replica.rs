//! `ncl-replica` — one member of a sharded serving fleet.
//!
//! Both roles bootstrap the same deterministic daemon state (identical
//! configs produce bit-identical v1 checkpoints, so every replica
//! starts from the same base — the property the delta chain relies on),
//! then diverge:
//!
//! * `--role learner` runs the continual-learning stream: it ingests
//!   events (paced by `--pace-ms` so increments land mid-load),
//!   publishes a checkpoint delta after every increment, and answers
//!   `delta`/`checkpoint` fetches.
//! * `--role follower` just serves, applying whatever deltas the
//!   router relays (`apply_delta`/`apply_checkpoint`), hot-swapping at
//!   the learner's exact version.
//!
//! ```sh
//! ncl-replica --role learner|follower [--port N] [--workers N]
//!             [--events N] [--warmup N] [--novel-every N] [--pace-ms N]
//!             [--arrival-threshold N] [--cl-epochs N] [--pretrain-epochs N]
//!             [--seed N] [--quiet]
//! ```
//!
//! The stream flags only matter for the learner; followers accept them
//! (so a launcher can pass one flag set to the whole fleet) and ignore
//! the stream itself.

use std::sync::Arc;

use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::publish::DeltaPublisher;
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_router::replica::{FollowerReplica, LearnerReplica};
use ncl_serve::server::{Server, ServerConfig};
use ncl_serve::sync::ReplicaSync;

#[derive(PartialEq)]
enum Role {
    Learner,
    Follower,
}

struct Args {
    role: Role,
    port: u16,
    workers: usize,
    events: usize,
    warmup: usize,
    novel_every: usize,
    pace_ms: u64,
    arrival_threshold: usize,
    cl_epochs: usize,
    pretrain_epochs: usize,
    seed: u64,
    quiet: bool,
}

fn usage(problem: &str) -> ! {
    eprintln!("ncl-replica: {problem}");
    eprintln!(
        "usage: ncl-replica --role learner|follower [--port N] [--workers N] [--events N] \
         [--warmup N] [--novel-every N] [--pace-ms N] [--arrival-threshold N] [--cl-epochs N] \
         [--pretrain-epochs N] [--seed N] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        role: Role::Follower,
        port: 0,
        workers: 2,
        events: 60,
        warmup: 24,
        novel_every: 3,
        pace_ms: 0,
        arrival_threshold: 4,
        cl_epochs: 6,
        pretrain_epochs: 10,
        seed: 0x57EA4,
        quiet: false,
    };
    let mut role_given = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        macro_rules! parse {
            ($flag:literal) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " must be a non-negative integer")))
            };
        }
        match arg.as_str() {
            "--role" => {
                role_given = true;
                args.role = match value("--role").as_str() {
                    "learner" => Role::Learner,
                    "follower" => Role::Follower,
                    other => usage(&format!("--role must be learner or follower, got {other}")),
                };
            }
            "--port" => args.port = parse!("--port"),
            "--workers" => args.workers = parse!("--workers"),
            "--events" => args.events = parse!("--events"),
            "--warmup" => args.warmup = parse!("--warmup"),
            "--novel-every" => args.novel_every = parse!("--novel-every"),
            "--pace-ms" => args.pace_ms = parse!("--pace-ms"),
            "--arrival-threshold" => args.arrival_threshold = parse!("--arrival-threshold"),
            "--cl-epochs" => args.cl_epochs = parse!("--cl-epochs"),
            "--pretrain-epochs" => args.pretrain_epochs = parse!("--pretrain-epochs"),
            "--seed" => args.seed = parse!("--seed"),
            "--quiet" => args.quiet = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if !role_given {
        usage("--role is required");
    }
    args
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("ncl-replica: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = OnlineConfig::smoke();
    config.scenario.parallelism = args.workers.max(1);
    config.scenario.cl_epochs = args.cl_epochs.max(1);
    config.scenario.pretrain_epochs = args.pretrain_epochs.max(1);
    config.arrival_threshold = args.arrival_threshold;

    // One metric registry per process; the `metrics` wire op serves it,
    // and the router merges it into the fleet exposition.
    let obs = Arc::new(ncl_obs::Registry::new());

    // Every replica bootstraps the same state: the config digest pins
    // the determinism-relevant fields, and bootstrap is a deterministic
    // function of them.
    let mut learner = OnlineLearner::bootstrap_with_obs(config.clone(), Arc::clone(&obs))?;
    if !args.quiet {
        println!(
            "bootstrapped: {} classes at {:.1}% test accuracy, {} latent entries",
            learner.known_classes().len(),
            learner.pretrain_acc() * 100.0,
            learner.buffer().len()
        );
    }

    let server_config = ServerConfig {
        port: args.port,
        ..ServerConfig::default()
    };
    match args.role {
        Role::Follower => {
            let follower = Arc::new(FollowerReplica::new(learner.checkpoint()));
            follower.register_into(&obs);
            let registry = follower.registry();
            let sync: Arc<dyn ReplicaSync> = follower;
            let server =
                Server::start_with_obs(registry, server_config, Some(sync), Arc::clone(&obs))?;
            println!(
                "listening on {} (model v{}, role follower)",
                server.local_addr(),
                server.registry().version()
            );
            server.wait();
        }
        Role::Learner => {
            let publisher = Arc::new(DeltaPublisher::new(learner.checkpoint()));
            let sync: Arc<dyn ReplicaSync> = Arc::new(LearnerReplica::new(Arc::clone(&publisher)));
            let server = Server::start_with_obs(
                learner.registry(),
                server_config,
                Some(sync),
                Arc::clone(&obs),
            )?;
            println!(
                "listening on {} (model v{}, role learner)",
                server.local_addr(),
                learner.version()
            );

            let stream = SampleStream::generate(&StreamConfig {
                scenario: config.scenario.clone(),
                warmup_events: args.warmup,
                total_events: args.events,
                novel_every: args.novel_every.max(1),
                seed: args.seed,
            })?;
            let delta_hist = obs.histogram(
                "online_delta_bytes",
                "Encoded size of published checkpoint deltas in bytes.",
            );
            let mut increments = 0usize;
            for event in stream.events_from(learner.cursor()) {
                if let IngestOutcome::Increment(report) = learner.ingest(event)? {
                    increments += 1;
                    let delta_bytes = publisher.publish(learner.checkpoint())?;
                    delta_hist.record(delta_bytes as u64);
                    println!(
                        "increment v{}: learned class(es) {:?}, published a {} B delta",
                        report.version, report.classes, delta_bytes
                    );
                }
                if args.pace_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(args.pace_ms));
                }
            }
            println!(
                "stream done: {} events, {} increment(s), model v{}",
                args.events,
                increments,
                learner.version()
            );
            server.wait();
        }
    }
    println!("drained and stopped.");
    Ok(())
}
