//! Dynamic fleet membership: the live, mutable set of backends.
//!
//! The router used to be born with a fixed `Vec<Backend>`; elasticity
//! replaces that with a [`Membership`] the wire can mutate while
//! dispatch keeps running. Two invariants hold at all times:
//!
//! * **Ids are never reused.** Every join draws from a monotonic
//!   counter, so a replica that leaves and rejoins gets a fresh id and
//!   fresh metric series — counters from its previous life are never
//!   silently resumed, and an id observed in a status row always means
//!   the same incarnation.
//! * **An address registers once.** Joining an address that is already
//!   a member returns the existing backend instead of a duplicate, so a
//!   replica retrying its `join` (after a timeout it could not
//!   distinguish from a failure) cannot double itself into dispatch.
//!
//! Dispatch, sync and stats all work on [`Membership::snapshot`] — an
//! `Arc` clone of the current set. A concurrent `leave` does not tear
//! backends out from under an in-flight request; the removed backend
//! simply stops appearing in later snapshots.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use ncl_obs::{Counter, Registry};

use crate::backend::Backend;
use crate::faults::FaultPlan;

/// The mutable backend set (see the module docs).
pub struct Membership {
    backends: RwLock<Vec<Arc<Backend>>>,
    next_id: AtomicUsize,
    timeout: Duration,
    faults: Option<Arc<FaultPlan>>,
    joins: Arc<Counter>,
    leaves: Arc<Counter>,
}

impl Membership {
    /// Wraps the fleet the router started with. `timeout` is the
    /// round-trip cap given to backends created by later joins; a fault
    /// plan, if armed, is threaded under them too.
    #[must_use]
    pub fn new(
        initial: Vec<Arc<Backend>>,
        timeout: Duration,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let next_id = initial.iter().map(|b| b.id + 1).max().unwrap_or(0);
        Membership {
            backends: RwLock::new(initial),
            next_id: AtomicUsize::new(next_id),
            timeout,
            faults,
            joins: Arc::new(Counter::new()),
            leaves: Arc::new(Counter::new()),
        }
    }

    /// Exposes the membership counters in `registry` (shared handles).
    pub fn register_into(&self, registry: &Registry) {
        let _ = registry.adopt_counter(
            "router_membership_joins_total",
            &[],
            "Backends added to the live fleet via the join op.",
            Arc::clone(&self.joins),
        );
        let _ = registry.adopt_counter(
            "router_membership_leaves_total",
            &[],
            "Backends removed from the live fleet via the leave op.",
            Arc::clone(&self.leaves),
        );
    }

    /// The current backend set (an `Arc` snapshot: stable for the
    /// caller, mutable for everyone else).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Arc<Backend>> {
        self.backends
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Backends currently registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backends
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the fleet is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `addr` to the fleet under a fresh id, registering its
    /// metric series into `obs`. Idempotent: if the address is already
    /// a member, the existing backend is returned and the second
    /// element is `false`.
    pub fn join(&self, addr: SocketAddr, obs: &Registry) -> (Arc<Backend>, bool) {
        let mut backends = self
            .backends
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(existing) = backends.iter().find(|b| b.addr == addr) {
            return (Arc::clone(existing), false);
        }
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        let backend = Arc::new(Backend::with_timeout(id, addr, self.timeout));
        if let Some(plan) = &self.faults {
            backend.arm_faults(Arc::clone(plan));
        }
        backend.register_into(obs);
        backends.push(Arc::clone(&backend));
        self.joins.inc();
        (backend, true)
    }

    /// Removes the backend with `id` from the fleet, returning it (so
    /// the caller can report its final status). In-flight requests that
    /// snapshotted it earlier finish undisturbed.
    pub fn leave(&self, id: usize) -> Option<Arc<Backend>> {
        let mut backends = self
            .backends
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let position = backends.iter().position(|b| b.id == id)?;
        let removed = backends.remove(position);
        self.leaves.inc();
        Some(removed)
    }

    /// Join count since startup.
    #[must_use]
    pub fn joins(&self) -> u64 {
        self.joins.get()
    }

    /// Leave count since startup.
    #[must_use]
    pub fn leaves(&self) -> u64 {
        self.leaves.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn joins_draw_fresh_ids_and_dedupe_addresses() {
        let obs = Registry::new();
        let initial = vec![Arc::new(Backend::new(0, addr(9001)))];
        let membership = Membership::new(initial, Duration::from_secs(1), None);

        let (joined, fresh) = membership.join(addr(9002), &obs);
        assert!(fresh);
        assert_eq!(joined.id, 1);

        // Rejoining the same address is idempotent.
        let (again, fresh) = membership.join(addr(9002), &obs);
        assert!(!fresh);
        assert_eq!(again.id, 1);
        assert_eq!(membership.len(), 2);
        assert_eq!(membership.joins(), 1);

        // Leave + rejoin: the id is never reused.
        assert!(membership.leave(1).is_some());
        assert!(membership.leave(1).is_none(), "double leave is a no-op");
        assert_eq!(membership.leaves(), 1);
        let (rejoined, fresh) = membership.join(addr(9002), &obs);
        assert!(fresh);
        assert_eq!(rejoined.id, 2, "a rejoin is a new incarnation");
        let ids: Vec<usize> = membership.snapshot().iter().map(|b| b.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn snapshots_are_stable_across_concurrent_leaves() {
        let obs = Registry::new();
        let membership = Membership::new(Vec::new(), Duration::from_secs(1), None);
        let (backend, _) = membership.join(addr(9003), &obs);
        let snapshot = membership.snapshot();
        membership.leave(backend.id);
        // The snapshot still holds the removed backend; new snapshots
        // do not.
        assert_eq!(snapshot.len(), 1);
        assert!(membership.snapshot().is_empty());
        assert!(membership.is_empty());
    }
}
