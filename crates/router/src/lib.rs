//! **ncl-router** — a sharded serving fleet for Replay4NCL models.
//!
//! One learner replica keeps learning from the stream; N follower
//! replicas serve the same model. The router fronts them all on the
//! existing NDJSON-over-TCP protocol, so clients see one address and
//! one monotonic `model_version`:
//!
//! ```text
//!              ┌────────────┐   predict    ┌──────────────────┐
//!   clients ──▶│ ncl-router │─────────────▶│ replica 0 learner │──┐
//!              │  dispatch  │─────────────▶│ replica 1 follower│  │ delta
//!              │  + sync    │─────────────▶│ replica 2 follower│◀─┘ (KB)
//!              └────────────┘   health/    └──────────────────┘
//!                               delta relay
//! ```
//!
//! * [`backend::Backend`] — one replica as the router sees it: a pooled
//!   NDJSON connection, health state, per-replica counters.
//! * [`router::Router`] — the front server: least-loaded (or
//!   consistent-hash) predict dispatch with failover, aggregate stats.
//! * [`sync`] — the replication loop: after each learner increment the
//!   router pulls the published [`ncl_online::CheckpointDelta`] and
//!   pushes it to every follower that is behind; any mismatch falls
//!   back to a full checkpoint. Followers apply bit-identically (the
//!   delta's `target_crc` guarantees it) and hot-swap at the learner's
//!   exact version.
//! * [`replica`] — the [`ncl_serve::ReplicaSync`] implementations the
//!   `ncl-replica` binary mounts: [`replica::LearnerReplica`] (publishes
//!   deltas), [`replica::FollowerReplica`] (applies them), and
//!   [`replica::ElasticReplica`] (a follower the router can promote to
//!   learner over the wire).
//! * [`membership`] — the live backend set behind the `join` / `leave`
//!   / `members` wire ops: replicas can enter and exit a running fleet.
//! * [`faults`] — a deterministic, seeded fault-injection plan threaded
//!   under every backend transport; the chaos suite replays the exact
//!   same failure schedule on every run.
//!
//! The fleet is **elastic**: membership changes over the wire, a
//! sustained learner outage triggers promotion of the most caught-up
//! follower under a bumped fleet epoch (see [`sync`]), and a returning
//! deposed learner is demoted instead of split-braining.
//!
//! The `ncl-router` and `ncl-replica` binaries wrap this into
//! processes; `ncl-router-bench` measures routing overhead, delta size
//! vs full checkpoints, and propagation latency into
//! `BENCH_router.json`; `ncl-fleet-bench` measures failover and rejoin
//! catch-up into `BENCH_fleet.json`.

pub mod backend;
pub mod faults;
pub mod membership;
pub mod replica;
pub mod router;
pub mod sync;

pub use backend::Backend;
pub use faults::{FaultAction, FaultPlan, FaultRule};
pub use membership::Membership;
pub use replica::{ElasticReplica, FollowerReplica, LearnerReplica};
pub use router::{DispatchPolicy, Router, RouterConfig};
pub use sync::SyncStats;
