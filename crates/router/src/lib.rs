//! **ncl-router** — a sharded serving fleet for Replay4NCL models.
//!
//! One learner replica keeps learning from the stream; N follower
//! replicas serve the same model. The router fronts them all on the
//! existing NDJSON-over-TCP protocol, so clients see one address and
//! one monotonic `model_version`:
//!
//! ```text
//!              ┌────────────┐   predict    ┌──────────────────┐
//!   clients ──▶│ ncl-router │─────────────▶│ replica 0 learner │──┐
//!              │  dispatch  │─────────────▶│ replica 1 follower│  │ delta
//!              │  + sync    │─────────────▶│ replica 2 follower│◀─┘ (KB)
//!              └────────────┘   health/    └──────────────────┘
//!                               delta relay
//! ```
//!
//! * [`backend::Backend`] — one replica as the router sees it: a pooled
//!   NDJSON connection, health state, per-replica counters.
//! * [`router::Router`] — the front server: least-loaded (or
//!   consistent-hash) predict dispatch with failover, aggregate stats.
//! * [`sync`] — the replication loop: after each learner increment the
//!   router pulls the published [`ncl_online::CheckpointDelta`] and
//!   pushes it to every follower that is behind; any mismatch falls
//!   back to a full checkpoint. Followers apply bit-identically (the
//!   delta's `target_crc` guarantees it) and hot-swap at the learner's
//!   exact version.
//! * [`replica`] — the [`ncl_serve::ReplicaSync`] implementations the
//!   `ncl-replica` binary mounts: [`replica::LearnerReplica`] (publishes
//!   deltas) and [`replica::FollowerReplica`] (applies them).
//!
//! The `ncl-router` and `ncl-replica` binaries wrap this into
//! processes; `ncl-router-bench` measures routing overhead, delta size
//! vs full checkpoints, and propagation latency into
//! `BENCH_router.json`.

pub mod backend;
pub mod replica;
pub mod router;
pub mod sync;

pub use backend::Backend;
pub use replica::{FollowerReplica, LearnerReplica};
pub use router::{DispatchPolicy, Router, RouterConfig};
pub use sync::SyncStats;
