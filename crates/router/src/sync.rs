//! The router-driven replication loop.
//!
//! Every tick: probe each replica's `health` (role, version), identify
//! the learner (the healthy replica reporting `role == "learner"`;
//! lowest id wins if several claim it), and for every healthy follower
//! that is behind, pull the delta covering *that follower's* version
//! from the learner and push it via `apply_delta`. Any step failing —
//! the learner no longer retains that delta, the follower's base
//! mismatches (its `target_crc` check makes wrong bytes impossible to
//! apply silently) — falls back to relaying the learner's full
//! checkpoint. Followers therefore converge to the learner's exact
//! bytes, normally paying only KB-scale deltas.
//!
//! The loop runs in the router because replicas stay deliberately
//! unaware of each other: a replica only answers its own wire ops,
//! which keeps fleet topology (who replicates from whom) in exactly one
//! place.
//!
//! The loop also owns **failover**: when no healthy current-epoch
//! learner answers for [`crate::router::RouterConfig::failover_ticks`]
//! consecutive ticks, the most caught-up healthy follower is promoted
//! under a bumped fleet epoch. Every apply and role change carries that
//! epoch; a deposed learner that comes back reports an older epoch and
//! is demoted instead of split-braining the fleet.

use std::sync::Arc;

use ncl_obs::{Counter, Registry};
use ncl_serve::protocol::object;
use serde_json::Value;

use crate::backend::Backend;
use crate::router::RouterShared;

/// Counters of the replication loop (reported under `"sync"` in the
/// router's `stats`/`health` responses and, via
/// [`SyncStats::register_into`], as `router_sync_*_total` series in
/// the router's metric exposition).
#[derive(Debug, Default)]
pub struct SyncStats {
    /// Deltas successfully applied to a follower.
    pub deltas_applied: Arc<Counter>,
    /// Full-checkpoint fallbacks successfully applied.
    pub full_syncs: Arc<Counter>,
    /// Propagation attempts that failed entirely (follower still
    /// behind; retried next tick).
    pub failures: Arc<Counter>,
    /// Passes of the loop (probe + propagate), successful or not.
    pub ticks: Arc<Counter>,
}

impl SyncStats {
    /// Exposes the loop counters in `registry`. Shared handles — the
    /// loop keeps incrementing the same atomics the exposition reads.
    pub fn register_into(&self, registry: &Registry) {
        let _ = registry.adopt_counter(
            "router_sync_deltas_applied_total",
            &[],
            "Checkpoint deltas the sync loop applied to followers.",
            Arc::clone(&self.deltas_applied),
        );
        let _ = registry.adopt_counter(
            "router_sync_full_syncs_total",
            &[],
            "Full-checkpoint fallbacks the sync loop relayed.",
            Arc::clone(&self.full_syncs),
        );
        let _ = registry.adopt_counter(
            "router_sync_failures_total",
            &[],
            "Propagation attempts that failed entirely (retried next tick).",
            Arc::clone(&self.failures),
        );
        let _ = registry.adopt_counter(
            "router_sync_ticks_total",
            &[],
            "Probe + propagate passes of the replication loop.",
            Arc::clone(&self.ticks),
        );
    }

    /// JSON snapshot for stats/health responses.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        object(vec![
            ("deltas_applied", Value::from(self.deltas_applied.get())),
            ("full_syncs", Value::from(self.full_syncs.get())),
            ("failures", Value::from(self.failures.get())),
            ("ticks", Value::from(self.ticks.get())),
        ])
    }
}

/// Extracts the `payload` hex string of an `{"ok":true}` response.
fn ok_payload(response: &str) -> Option<(Option<u64>, String)> {
    let value: Value = serde_json::from_str(response).ok()?;
    if value.get("ok").and_then(Value::as_bool) != Some(true) {
        return None;
    }
    let version = value.get("version").and_then(Value::as_u64);
    let payload = value.get("payload").and_then(Value::as_str)?.to_owned();
    Some((version, payload))
}

/// Whether an apply response succeeded (a stale-version refusal counts:
/// the follower is already at or past the target).
fn apply_succeeded(response: &str) -> bool {
    let Ok(value) = serde_json::from_str(response) else {
        return false;
    };
    let value: Value = value;
    if value.get("ok").and_then(Value::as_bool) == Some(true) {
        return true;
    }
    value
        .get("error")
        .and_then(Value::as_str)
        .is_some_and(|e| e.contains("stale version"))
}

/// Brings `follower` up to the learner's version: delta first, full
/// checkpoint on any failure. Applies carry the fleet `epoch`, so a
/// replica fenced at a newer epoch refuses them (split-brain safety).
/// Returns whether the follower advanced.
fn propagate(learner: &Backend, follower: &Backend, epoch: u64, stats: &SyncStats) -> bool {
    let follower_version = follower.model_version();
    // The delta path: ask the learner for exactly this follower's gap.
    if let Ok(response) = learner.request(&format!(
        r#"{{"op":"delta","base_version":{follower_version}}}"#
    )) {
        if let Some((_, payload)) = ok_payload(&response) {
            if let Ok(apply) = follower.request(&format!(
                r#"{{"op":"apply_delta","payload":"{payload}","epoch":{epoch}}}"#
            )) {
                if apply_succeeded(&apply) {
                    stats.deltas_applied.inc();
                    follower.probe_health();
                    return true;
                }
            }
        }
    }
    // Fallback: relay the full checkpoint.
    if let Ok(response) = learner.request(r#"{"op":"checkpoint"}"#) {
        if let Some((_, payload)) = ok_payload(&response) {
            if let Ok(apply) = follower.request(&format!(
                r#"{{"op":"apply_checkpoint","payload":"{payload}","epoch":{epoch}}}"#
            )) {
                if apply_succeeded(&apply) {
                    stats.full_syncs.inc();
                    follower.probe_health();
                    return true;
                }
            }
        }
    }
    stats.failures.inc();
    false
}

/// Whether a role-change response is a protocol-level success.
fn response_ok(response: &str) -> bool {
    serde_json::from_str(response)
        .ok()
        .and_then(|v| v.get("ok").and_then(Value::as_bool))
        == Some(true)
}

/// Stores + publishes the fleet epoch.
fn set_epoch(shared: &RouterShared, epoch: u64) {
    shared
        .epoch
        .store(epoch, std::sync::atomic::Ordering::Release);
    shared.epoch_gauge.set(epoch as i64);
}

/// Steps a stale or duplicate learner down to follower under `epoch`.
fn demote(backend: &Backend, epoch: u64, shared: &RouterShared) {
    if let Ok(response) = backend.request(&format!(r#"{{"op":"demote","epoch":{epoch}}}"#)) {
        if response_ok(&response) {
            shared.demotions.inc();
            backend.probe_health();
        }
    }
}

/// One pass of the loop: probe everyone, elect/fence the learner,
/// promote on a sustained learner outage, then propagate to laggards.
pub(crate) fn sync_once(shared: &RouterShared) {
    use std::sync::atomic::Ordering;

    shared.sync.ticks.inc();
    let backends = shared.membership.snapshot();
    for backend in &backends {
        backend.probe_health();
    }

    // Adopt the highest epoch any healthy replica has observed — the
    // router may have restarted with an older view than the fleet.
    let mut fleet_epoch = shared.epoch.load(Ordering::Acquire);
    for backend in &backends {
        if backend.is_healthy() {
            fleet_epoch = fleet_epoch.max(backend.epoch());
        }
    }
    set_epoch(shared, fleet_epoch);

    // Learner election: among healthy replicas claiming the role at the
    // current epoch, the lowest id wins. A learner fenced at an older
    // epoch is a returning deposed learner — demote it instead of
    // letting it split-brain; a duplicate current-epoch claim steps
    // down too.
    let mut learner: Option<&Arc<Backend>> = None;
    for backend in &backends {
        if !backend.is_healthy() || backend.role() != "learner" {
            continue;
        }
        if backend.epoch() < fleet_epoch || learner.is_some() {
            demote(backend, fleet_epoch, shared);
        } else {
            learner = Some(backend);
        }
    }

    match learner {
        Some(learner) => {
            shared.learner_down_ticks.store(0, Ordering::Release);
            let learner_version = learner.model_version();
            let tracer = shared.obs.tracer();
            for follower in &backends {
                if follower.id == learner.id
                    || !follower.is_healthy()
                    || follower.model_version() >= learner_version
                {
                    continue;
                }
                // Each push is its own single-span router-local trace;
                // the tail sampler keeps the slow ones, so a stalling
                // propagation path shows up in the `traces` op.
                let push = tracer.new_trace();
                let _push_span = tracer.start_span(&push, "sync_push");
                propagate(learner, follower, fleet_epoch, &shared.sync);
            }
        }
        None => {
            // No reachable current-epoch learner. After enough
            // consecutive learner-less ticks, promote the most
            // caught-up healthy follower under a bumped epoch; its
            // resumed publishing is deterministic from its last applied
            // checkpoint, so survivors converge bit-identically.
            let down = shared.learner_down_ticks.fetch_add(1, Ordering::AcqRel) + 1;
            if down < shared.failover_ticks {
                return;
            }
            let candidate = backends
                .iter()
                .filter(|b| b.is_healthy() && b.role() == "follower")
                .max_by_key(|b| (b.model_version(), std::cmp::Reverse(b.id)));
            let Some(candidate) = candidate else { return };
            let next_epoch = fleet_epoch + 1;
            if let Ok(response) =
                candidate.request(&format!(r#"{{"op":"promote","epoch":{next_epoch}}}"#))
            {
                if response_ok(&response) {
                    shared.promotions.inc();
                    set_epoch(shared, next_epoch);
                    shared.learner_down_ticks.store(0, Ordering::Release);
                    candidate.probe_health();
                }
            }
        }
    }
}
