//! The router-driven replication loop.
//!
//! Every tick: probe each replica's `health` (role, version), identify
//! the learner (the healthy replica reporting `role == "learner"`;
//! lowest id wins if several claim it), and for every healthy follower
//! that is behind, pull the delta covering *that follower's* version
//! from the learner and push it via `apply_delta`. Any step failing —
//! the learner no longer retains that delta, the follower's base
//! mismatches (its `target_crc` check makes wrong bytes impossible to
//! apply silently) — falls back to relaying the learner's full
//! checkpoint. Followers therefore converge to the learner's exact
//! bytes, normally paying only KB-scale deltas.
//!
//! The loop runs in the router because replicas stay deliberately
//! unaware of each other: a replica only answers its own wire ops,
//! which keeps fleet topology (who replicates from whom) in exactly one
//! place.

use std::sync::Arc;

use ncl_obs::{Counter, Registry};
use ncl_serve::protocol::object;
use serde_json::Value;

use crate::backend::Backend;
use crate::router::RouterShared;

/// Counters of the replication loop (reported under `"sync"` in the
/// router's `stats`/`health` responses and, via
/// [`SyncStats::register_into`], as `router_sync_*_total` series in
/// the router's metric exposition).
#[derive(Debug, Default)]
pub struct SyncStats {
    /// Deltas successfully applied to a follower.
    pub deltas_applied: Arc<Counter>,
    /// Full-checkpoint fallbacks successfully applied.
    pub full_syncs: Arc<Counter>,
    /// Propagation attempts that failed entirely (follower still
    /// behind; retried next tick).
    pub failures: Arc<Counter>,
    /// Passes of the loop (probe + propagate), successful or not.
    pub ticks: Arc<Counter>,
}

impl SyncStats {
    /// Exposes the loop counters in `registry`. Shared handles — the
    /// loop keeps incrementing the same atomics the exposition reads.
    pub fn register_into(&self, registry: &Registry) {
        let _ = registry.adopt_counter(
            "router_sync_deltas_applied_total",
            &[],
            "Checkpoint deltas the sync loop applied to followers.",
            Arc::clone(&self.deltas_applied),
        );
        let _ = registry.adopt_counter(
            "router_sync_full_syncs_total",
            &[],
            "Full-checkpoint fallbacks the sync loop relayed.",
            Arc::clone(&self.full_syncs),
        );
        let _ = registry.adopt_counter(
            "router_sync_failures_total",
            &[],
            "Propagation attempts that failed entirely (retried next tick).",
            Arc::clone(&self.failures),
        );
        let _ = registry.adopt_counter(
            "router_sync_ticks_total",
            &[],
            "Probe + propagate passes of the replication loop.",
            Arc::clone(&self.ticks),
        );
    }

    /// JSON snapshot for stats/health responses.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        object(vec![
            ("deltas_applied", Value::from(self.deltas_applied.get())),
            ("full_syncs", Value::from(self.full_syncs.get())),
            ("failures", Value::from(self.failures.get())),
            ("ticks", Value::from(self.ticks.get())),
        ])
    }
}

/// Extracts the `payload` hex string of an `{"ok":true}` response.
fn ok_payload(response: &str) -> Option<(Option<u64>, String)> {
    let value: Value = serde_json::from_str(response).ok()?;
    if value.get("ok").and_then(Value::as_bool) != Some(true) {
        return None;
    }
    let version = value.get("version").and_then(Value::as_u64);
    let payload = value.get("payload").and_then(Value::as_str)?.to_owned();
    Some((version, payload))
}

/// Whether an apply response succeeded (a stale-version refusal counts:
/// the follower is already at or past the target).
fn apply_succeeded(response: &str) -> bool {
    let Ok(value) = serde_json::from_str(response) else {
        return false;
    };
    let value: Value = value;
    if value.get("ok").and_then(Value::as_bool) == Some(true) {
        return true;
    }
    value
        .get("error")
        .and_then(Value::as_str)
        .is_some_and(|e| e.contains("stale version"))
}

/// Brings `follower` up to the learner's version: delta first, full
/// checkpoint on any failure. Returns whether the follower advanced.
fn propagate(learner: &Backend, follower: &Backend, stats: &SyncStats) -> bool {
    let follower_version = follower.model_version();
    // The delta path: ask the learner for exactly this follower's gap.
    if let Ok(response) = learner.request(&format!(
        r#"{{"op":"delta","base_version":{follower_version}}}"#
    )) {
        if let Some((_, payload)) = ok_payload(&response) {
            if let Ok(apply) =
                follower.request(&format!(r#"{{"op":"apply_delta","payload":"{payload}"}}"#))
            {
                if apply_succeeded(&apply) {
                    stats.deltas_applied.inc();
                    follower.probe_health();
                    return true;
                }
            }
        }
    }
    // Fallback: relay the full checkpoint.
    if let Ok(response) = learner.request(r#"{"op":"checkpoint"}"#) {
        if let Some((_, payload)) = ok_payload(&response) {
            if let Ok(apply) = follower.request(&format!(
                r#"{{"op":"apply_checkpoint","payload":"{payload}"}}"#
            )) {
                if apply_succeeded(&apply) {
                    stats.full_syncs.inc();
                    follower.probe_health();
                    return true;
                }
            }
        }
    }
    stats.failures.inc();
    false
}

/// One pass of the loop: probe everyone, then propagate to laggards.
pub(crate) fn sync_once(shared: &RouterShared) {
    shared.sync.ticks.inc();
    for backend in &shared.backends {
        backend.probe_health();
    }
    let learner: Option<&Arc<Backend>> = shared
        .backends
        .iter()
        .filter(|b| b.is_healthy() && b.role() == "learner")
        .min_by_key(|b| b.id);
    let Some(learner) = learner else { return };
    let learner_version = learner.model_version();
    for follower in &shared.backends {
        if follower.id == learner.id
            || !follower.is_healthy()
            || follower.model_version() >= learner_version
        {
            continue;
        }
        propagate(learner, follower, &shared.sync);
    }
}
