//! The router front end: one address, N replicas behind it.
//!
//! Clients speak the ordinary serving protocol. `predict` is relayed to
//! a replica chosen by the dispatch policy, with failover: a transport
//! failure marks the replica unhealthy and retries the remaining
//! healthy ones, so killing a replica mid-load costs zero requests
//! (predicts are stateless and idempotent). A protocol-level error from
//! a replica is *not* retried — that is the fleet's answer. `stats`
//! merges a replica's model block with router-level counters and the
//! per-replica table; `health` reports the fleet; `swap` is refused
//! (models change by replication, not by client pushes).

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ncl_obs::{exposition, Counter, Gauge, NodeFragment, Registry as ObsRegistry, TraceContext};
use ncl_serve::error::ServeError;
use ncl_serve::protocol::{self, object};
use serde_json::Value;

use crate::backend::Backend;
use crate::faults::FaultPlan;
use crate::membership::Membership;
use crate::sync::{sync_once, SyncStats};

/// How `predict` picks a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// The healthy replica with the fewest in-flight relays (ties go to
    /// the lowest id). Best latency under mixed load.
    #[default]
    LeastLoaded,
    /// Rendezvous (highest-random-weight) hash of the request `id`, so
    /// a given id sticks to a replica while the fleet is stable. Falls
    /// back to least-loaded for id-less requests.
    ConsistentHash,
}

/// Router tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Predict dispatch policy.
    pub policy: DispatchPolicy,
    /// Period of the health-probe + delta-propagation loop.
    pub sync_interval: Duration,
    /// Consecutive sync ticks without a reachable current-epoch learner
    /// before the router promotes the most caught-up healthy follower.
    pub failover_ticks: u32,
    /// Round-trip cap given to backends created by later `join` ops
    /// (the initial fleet's backends keep whatever they were built
    /// with).
    pub backend_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            port: 0,
            policy: DispatchPolicy::LeastLoaded,
            sync_interval: Duration::from_millis(150),
            failover_ticks: 5,
            backend_timeout: Backend::DEFAULT_TIMEOUT,
        }
    }
}

pub(crate) struct RouterShared {
    pub(crate) membership: Membership,
    pub(crate) policy: DispatchPolicy,
    pub(crate) stopping: AtomicBool,
    pub(crate) addr: SocketAddr,
    pub(crate) requests_ok: Arc<Counter>,
    pub(crate) requests_failed: Arc<Counter>,
    pub(crate) failovers: Arc<Counter>,
    pub(crate) promotions: Arc<Counter>,
    pub(crate) demotions: Arc<Counter>,
    /// Highest fleet epoch observed or minted; mirrored on the
    /// `router_epoch` gauge.
    pub(crate) epoch: AtomicU64,
    pub(crate) epoch_gauge: Arc<Gauge>,
    pub(crate) failover_ticks: u32,
    /// Consecutive sync ticks without a current-epoch learner.
    pub(crate) learner_down_ticks: AtomicU32,
    pub(crate) sync: SyncStats,
    pub(crate) obs: Arc<ObsRegistry>,
}

/// A running router.
pub struct Router {
    shared: Arc<RouterShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    sync_thread: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Binds 127.0.0.1 and starts fronting `backends`.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start(backends: Vec<Arc<Backend>>, config: RouterConfig) -> std::io::Result<Router> {
        Router::start_with_faults(backends, config, None)
    }

    /// [`Router::start`] with a fault plan threaded under every backend
    /// round trip — the entry point of the deterministic chaos harness
    /// (see [`crate::faults`]). Backends added later by `join` inherit
    /// the plan.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn start_with_faults(
        backends: Vec<Arc<Backend>>,
        config: RouterConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Router> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, config.port))?;
        let addr = listener.local_addr()?;
        let obs = Arc::new(ObsRegistry::new());
        // Same seeding rule as the replicas: port-derived, so the
        // router's span ids never collide with a replica's when
        // fragments are stitched.
        obs.tracer().set_seed(u64::from(addr.port()));
        let sync = SyncStats::default();
        sync.register_into(&obs);
        for backend in &backends {
            if let Some(plan) = &faults {
                backend.arm_faults(Arc::clone(plan));
            }
            backend.register_into(&obs);
        }
        let membership = Membership::new(backends, config.backend_timeout, faults);
        membership.register_into(&obs);
        let shared = Arc::new(RouterShared {
            membership,
            policy: config.policy,
            stopping: AtomicBool::new(false),
            addr,
            requests_ok: obs.counter(
                "router_requests_ok_total",
                "Client requests the router answered.",
            ),
            requests_failed: obs.counter(
                "router_requests_failed_total",
                "Client requests the router could not answer.",
            ),
            failovers: obs.counter(
                "router_failovers_total",
                "Transport failures while relaying predicts (each fails over to the next \
                 candidate while one remains).",
            ),
            promotions: obs.counter(
                "router_promotions_total",
                "Followers the router promoted to learner after a learner outage.",
            ),
            demotions: obs.counter(
                "router_demotions_total",
                "Learners the router demoted to follower (returning deposed learners and \
                 duplicate claims).",
            ),
            epoch: AtomicU64::new(0),
            epoch_gauge: obs.gauge(
                "router_epoch",
                "The fleet epoch: bumped on every promotion; writes stamped with an older \
                 epoch are fenced off by replicas.",
            ),
            failover_ticks: config.failover_ticks.max(1),
            learner_down_ticks: AtomicU32::new(0),
            sync,
            obs,
        });
        // Probe the fleet once before accepting, so the first client
        // request already sees health/role/version state.
        sync_once(&shared);
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("ncl-router-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        let sync_shared = Arc::clone(&shared);
        let interval = config.sync_interval;
        let sync_thread = std::thread::Builder::new()
            .name("ncl-router-sync".into())
            .spawn(move || {
                while !sync_shared.stopping.load(Ordering::Acquire) {
                    sync_once(&sync_shared);
                    // Sleep in short slices so shutdown is never
                    // delayed by a long sync interval.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !sync_shared.stopping.load(Ordering::Acquire) {
                        let slice = remaining.min(Duration::from_millis(25));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })?;
        Ok(Router {
            shared,
            accept_thread: Some(accept_thread),
            sync_thread: Some(sync_thread),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A snapshot of the live fleet, for inspection (membership can
    /// change under a running router; the snapshot cannot).
    #[must_use]
    pub fn backends(&self) -> Vec<Arc<Backend>> {
        self.shared.membership.snapshot()
    }

    /// The fleet epoch the router currently enforces.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Followers promoted to learner by the failover logic so far.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.shared.promotions.get()
    }

    /// Learners demoted to follower by the split-brain fence so far.
    #[must_use]
    pub fn demotions(&self) -> u64 {
        self.shared.demotions.get()
    }

    /// Replication-loop counters.
    #[must_use]
    pub fn sync_stats(&self) -> &SyncStats {
        &self.shared.sync
    }

    /// The router's own metric registry (dispatch, failover and
    /// sync-loop series; the `metrics` op merges replica scrapes in).
    #[must_use]
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.shared.obs
    }

    /// Runs one health-probe + delta-propagation pass right now (the
    /// background loop keeps running on its own period).
    pub fn sync_now(&self) {
        sync_once(&self.shared);
    }

    /// Blocks until the router stops (a client sent `shutdown`, or
    /// another thread called [`Router::shutdown`]).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.sync_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting and joins every thread. Replicas stay up.
    pub fn shutdown(self) {
        request_stop(&self.shared);
        self.wait();
    }
}

fn request_stop(shared: &RouterShared) {
    if shared.stopping.swap(true, Ordering::AcqRel) {
        return;
    }
    let _ = TcpStream::connect(shared.addr);
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("ncl-router-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &conn_shared);
            })
        {
            connections.push(handle);
        }
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Same bound as the serve layer: a client cannot grow router memory
/// without sending a newline.
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

fn handle_connection(stream: TcpStream, shared: &Arc<RouterShared>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let mut read_half = stream.try_clone()?;
    let mut writer = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match read_half.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line_bytes: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line_bytes);
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        continue;
                    }
                    let (response, stop) = handle_line(trimmed, shared);
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                    if stop {
                        return Ok(());
                    }
                }
                if pending.len() > MAX_LINE_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "request line exceeds the size limit",
                    ));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping.load(Ordering::Acquire) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn error_line(id: Option<u64>, error: &ServeError) -> String {
    ncl_serve::protocol::error_response(id, error)
}

fn handle_line(line: &str, shared: &RouterShared) -> (String, bool) {
    let parsed: Result<Value, _> = serde_json::from_str(line);
    let Ok(request) = parsed else {
        shared.requests_failed.inc();
        let e = ServeError::InvalidRequest {
            detail: "bad JSON".into(),
        };
        return (error_line(None, &e), false);
    };
    let op = request.get("op").and_then(Value::as_str).unwrap_or("");
    let response = match op {
        "predict" => relay_predict(line, &request, shared),
        "stats" => stats_response(shared),
        "health" => health_response(shared),
        "metrics" => metrics_response(shared),
        "traces" => traces_response(&request, shared),
        "join" => join_response(&request, shared),
        "leave" => leave_response(&request, shared),
        "members" => members_response(shared),
        // Bootstrap/catch-up fetches from joining replicas: relayed to
        // the current learner, so a cold follower needs to know one
        // address (the router's), not the fleet topology.
        "checkpoint" | "delta" => relay_to_learner(op, line, shared),
        "ping" => object(vec![
            ("ok", Value::from(true)),
            ("op", Value::from("pong")),
            ("router", Value::from(true)),
        ])
        .to_json(),
        "shutdown" => {
            request_stop(shared);
            object(vec![
                ("ok", Value::from(true)),
                ("op", Value::from("shutdown")),
            ])
            .to_json()
        }
        "swap" => error_line(
            None,
            &ServeError::InvalidRequest {
                detail: "the router does not swap models; the fleet replicates the learner's \
                         increments"
                    .into(),
            },
        ),
        other => error_line(
            None,
            &ServeError::InvalidRequest {
                detail: format!("unknown router op {other:?}"),
            },
        ),
    };
    let stop = shared.stopping.load(Ordering::Acquire);
    (response, stop)
}

/// FNV-1a over the request id + replica id: the rendezvous-hash weight.
fn rendezvous_weight(id: u64, backend_id: usize) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in id
        .to_le_bytes()
        .iter()
        .chain(&(backend_id as u64).to_le_bytes())
    {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Healthy replicas in dispatch-preference order for this request.
///
/// Least-loaded dispatch prefers the highest reported model version
/// first: during a promotion or a catch-up window the fleet briefly
/// serves mixed versions, and version preference keeps the client's
/// observed `model_version` monotonic. In steady state every replica
/// reports the same version and the order degenerates to pure
/// least-loaded.
fn dispatch_order(shared: &RouterShared, request: &Value) -> Vec<Arc<Backend>> {
    let mut healthy: Vec<Arc<Backend>> = shared
        .membership
        .snapshot()
        .into_iter()
        .filter(|b| b.is_healthy())
        .collect();
    let key = request.get("id").and_then(Value::as_u64);
    match (shared.policy, key) {
        (DispatchPolicy::ConsistentHash, Some(id)) => {
            healthy.sort_by_key(|b| std::cmp::Reverse(rendezvous_weight(id, b.id)));
        }
        _ => {
            healthy.sort_by_key(|b| (std::cmp::Reverse(b.model_version()), b.inflight(), b.id));
        }
    }
    healthy
}

/// Extracts `"model_version":N` from a reply line without a full JSON
/// parse — the dispatch hot path only needs this one number.
fn version_of(line: &str) -> Option<u64> {
    const KEY: &str = "\"model_version\":";
    let rest = line[line.find(KEY)? + KEY.len()..].trim_start();
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    rest[..digits].parse().ok()
}

/// Relays a predict line, failing over across healthy replicas on
/// transport errors only.
///
/// A request carrying a trace context gets a `route` span covering the
/// whole relay (with the client's context as parent — for a loadgen-
/// originated trace that makes `route` the trace root) and one
/// `dispatch` child per attempt; the relayed line is re-stamped with
/// the dispatch span's context so the replica's `accept` span parents
/// under it. A failed attempt re-labels its span `failover`.
fn relay_predict(line: &str, request: &Value, shared: &RouterShared) -> String {
    let id = request.get("id").and_then(Value::as_u64);
    let trace: Option<TraceContext> = match protocol::parse_trace(request) {
        Ok(trace) => trace,
        Err(e) => {
            shared.requests_failed.inc();
            return error_line(id, &e);
        }
    };
    let route = trace
        .as_ref()
        .map(|ctx| shared.obs.tracer().start_span(ctx, "route"));
    let order = dispatch_order(shared, request);
    if order.is_empty() {
        shared.requests_failed.inc();
        return error_line(
            id,
            &ServeError::Replication {
                detail: "no healthy replica".into(),
            },
        );
    }
    for backend in &order {
        let dispatch = route
            .as_ref()
            .map(|route| shared.obs.tracer().start_span(&route.context(), "dispatch"));
        let relayed = match &dispatch {
            Some(span) => protocol::traced_line(line, &span.context()),
            None => line.to_owned(),
        };
        match backend.request(&relayed) {
            Ok(response) => {
                // Fold the reply's model_version into the backend's
                // cache *before* the client sees the reply: the
                // client's next request then dispatches against a
                // cache that already knows this version, so version-
                // preferring order keeps its observations monotonic
                // even inside the probe interval.
                if let Some(version) = version_of(&response) {
                    backend.observe_version(version);
                }
                shared.requests_ok.inc();
                return response;
            }
            Err(_) => {
                // backend.request already marked it unhealthy; try the
                // next replica — the predict never reached a model.
                if let Some(mut span) = dispatch {
                    span.set_stage("failover");
                }
                shared.failovers.inc();
            }
        }
    }
    shared.requests_failed.inc();
    error_line(
        id,
        &ServeError::Replication {
            detail: format!("all {} dispatch candidates failed", order.len()),
        },
    )
}

/// Adds `addr` to the live fleet (idempotent per address) and probes it
/// immediately so it can enter dispatch without waiting a sync tick.
fn join_response(request: &Value, shared: &RouterShared) -> String {
    let Some(addr) = request.get("addr").and_then(Value::as_str) else {
        shared.requests_failed.inc();
        return error_line(
            None,
            &ServeError::InvalidRequest {
                detail: "join needs an \"addr\" string".into(),
            },
        );
    };
    let Ok(addr) = addr.parse::<SocketAddr>() else {
        shared.requests_failed.inc();
        return error_line(
            None,
            &ServeError::InvalidRequest {
                detail: format!("join addr {addr:?} is not a socket address"),
            },
        );
    };
    let (backend, fresh) = shared.membership.join(addr, &shared.obs);
    backend.probe_health();
    shared.requests_ok.inc();
    object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("join")),
        ("id", Value::from(backend.id as u64)),
        ("addr", Value::from(addr.to_string())),
        ("healthy", Value::from(backend.is_healthy())),
        ("already_member", Value::from(!fresh)),
        ("epoch", Value::from(shared.epoch.load(Ordering::Acquire))),
    ])
    .to_json()
}

/// Removes backend `id` from the live fleet.
fn leave_response(request: &Value, shared: &RouterShared) -> String {
    let Some(id) = request.get("id").and_then(Value::as_u64) else {
        shared.requests_failed.inc();
        return error_line(
            None,
            &ServeError::InvalidRequest {
                detail: "leave needs a numeric \"id\"".into(),
            },
        );
    };
    match shared.membership.leave(id as usize) {
        Some(removed) => {
            shared.requests_ok.inc();
            object(vec![
                ("ok", Value::from(true)),
                ("op", Value::from("leave")),
                ("id", Value::from(id)),
                ("addr", Value::from(removed.addr.to_string())),
            ])
            .to_json()
        }
        None => {
            shared.requests_failed.inc();
            error_line(
                None,
                &ServeError::InvalidRequest {
                    detail: format!("no backend with id {id}"),
                },
            )
        }
    }
}

/// The live fleet as status rows, plus the epoch clients should expect
/// on fenced ops.
fn members_response(shared: &RouterShared) -> String {
    shared.requests_ok.inc();
    object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("members")),
        ("epoch", Value::from(shared.epoch.load(Ordering::Acquire))),
        ("members", replicas_table(shared)),
    ])
    .to_json()
}

/// Relays a replication fetch (`checkpoint`/`delta`) to the current
/// healthy learner — the path a cold or lagging replica uses to
/// bootstrap through the router.
fn relay_to_learner(op: &str, line: &str, shared: &RouterShared) -> String {
    let backends = shared.membership.snapshot();
    let learner = backends
        .iter()
        .filter(|b| b.is_healthy() && b.role() == "learner")
        .min_by_key(|b| b.id);
    let Some(learner) = learner else {
        shared.requests_failed.inc();
        return error_line(
            None,
            &ServeError::Replication {
                detail: format!("no healthy learner to answer {op}"),
            },
        );
    };
    match learner.request(line) {
        Ok(response) => {
            shared.requests_ok.inc();
            response
        }
        Err(e) => {
            shared.requests_failed.inc();
            error_line(
                None,
                &ServeError::Replication {
                    detail: format!("the learner did not answer {op}: {e}"),
                },
            )
        }
    }
}

fn replicas_table(shared: &RouterShared) -> Value {
    shared
        .membership
        .snapshot()
        .iter()
        .map(|b| b.status())
        .collect()
}

fn stats_response(shared: &RouterShared) -> String {
    // Fan the stats probe out to every replica. The model block comes
    // from the first replica that answers (the fleet converges on the
    // learner's model, so any one is representative); a replica that
    // fails the probe still gets a row, marked unreachable with the
    // transport error — silence would read as "healthy, zero traffic".
    let mut model = Value::Null;
    let mut replicas: Vec<Value> = Vec::new();
    for backend in &shared.membership.snapshot() {
        let probe = backend.request(r#"{"op":"stats"}"#);
        let mut status = backend.status();
        match probe {
            Ok(response) => {
                if model.is_null() {
                    if let Ok(value) = serde_json::from_str(&response) {
                        if let Some(m) = value.get("model") {
                            model = m.clone();
                        }
                    }
                }
            }
            Err(e) => {
                if let Value::Object(ref mut row) = status {
                    row.insert("unreachable".to_owned(), Value::from(true));
                    row.insert("error".to_owned(), Value::from(e.to_string()));
                }
            }
        }
        replicas.push(status);
    }
    object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("stats")),
        ("model", model),
        (
            "serving",
            object(vec![
                ("requests_ok", Value::from(shared.requests_ok.get())),
                ("requests_failed", Value::from(shared.requests_failed.get())),
                ("failovers", Value::from(shared.failovers.get())),
                ("promotions", Value::from(shared.promotions.get())),
                ("demotions", Value::from(shared.demotions.get())),
                ("epoch", Value::from(shared.epoch.load(Ordering::Acquire))),
                ("joins", Value::from(shared.membership.joins())),
                ("leaves", Value::from(shared.membership.leaves())),
                ("routed", Value::from(true)),
            ]),
        ),
        ("replicas", Value::Array(replicas)),
        ("sync", shared.sync.snapshot()),
    ])
    .to_json()
}

/// The router's `metrics` op: its own registry (dispatch, failover,
/// sync-loop, per-backend counters) merged with every replica's
/// scraped exposition, each relabeled with `replica="<id>"`. A
/// `router_replica_up` gauge per replica records scrape reachability,
/// so an unreachable replica shows up as a 0 instead of vanishing.
fn metrics_response(shared: &RouterShared) -> String {
    let mut replica_sections: Vec<String> = Vec::new();
    for backend in &shared.membership.snapshot() {
        let scraped = backend
            .request(r#"{"op":"metrics"}"#)
            .ok()
            .and_then(|response| serde_json::from_str(&response).ok())
            .and_then(|value| {
                value
                    .get("exposition")
                    .and_then(Value::as_str)
                    .map(str::to_owned)
            });
        let up = scraped.is_some();
        if let Some(text) = scraped {
            replica_sections.push(exposition::relabel(
                &text,
                "replica",
                &backend.id.to_string(),
            ));
        }
        shared
            .obs
            .gauge_with(
                "router_replica_up",
                &[("replica", &backend.id.to_string())],
                "Whether the replica answered the last metrics scrape.",
            )
            .set(i64::from(up));
    }
    let mut sections = vec![shared.obs.render()];
    sections.extend(replica_sections);
    ncl_serve::protocol::metrics_response(&exposition::merge(&sections))
}

/// The router's `traces` op: fleet-wide trace assembly. The router's
/// own kept fragments (`route`/`dispatch`/`sync_push` spans) are
/// combined with every replica's fetched fragments and stitched by
/// trace id into unified trees — the traces analogue of how `metrics`
/// merges per-replica expositions. Filtering by `min_duration_us`
/// happens *after* stitching, against the end-to-end root duration:
/// a replica-local fragment can be fast while the trace is slow.
fn traces_response(request: &Value, shared: &RouterShared) -> String {
    let min_duration_us = request
        .get("min_duration_us")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let limit = request
        .get("limit")
        .and_then(Value::as_u64)
        .map_or(protocol::DEFAULT_TRACES_LIMIT, |l| l as usize)
        .max(1);
    // The kept stores are span-bounded, so fetching everything is
    // bounded too; stitching needs every fragment of a trace no matter
    // how fast the local piece was.
    let mut fragments: Vec<NodeFragment> = shared
        .obs
        .tracer()
        .recent(0, usize::MAX)
        .into_iter()
        .map(|fragment| NodeFragment {
            node: "router".to_owned(),
            trace_id: fragment.trace_id,
            spans: fragment.spans,
        })
        .collect();
    for backend in &shared.membership.snapshot() {
        let fetched = backend
            .request(r#"{"op":"traces","min_duration_us":0,"limit":4096}"#)
            .ok()
            .and_then(|response| serde_json::from_str(&response).ok())
            .map(|value| protocol::parse_traces_response(&value))
            .unwrap_or_default();
        let node = format!("replica-{}", backend.id);
        fragments.extend(fetched.into_iter().map(|fragment| NodeFragment {
            node: node.clone(),
            trace_id: fragment.trace_id,
            spans: fragment.spans,
        }));
    }
    let stitched: Vec<_> = ncl_obs::stitch(&fragments)
        .into_iter()
        .filter(|t| t.duration_us >= min_duration_us)
        .take(limit)
        .collect();
    shared.requests_ok.inc();
    protocol::stitched_traces_response(&stitched)
}

fn health_response(shared: &RouterShared) -> String {
    let backends = shared.membership.snapshot();
    let healthy = backends.iter().filter(|b| b.is_healthy()).count();
    object(vec![
        ("ok", Value::from(true)),
        ("op", Value::from("health")),
        ("role", Value::from("router")),
        ("epoch", Value::from(shared.epoch.load(Ordering::Acquire))),
        ("replicas_total", Value::from(backends.len() as u64)),
        ("replicas_healthy", Value::from(healthy as u64)),
        ("replicas", replicas_table(shared)),
        ("sync", shared.sync.snapshot()),
    ])
    .to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_of_scans_replies_without_parsing() {
        assert_eq!(
            version_of(r#"{"ok":true,"prediction":2,"model_version":17}"#),
            Some(17)
        );
        assert_eq!(
            version_of(r#"{"ok":true,"model_version": 3,"x":1}"#),
            Some(3)
        );
        assert_eq!(version_of(r#"{"ok":false,"error":"nope"}"#), None);
        assert_eq!(version_of(r#"{"model_version":}"#), None);
    }

    #[test]
    fn rendezvous_weights_are_stable_and_spread() {
        // Same (id, backend) always hashes the same.
        assert_eq!(rendezvous_weight(7, 1), rendezvous_weight(7, 1));
        // Different backends get different weights for the same id.
        assert_ne!(rendezvous_weight(7, 0), rendezvous_weight(7, 1));
        // Keys spread: over many ids, both of two backends win sometimes.
        let wins_0 = (0..64u64)
            .filter(|&id| rendezvous_weight(id, 0) > rendezvous_weight(id, 1))
            .count();
        assert!(wins_0 > 8 && wins_0 < 56, "degenerate spread: {wins_0}/64");
    }
}
