//! Deterministic fault injection for the fleet's wire paths.
//!
//! A [`FaultPlan`] sits under [`crate::backend::Backend::request`]: for
//! every outgoing op it decides — as a pure function of the plan seed,
//! the global op sequence number and the matching rule's index — whether
//! to inject a fault instead of (or around) the real round trip. The
//! same seed and the same op sequence therefore produce the same fault
//! schedule, which is what lets `tests/fleet_chaos.rs` assert exact
//! post-chaos state instead of "it usually survives".
//!
//! Four fault shapes cover the failure modes a TCP fleet actually has:
//!
//! * **Drop** — the connection dies before the request is written
//!   (surfaces as `ConnectionAborted`; models a crash or a RST).
//! * **Delay** — the round trip happens, late (models congestion; the
//!   caller's timeout may or may not fire).
//! * **BlackHole** — the request vanishes (surfaces as `TimedOut`
//!   without waiting out a real timeout; models a partition that
//!   swallows packets).
//! * **CloseMidWrite** — a real connection is opened, a prefix of the
//!   request line is written, then the socket is dropped (models a
//!   crash mid-send; exercises the replica's partial-line handling and
//!   the backend pool's never-reuse-after-error rule).
//!
//! Besides seeded rules, a plan carries runtime **partitions**: test
//! choreography calls [`FaultPlan::partition`] to make one replica
//! unreachable (every op drops) and [`FaultPlan::heal`] to bring it
//! back — the deterministic way to "kill" and "restart" a replica
//! without process management.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ncl_obs::Counter;

/// What an injected fault does to the op it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail immediately as if the connection died (`ConnectionAborted`).
    Drop,
    /// Sleep this long, then run the real round trip.
    Delay(Duration),
    /// Fail as a timeout without a real wait (`TimedOut`).
    BlackHole,
    /// Open a real connection, write a prefix of the line, drop it.
    CloseMidWrite,
}

/// One match-and-inject rule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Restrict to one backend id (`None` = every backend).
    pub replica: Option<usize>,
    /// Restrict to one wire op, e.g. `"predict"` (`None` = every op).
    pub op: Option<String>,
    /// First global op sequence number the rule applies to.
    pub from_seq: u64,
    /// First sequence number past the rule's window.
    pub until_seq: u64,
    /// Injection probability in `[0, 1]`, decided deterministically.
    pub probability: f64,
    /// The fault to inject on a hit.
    pub action: FaultAction,
}

impl FaultRule {
    /// A rule matching every op on every backend, forever.
    #[must_use]
    pub fn every(probability: f64, action: FaultAction) -> Self {
        FaultRule {
            replica: None,
            op: None,
            from_seq: 0,
            until_seq: u64::MAX,
            probability,
            action,
        }
    }

    /// Restricts the rule to one backend id.
    #[must_use]
    pub fn on_replica(mut self, id: usize) -> Self {
        self.replica = Some(id);
        self
    }

    /// Restricts the rule to one wire op.
    #[must_use]
    pub fn on_op(mut self, op: &str) -> Self {
        self.op = Some(op.to_owned());
        self
    }

    /// Restricts the rule to the sequence window `[from, until)`.
    #[must_use]
    pub fn in_window(mut self, from: u64, until: u64) -> Self {
        self.from_seq = from;
        self.until_seq = until;
        self
    }

    fn matches(&self, replica: usize, op: &str, seq: u64) -> bool {
        if seq < self.from_seq || seq >= self.until_seq {
            return false;
        }
        if self.replica.is_some_and(|r| r != replica) {
            return false;
        }
        self.op.as_deref().is_none_or(|o| o == op)
    }
}

/// A seeded, rule-based fault schedule (see the module docs).
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Global op sequence: every [`FaultPlan::decide`] call consumes
    /// one number, so the schedule is a function of call order alone.
    seq: AtomicU64,
    /// Backends currently black-holed by test choreography.
    partitioned: Mutex<HashSet<usize>>,
    injected: Arc<Counter>,
}

impl FaultPlan {
    /// A plan with no rules — faults come only from
    /// [`FaultPlan::partition`] calls.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_rules(seed, Vec::new())
    }

    /// A plan with a seeded rule schedule.
    #[must_use]
    pub fn with_rules(seed: u64, rules: Vec<FaultRule>) -> Self {
        FaultPlan {
            seed,
            rules,
            seq: AtomicU64::new(0),
            partitioned: Mutex::new(HashSet::new()),
            injected: Arc::new(Counter::new()),
        }
    }

    /// Makes every op on `replica` drop until [`FaultPlan::heal`].
    pub fn partition(&self, replica: usize) {
        self.partitioned
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(replica);
    }

    /// Reverses [`FaultPlan::partition`].
    pub fn heal(&self, replica: usize) {
        self.partitioned
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&replica);
    }

    /// Whether `replica` is currently partitioned.
    #[must_use]
    pub fn is_partitioned(&self, replica: usize) -> bool {
        self.partitioned
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .contains(&replica)
    }

    /// Faults injected so far (partitions and rule hits).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }

    /// Decides the fate of the next op sent to `replica`: `None` means
    /// run it for real. Consumes one sequence number either way.
    #[must_use]
    pub fn decide(&self, replica: usize, op: &str) -> Option<FaultAction> {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        if self.is_partitioned(replica) {
            self.injected.inc();
            return Some(FaultAction::Drop);
        }
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.matches(replica, op, seq) {
                continue;
            }
            if roll(self.seed, seq, idx as u64) < rule.probability {
                self.injected.inc();
                return Some(rule.action);
            }
        }
        None
    }
}

/// The deterministic coin: FNV-1a over (seed, seq, rule index), mapped
/// to `[0, 1)`.
fn roll(seed: u64, seq: u64, rule_idx: u64) -> f64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in [seed, seq, rule_idx] {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // 53 mantissa bits keep the division exact enough for a coin.
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Extracts the `"op"` value from a request line without a full JSON
/// parse (fault decisions sit on the relay hot path; the lines the
/// router builds always render `"op":"..."` verbatim).
#[must_use]
pub fn op_of(line: &str) -> &str {
    let Some(start) = line.find("\"op\":\"").map(|p| p + 6) else {
        return "";
    };
    let rest = &line[start..];
    match rest.find('"') {
        Some(end) => &rest[..end],
        None => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let rules = vec![FaultRule::every(0.5, FaultAction::Drop)];
        let a = FaultPlan::with_rules(42, rules.clone());
        let b = FaultPlan::with_rules(42, rules.clone());
        let schedule_a: Vec<_> = (0..64).map(|_| a.decide(0, "predict")).collect();
        let schedule_b: Vec<_> = (0..64).map(|_| b.decide(0, "predict")).collect();
        assert_eq!(schedule_a, schedule_b);
        // And an actually mixed schedule, not all-or-nothing.
        let hits = schedule_a.iter().flatten().count();
        assert!(hits > 8 && hits < 56, "degenerate coin: {hits}/64");

        let c = FaultPlan::with_rules(43, rules);
        let schedule_c: Vec<_> = (0..64).map(|_| c.decide(0, "predict")).collect();
        assert_ne!(schedule_a, schedule_c, "a different seed reschedules");
    }

    #[test]
    fn rules_filter_by_replica_op_and_window() {
        let plan = FaultPlan::with_rules(
            7,
            vec![FaultRule::every(1.0, FaultAction::BlackHole)
                .on_replica(1)
                .on_op("delta")
                .in_window(2, 4)],
        );
        // seq 0, 1: outside the window.
        assert_eq!(plan.decide(1, "delta"), None);
        assert_eq!(plan.decide(1, "delta"), None);
        // seq 2: in the window but wrong replica / op.
        assert_eq!(plan.decide(0, "delta"), None);
        // seq 3: full match.
        assert_eq!(plan.decide(1, "delta"), Some(FaultAction::BlackHole));
        // seq 4: window closed.
        assert_eq!(plan.decide(1, "delta"), None);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn partitions_override_everything_until_healed() {
        let plan = FaultPlan::new(0);
        assert_eq!(plan.decide(2, "ping"), None);
        plan.partition(2);
        assert!(plan.is_partitioned(2));
        assert_eq!(plan.decide(2, "ping"), Some(FaultAction::Drop));
        assert_eq!(plan.decide(0, "ping"), None, "other replicas unaffected");
        plan.heal(2);
        assert_eq!(plan.decide(2, "ping"), None);
    }

    #[test]
    fn op_extraction_reads_router_built_lines() {
        assert_eq!(op_of(r#"{"op":"predict","id":3}"#), "predict");
        assert_eq!(
            op_of(r#"{"id":3,"op":"apply_delta","payload":"00"}"#),
            "apply_delta"
        );
        assert_eq!(op_of("not json"), "");
    }
}
