//! One replica, as the router sees it.
//!
//! A [`Backend`] owns a small pool of NDJSON connections to its replica
//! plus the router-side view of its state: health, role, served model
//! version and per-replica request counters. All request traffic —
//! client predicts, health probes, delta relays — goes through
//! [`Backend::request`], which checks a pooled connection out, runs one
//! line-for-line round trip, and returns the connection only if the
//! round trip succeeded (an errored connection is dropped, never
//! reused: the protocol has no way to resynchronize a half-read line).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use serde_json::Value;

/// How long one backend round trip may take before the connection is
/// considered dead. Generous next to sub-ms predicts, tight enough that
/// a hung replica cannot stall the sync loop or a failover for long.
const ROUND_TRIP_TIMEOUT: Duration = Duration::from_secs(5);

/// Pooled connections per backend. Predict relays hold a connection
/// only for one round trip, so a handful covers heavy concurrency.
const POOL_LIMIT: usize = 8;

/// One NDJSON connection to a replica.
struct BackendConn {
    stream: TcpStream,
    /// Bytes read past the last returned line (partial next line).
    pending: Vec<u8>,
}

impl BackendConn {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, ROUND_TRIP_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(ROUND_TRIP_TIMEOUT))?;
        Ok(BackendConn {
            stream,
            pending: Vec::new(),
        })
    }

    /// One request line out, one response line back.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = self.pending.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line_bytes).trim().to_owned());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "replica closed mid-response",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Router-side state of one replica.
pub struct Backend {
    /// Stable replica id (position in the router's backend list).
    pub id: usize,
    /// The replica's listen address.
    pub addr: SocketAddr,
    healthy: AtomicBool,
    inflight: AtomicUsize,
    requests_ok: AtomicU64,
    requests_failed: AtomicU64,
    model_version: AtomicU64,
    role: Mutex<String>,
    pool: Mutex<Vec<BackendConn>>,
}

impl Backend {
    /// A backend starts unknown-unhealthy; the first health probe (or
    /// successful request) marks it up.
    #[must_use]
    pub fn new(id: usize, addr: SocketAddr) -> Self {
        Backend {
            id,
            addr,
            healthy: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            requests_ok: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            model_version: AtomicU64::new(0),
            role: Mutex::new("unknown".to_owned()),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Whether the last probe/request reached this replica.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Requests currently relayed to this replica.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// The model version the replica reported last.
    #[must_use]
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::Acquire)
    }

    /// The replication role the replica reported last.
    #[must_use]
    pub fn role(&self) -> String {
        self.role.lock().expect("role poisoned").clone()
    }

    /// Requests this backend answered (any valid response line).
    #[must_use]
    pub fn ok_count(&self) -> u64 {
        self.requests_ok.load(Ordering::Relaxed)
    }

    /// Requests that failed on this backend at the transport level.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.requests_failed.load(Ordering::Relaxed)
    }

    /// Runs one round trip against this replica, tracking inflight and
    /// success counters. A transport failure marks the backend
    /// unhealthy (the sync loop's next probe can bring it back).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error. A returned `Ok` line may still
    /// be a protocol-level `{"ok":false,...}` — that is the replica's
    /// answer, not a transport failure, and is relayed as such.
    pub fn request(&self, line: &str) -> std::io::Result<String> {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let result = self.request_inner(line);
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        match &result {
            Ok(_) => {
                self.requests_ok.fetch_add(1, Ordering::Relaxed);
                self.healthy.store(true, Ordering::Release);
            }
            Err(_) => {
                self.requests_failed.fetch_add(1, Ordering::Relaxed);
                self.healthy.store(false, Ordering::Release);
            }
        }
        result
    }

    fn request_inner(&self, line: &str) -> std::io::Result<String> {
        let pooled = self.pool.lock().expect("pool poisoned").pop();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => BackendConn::connect(self.addr)?,
        };
        match conn.round_trip(line) {
            Ok(response) => {
                let mut pool = self.pool.lock().expect("pool poisoned");
                if pool.len() < POOL_LIMIT {
                    pool.push(conn);
                }
                Ok(response)
            }
            Err(e) => Err(e), // drop the connection: its stream state is unknown
        }
    }

    /// Probes `{"op":"health"}` and refreshes health, role and version.
    /// Returns the parsed response when the replica answered.
    pub fn probe_health(&self) -> Option<Value> {
        let response = match self.request(r#"{"op":"health"}"#) {
            Ok(response) => response,
            Err(_) => {
                // request() already marked us unhealthy; also drop every
                // pooled connection so recovery starts from fresh sockets.
                self.pool.lock().expect("pool poisoned").clear();
                return None;
            }
        };
        let Ok(value) = serde_json::from_str(&response) else {
            self.healthy.store(false, Ordering::Release);
            return None;
        };
        let value: Value = value;
        if value.get("ok").and_then(Value::as_bool) != Some(true) {
            self.healthy.store(false, Ordering::Release);
            return None;
        }
        if let Some(version) = value.get("model_version").and_then(Value::as_u64) {
            self.model_version.store(version, Ordering::Release);
        }
        if let Some(role) = value.get("role").and_then(Value::as_str) {
            *self.role.lock().expect("role poisoned") = role.to_owned();
        }
        Some(value)
    }

    /// The router's stats entry for this replica.
    #[must_use]
    pub fn status(&self) -> Value {
        ncl_serve::protocol::object(vec![
            ("id", Value::from(self.id as u64)),
            ("addr", Value::from(self.addr.to_string())),
            ("healthy", Value::from(self.is_healthy())),
            ("role", Value::from(self.role())),
            ("model_version", Value::from(self.model_version())),
            ("requests_ok", Value::from(self.ok_count())),
            ("requests_failed", Value::from(self.failed_count())),
            ("inflight", Value::from(self.inflight() as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_serve::registry::ModelRegistry;
    use ncl_serve::server::{Server, ServerConfig};
    use ncl_snn::{Network, NetworkConfig};
    use std::sync::Arc;

    #[test]
    fn request_pools_connections_and_tracks_health() {
        let network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        let registry = Arc::new(ModelRegistry::new(network, "test"));
        let server = Server::start(registry, ServerConfig::default()).unwrap();
        let backend = Backend::new(0, server.local_addr());
        assert!(!backend.is_healthy(), "unknown until the first probe");

        let health = backend.probe_health().unwrap();
        assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
        assert!(backend.is_healthy());
        assert_eq!(backend.model_version(), 1);
        assert_eq!(backend.role(), "standalone");

        // A second request reuses the pooled connection.
        let pong = backend.request(r#"{"op":"ping"}"#).unwrap();
        assert!(pong.contains("pong"));
        assert_eq!(backend.ok_count(), 2);
        assert_eq!(backend.failed_count(), 0);

        // Kill the replica: the next request fails and flips health.
        server.shutdown();
        assert!(backend.request(r#"{"op":"ping"}"#).is_err());
        assert!(!backend.is_healthy());
        assert!(backend.probe_health().is_none());
    }
}
