//! One replica, as the router sees it.
//!
//! A [`Backend`] owns a small pool of NDJSON connections to its replica
//! plus the router-side view of its state: health, role, served model
//! version and per-replica request counters. All request traffic —
//! client predicts, health probes, delta relays — goes through
//! [`Backend::request`], which checks a pooled connection out, runs one
//! line-for-line round trip, and returns the connection only if the
//! round trip succeeded (an errored connection is dropped, never
//! reused: the protocol has no way to resynchronize a half-read line).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ncl_obs::{Counter, Gauge, Registry};
use serde_json::Value;

use crate::faults::{FaultAction, FaultPlan};

/// First wait after a probe failure opens the circuit; doubles per
/// consecutive failure up to [`BREAKER_MAX_BACKOFF`]. Tune per backend
/// with [`Backend::configure_breaker`].
const BREAKER_INITIAL_BACKOFF: Duration = Duration::from_millis(200);

/// Cap on the breaker's exponential backoff: a long-dead replica is
/// re-probed at most this often, instead of every sync tick.
const BREAKER_MAX_BACKOFF: Duration = Duration::from_secs(5);

/// Pooled connections per backend. Predict relays hold a connection
/// only for one round trip, so a handful covers heavy concurrency.
const POOL_LIMIT: usize = 8;

/// Half-open circuit breaker gating health probes to a failing backend.
///
/// Every transport outcome feeds it: a failure opens the circuit for an
/// exponentially growing backoff window, during which
/// [`Backend::probe_health`] returns without touching the socket (a
/// dead replica stops costing a connect timeout per sync tick). When
/// the window lapses the breaker goes half-open: the next probe is the
/// trial — success closes the circuit and resets the backoff, another
/// failure re-opens it with the window doubled (capped).
///
/// Dispatch is *not* gated here: relays already skip unhealthy
/// backends, and a request that does reach a half-open backend is
/// itself a perfectly good trial.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Breaker {
    phase: BreakerPhase,
    backoff: Duration,
    retry_at: Option<Instant>,
    initial: Duration,
    max: Duration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerPhase {
    /// The backend is failing; probes are suppressed until `retry_at`.
    Open,
    /// The backoff lapsed; the next outcome decides open vs closed.
    HalfOpen,
    /// The backend is behaving; every probe goes through.
    Closed,
}

impl Breaker {
    pub(crate) fn new(initial: Duration, max: Duration) -> Self {
        Breaker {
            phase: BreakerPhase::Closed,
            backoff: initial,
            retry_at: None,
            initial,
            max,
        }
    }

    /// Whether a probe may go out at `now` (flips open → half-open when
    /// the backoff window has lapsed).
    pub(crate) fn admits(&mut self, now: Instant) -> bool {
        match self.phase {
            BreakerPhase::Closed | BreakerPhase::HalfOpen => true,
            BreakerPhase::Open => {
                if self.retry_at.is_some_and(|at| now >= at) {
                    self.phase = BreakerPhase::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    pub(crate) fn succeed(&mut self) {
        self.phase = BreakerPhase::Closed;
        self.backoff = self.initial;
        self.retry_at = None;
    }

    pub(crate) fn fail(&mut self, now: Instant) {
        let wait = match self.phase {
            // First failure out of a working state: start at the floor.
            BreakerPhase::Closed => self.initial,
            // A failed trial (or a failure that raced the window):
            // double the wait, capped.
            BreakerPhase::HalfOpen | BreakerPhase::Open => {
                self.max.min(self.backoff.saturating_mul(2))
            }
        };
        self.backoff = wait;
        self.phase = BreakerPhase::Open;
        self.retry_at = Some(now + wait);
    }

    pub(crate) fn phase(&self) -> BreakerPhase {
        self.phase
    }
}

/// One NDJSON connection to a replica.
struct BackendConn {
    stream: TcpStream,
    /// Bytes read past the last returned line (partial next line).
    pending: Vec<u8>,
}

impl BackendConn {
    fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(BackendConn {
            stream,
            pending: Vec::new(),
        })
    }

    /// One request line out, one response line back.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = self.pending.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line_bytes).trim().to_owned());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "replica closed mid-response",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Maps a socket timeout (surfaced by the OS as `WouldBlock` or
/// `TimedOut` depending on platform) onto a uniform `TimedOut` error
/// naming the replica, so "replica hung" never reads as "replica
/// refused" in failover diagnostics.
fn mark_timeout(e: std::io::Error, addr: SocketAddr) -> std::io::Error {
    if matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("timed out talking to replica {addr}"),
        )
    } else {
        e
    }
}

/// Router-side state of one replica.
pub struct Backend {
    /// Stable replica id (position in the router's backend list).
    pub id: usize,
    /// The replica's listen address.
    pub addr: SocketAddr,
    timeout: Duration,
    healthy: AtomicBool,
    inflight: AtomicUsize,
    requests_ok: Arc<Counter>,
    requests_failed: Arc<Counter>,
    timeouts: Arc<Counter>,
    model_version: AtomicU64,
    epoch: AtomicU64,
    role: Mutex<String>,
    pool: Mutex<Vec<BackendConn>>,
    breaker: Mutex<Breaker>,
    state_gauge: Arc<Gauge>,
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl Backend {
    /// Default cap on one backend round trip before the connection is
    /// considered dead. Generous next to sub-ms predicts, tight enough
    /// that a hung replica cannot stall the sync loop or a failover for
    /// long. Override per backend with [`Backend::with_timeout`].
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

    /// A backend starts unknown-unhealthy; the first health probe (or
    /// successful request) marks it up.
    #[must_use]
    pub fn new(id: usize, addr: SocketAddr) -> Self {
        Backend::with_timeout(id, addr, Backend::DEFAULT_TIMEOUT)
    }

    /// A backend with an explicit round-trip cap (connect, read and
    /// write each get this bound).
    #[must_use]
    pub fn with_timeout(id: usize, addr: SocketAddr, timeout: Duration) -> Self {
        let state_gauge = Arc::new(Gauge::new());
        state_gauge.set(i64::from(gauge_value(BreakerPhase::Closed)));
        Backend {
            id,
            addr,
            timeout,
            healthy: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            requests_ok: Arc::new(Counter::new()),
            requests_failed: Arc::new(Counter::new()),
            timeouts: Arc::new(Counter::new()),
            model_version: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            role: Mutex::new("unknown".to_owned()),
            pool: Mutex::new(Vec::new()),
            breaker: Mutex::new(Breaker::new(BREAKER_INITIAL_BACKOFF, BREAKER_MAX_BACKOFF)),
            state_gauge,
            faults: Mutex::new(None),
        }
    }

    /// Re-tunes the probe breaker's backoff window (tests use tight
    /// windows; production keeps the defaults).
    pub fn configure_breaker(&self, initial: Duration, max: Duration) {
        let mut breaker = self
            .breaker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *breaker = Breaker::new(initial, max.max(initial));
        self.state_gauge
            .set(i64::from(gauge_value(breaker.phase())));
    }

    /// Threads a fault plan under every round trip this backend runs
    /// (see [`crate::faults`]). Chaos tests arm the whole fleet's
    /// backends with one shared plan.
    pub fn arm_faults(&self, plan: Arc<FaultPlan>) {
        *self
            .faults
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(plan);
    }

    /// Exposes this backend's counters in `registry` as
    /// `router_backend_*_total{replica="<id>"}` series. The handles are
    /// shared, not copied: the hot path keeps incrementing the same
    /// atomics the exposition reads.
    pub fn register_into(&self, registry: &Registry) {
        let replica = self.id.to_string();
        let labels: &[(&str, &str)] = &[("replica", &replica)];
        let _ = registry.adopt_counter(
            "router_backend_requests_ok_total",
            labels,
            "Relayed requests this replica answered.",
            Arc::clone(&self.requests_ok),
        );
        let _ = registry.adopt_counter(
            "router_backend_requests_failed_total",
            labels,
            "Relayed requests that failed on this replica at the transport level.",
            Arc::clone(&self.requests_failed),
        );
        let _ = registry.adopt_counter(
            "router_backend_timeouts_total",
            labels,
            "Transport failures that were timeouts (hung replica, not a refusal).",
            Arc::clone(&self.timeouts),
        );
        let _ = registry.adopt_gauge(
            "router_backend_state",
            labels,
            "Probe-breaker state of this backend (0 = open, 1 = half-open, 2 = closed).",
            Arc::clone(&self.state_gauge),
        );
    }

    /// Whether the last probe/request reached this replica.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Requests currently relayed to this replica.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// The model version the replica reported last.
    #[must_use]
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::Acquire)
    }

    /// Folds a model version seen in a live reply into the cached one.
    ///
    /// Monotonic (`fetch_max`): a reply carrying a fresher version than
    /// the last health probe must win, but a probe racing in with the
    /// replica's current (>=) version is just as authoritative, so the
    /// cell only ever moves forward. Version-preferring dispatch reads
    /// this cache, so folding replies in keeps a client's observed
    /// `model_version` monotonic through the probe-interval window
    /// right after an increment lands on one replica.
    pub fn observe_version(&self, version: u64) {
        self.model_version.fetch_max(version, Ordering::AcqRel);
    }

    /// The fleet epoch the replica reported last (0 for replicas that
    /// predate epoch fencing).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The probe breaker's current state, for status rows.
    #[must_use]
    pub fn breaker_state(&self) -> &'static str {
        let phase = self
            .breaker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .phase();
        match phase {
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half-open",
            BreakerPhase::Closed => "closed",
        }
    }

    /// The replication role the replica reported last.
    #[must_use]
    pub fn role(&self) -> String {
        // Role/pool values stay valid whatever panicked while the
        // lock was held — recover the guard, never cascade the poison
        // through the dispatch path.
        self.role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Requests this backend answered (any valid response line).
    #[must_use]
    pub fn ok_count(&self) -> u64 {
        self.requests_ok.get()
    }

    /// Requests that failed on this backend at the transport level.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.requests_failed.get()
    }

    /// Transport failures that were timeouts.
    #[must_use]
    pub fn timeout_count(&self) -> u64 {
        self.timeouts.get()
    }

    /// Runs one round trip against this replica, tracking inflight and
    /// success counters. A transport failure marks the backend
    /// unhealthy (the sync loop's next probe can bring it back).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error. A returned `Ok` line may still
    /// be a protocol-level `{"ok":false,...}` — that is the replica's
    /// answer, not a transport failure, and is relayed as such.
    pub fn request(&self, line: &str) -> std::io::Result<String> {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let result = self
            .faulted_request(line)
            .map_err(|e| mark_timeout(e, self.addr));
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        match &result {
            Ok(_) => {
                self.requests_ok.inc();
                self.healthy.store(true, Ordering::Release);
                self.breaker_observe(true);
            }
            Err(e) => {
                self.requests_failed.inc();
                if e.kind() == std::io::ErrorKind::TimedOut {
                    self.timeouts.inc();
                }
                self.healthy.store(false, Ordering::Release);
                self.breaker_observe(false);
            }
        }
        result
    }

    /// Consults the armed fault plan (if any) before running the real
    /// round trip. Injected failures surface as ordinary transport
    /// errors, so health marking, counters and the breaker all react
    /// exactly as they would to the real fault.
    fn faulted_request(&self, line: &str) -> std::io::Result<String> {
        let plan = self
            .faults
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if let Some(plan) = plan {
            match plan.decide(self.id, crate::faults::op_of(line)) {
                None => {}
                Some(FaultAction::Drop) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionAborted,
                        format!("fault injection: dropped connection to replica {}", self.id),
                    ))
                }
                Some(FaultAction::Delay(wait)) => std::thread::sleep(wait),
                Some(FaultAction::BlackHole) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!(
                            "fault injection: black-holed request to replica {}",
                            self.id
                        ),
                    ))
                }
                Some(FaultAction::CloseMidWrite) => return self.close_mid_write(line),
            }
        }
        self.request_inner(line)
    }

    /// The `CloseMidWrite` fault: a real connection, half the request
    /// line, then a hard close — the replica sees a truncated line and
    /// an EOF, the caller sees an aborted connection.
    fn close_mid_write(&self, line: &str) -> std::io::Result<String> {
        let pooled = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => BackendConn::connect(self.addr, self.timeout)?,
        };
        let half = &line.as_bytes()[..line.len() / 2];
        let _ = conn.stream.write_all(half);
        let _ = conn.stream.flush();
        drop(conn);
        Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            format!(
                "fault injection: connection to replica {} closed mid-write",
                self.id
            ),
        ))
    }

    fn request_inner(&self, line: &str) -> std::io::Result<String> {
        let pooled = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => BackendConn::connect(self.addr, self.timeout)?,
        };
        match conn.round_trip(line) {
            Ok(response) => {
                let mut pool = self
                    .pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if pool.len() < POOL_LIMIT {
                    pool.push(conn);
                }
                Ok(response)
            }
            Err(e) => Err(e), // drop the connection: its stream state is unknown
        }
    }

    /// Feeds one transport outcome into the breaker and mirrors the
    /// resulting state onto the `router_backend_state` gauge.
    fn breaker_observe(&self, success: bool) {
        let mut breaker = self
            .breaker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if success {
            breaker.succeed();
        } else {
            breaker.fail(Instant::now());
        }
        self.state_gauge
            .set(i64::from(gauge_value(breaker.phase())));
    }

    /// Probes `{"op":"health"}` and refreshes health, role, version and
    /// epoch. Returns the parsed response when the replica answered.
    ///
    /// The probe is gated by the breaker: while the circuit is open,
    /// this returns `None` without touching the socket, so a dead
    /// replica costs at most one connect attempt per backoff window
    /// instead of one per sync tick.
    pub fn probe_health(&self) -> Option<Value> {
        {
            let mut breaker = self
                .breaker
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let admitted = breaker.admits(Instant::now());
            self.state_gauge
                .set(i64::from(gauge_value(breaker.phase())));
            if !admitted {
                return None;
            }
        }
        let response = match self.request(r#"{"op":"health"}"#) {
            Ok(response) => response,
            Err(_) => {
                // request() already marked us unhealthy; also drop every
                // pooled connection so recovery starts from fresh sockets.
                self.pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clear();
                return None;
            }
        };
        let Ok(value) = serde_json::from_str(&response) else {
            self.healthy.store(false, Ordering::Release);
            return None;
        };
        let value: Value = value;
        if value.get("ok").and_then(Value::as_bool) != Some(true) {
            self.healthy.store(false, Ordering::Release);
            return None;
        }
        if let Some(version) = value.get("model_version").and_then(Value::as_u64) {
            // fetch_max, not store: a probe that was in flight while a
            // live reply observed a fresher version must not roll the
            // cached version back (a replica's registry never regresses).
            self.model_version.fetch_max(version, Ordering::AcqRel);
        }
        if let Some(epoch) = value.get("epoch").and_then(Value::as_u64) {
            self.epoch.store(epoch, Ordering::Release);
        }
        if let Some(role) = value.get("role").and_then(Value::as_str) {
            *self
                .role
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = role.to_owned();
        }
        Some(value)
    }

    /// The router's stats entry for this replica.
    #[must_use]
    pub fn status(&self) -> Value {
        ncl_serve::protocol::object(vec![
            ("id", Value::from(self.id as u64)),
            ("addr", Value::from(self.addr.to_string())),
            ("healthy", Value::from(self.is_healthy())),
            ("role", Value::from(self.role())),
            ("model_version", Value::from(self.model_version())),
            ("epoch", Value::from(self.epoch())),
            ("breaker", Value::from(self.breaker_state())),
            ("requests_ok", Value::from(self.ok_count())),
            ("requests_failed", Value::from(self.failed_count())),
            ("timeouts", Value::from(self.timeout_count())),
            ("inflight", Value::from(self.inflight() as u64)),
        ])
    }
}

/// `router_backend_state` gauge encoding of a breaker phase.
fn gauge_value(phase: BreakerPhase) -> u8 {
    match phase {
        BreakerPhase::Open => 0,
        BreakerPhase::HalfOpen => 1,
        BreakerPhase::Closed => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_serve::registry::ModelRegistry;
    use ncl_serve::server::{Server, ServerConfig};
    use ncl_snn::{Network, NetworkConfig};
    use std::sync::Arc;

    #[test]
    fn request_pools_connections_and_tracks_health() {
        let network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        let registry = Arc::new(ModelRegistry::new(network, "test"));
        let server = Server::start(registry, ServerConfig::default()).unwrap();
        let backend = Backend::new(0, server.local_addr());
        assert!(!backend.is_healthy(), "unknown until the first probe");

        let health = backend.probe_health().unwrap();
        assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
        assert!(backend.is_healthy());
        assert_eq!(backend.model_version(), 1);
        assert_eq!(backend.role(), "standalone");

        // A second request reuses the pooled connection.
        let pong = backend.request(r#"{"op":"ping"}"#).unwrap();
        assert!(pong.contains("pong"));
        assert_eq!(backend.ok_count(), 2);
        assert_eq!(backend.failed_count(), 0);

        // Kill the replica: the next request fails and flips health.
        server.shutdown();
        assert!(backend.request(r#"{"op":"ping"}"#).is_err());
        assert!(!backend.is_healthy());
        assert!(backend.probe_health().is_none());
    }

    #[test]
    fn hung_replica_surfaces_as_timeout_and_is_counted() {
        // Accept and go silent: the request must time out, not hang,
        // and the error must be distinguishable from a refusal.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let backend = Backend::with_timeout(0, addr, Duration::from_millis(50));
        let err = backend.request(r#"{"op":"ping"}"#).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("timed out"), "{err}");
        assert_eq!(backend.timeout_count(), 1);
        assert_eq!(backend.failed_count(), 1);
        drop(hold.join());

        // A refusal (bind-then-drop port) is a failure but not a timeout.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let refused = Backend::with_timeout(1, dead, Duration::from_secs(2));
        let err = refused.request(r#"{"op":"ping"}"#).unwrap_err();
        assert_ne!(err.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(refused.timeout_count(), 0);
        assert_eq!(refused.failed_count(), 1);
    }

    #[test]
    fn breaker_walks_open_half_open_closed_with_doubling_backoff() {
        let t0 = Instant::now();
        let mut breaker = Breaker::new(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(breaker.phase(), BreakerPhase::Closed);
        assert!(breaker.admits(t0));

        // First failure: open for the initial window.
        breaker.fail(t0);
        assert_eq!(breaker.phase(), BreakerPhase::Open);
        assert!(!breaker.admits(t0 + Duration::from_millis(5)));
        assert_eq!(breaker.phase(), BreakerPhase::Open);

        // Window lapses: half-open, one trial admitted.
        assert!(breaker.admits(t0 + Duration::from_millis(10)));
        assert_eq!(breaker.phase(), BreakerPhase::HalfOpen);

        // Failed trial: open again, backoff doubled (10 → 20ms).
        let t1 = t0 + Duration::from_millis(11);
        breaker.fail(t1);
        assert!(!breaker.admits(t1 + Duration::from_millis(19)));
        assert!(breaker.admits(t1 + Duration::from_millis(20)));

        // Another failed trial: doubled again but capped (40 → 35ms).
        let t2 = t1 + Duration::from_millis(21);
        breaker.fail(t2);
        assert!(!breaker.admits(t2 + Duration::from_millis(34)));
        assert!(breaker.admits(t2 + Duration::from_millis(35)));

        // Successful trial: closed, and the backoff resets to the
        // initial window for the next incident.
        breaker.succeed();
        assert_eq!(breaker.phase(), BreakerPhase::Closed);
        breaker.fail(t2 + Duration::from_millis(40));
        assert!(breaker.admits(t2 + Duration::from_millis(50)));
    }

    #[test]
    fn open_breaker_suppresses_probes_until_the_replica_recovers() {
        // A listener that rejects connections (accept + drop) until
        // flipped up, after which it answers health like a replica — a
        // deterministic down/up cycle on one address.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let up = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let up_flag = Arc::clone(&up);
        let responder = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                if !up_flag.load(Ordering::Acquire) {
                    drop(stream); // reset: the replica is "down"
                    continue;
                }
                let mut buf = [0u8; 1024];
                let Ok(n) = std::io::Read::read(&mut stream, &mut buf) else {
                    continue;
                };
                if n == 0 {
                    continue;
                }
                let _ = std::io::Write::write_all(
                    &mut stream,
                    b"{\"ok\":true,\"op\":\"health\",\"role\":\"follower\",\"model_version\":7,\"epoch\":3}\n",
                );
                break; // one successful probe is all the test needs
            }
        });

        let backend = Backend::with_timeout(0, addr, Duration::from_millis(500));
        backend.configure_breaker(Duration::from_millis(30), Duration::from_millis(120));
        let obs = ncl_obs::Registry::new();
        backend.register_into(&obs);

        // Down: the probe fails and opens the circuit.
        assert!(backend.probe_health().is_none());
        assert_eq!(backend.breaker_state(), "open");
        let failures_after_open = backend.failed_count();
        assert!(obs
            .render()
            .contains("router_backend_state{replica=\"0\"} 0"));

        // While open, probes are suppressed: no socket work, no new
        // transport failures.
        assert!(backend.probe_health().is_none());
        assert!(backend.probe_health().is_none());
        assert_eq!(backend.failed_count(), failures_after_open);

        // Backoff lapses while the replica is back up: the half-open
        // trial goes through, closes the circuit, refreshes state.
        up.store(true, Ordering::Release);
        std::thread::sleep(Duration::from_millis(40));
        let health = backend.probe_health().expect("half-open trial probe");
        assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(backend.breaker_state(), "closed");
        assert!(backend.is_healthy());
        assert_eq!(backend.model_version(), 7);
        assert_eq!(backend.epoch(), 3);
        assert!(obs
            .render()
            .contains("router_backend_state{replica=\"0\"} 2"));
        responder.join().unwrap();
    }

    #[test]
    fn armed_faults_surface_as_transport_errors() {
        use crate::faults::{FaultAction, FaultPlan, FaultRule};
        let network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        let registry = Arc::new(ModelRegistry::new(network, "test"));
        let server = Server::start(registry, ServerConfig::default()).unwrap();
        let backend = Backend::new(4, server.local_addr());
        let plan = Arc::new(FaultPlan::with_rules(
            11,
            vec![FaultRule::every(1.0, FaultAction::BlackHole).on_op("ping")],
        ));
        backend.arm_faults(Arc::clone(&plan));

        // The faulted op fails as a timeout without a real wait...
        let err = backend.request(r#"{"op":"ping"}"#).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(backend.timeout_count(), 1);
        assert!(!backend.is_healthy());
        assert_eq!(plan.injected(), 1);

        // ...while unmatched ops still reach the replica (the injected
        // failure opened the probe breaker; reset it first).
        backend.configure_breaker(Duration::from_millis(1), Duration::from_millis(1));
        let health = backend.probe_health().expect("unmatched op goes through");
        assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));

        // Close-mid-write writes a partial line and aborts; the server
        // connection survives the torn line and later ops still work.
        let tear = Arc::new(FaultPlan::with_rules(
            12,
            vec![FaultRule::every(1.0, FaultAction::CloseMidWrite).in_window(0, 1)],
        ));
        backend.arm_faults(tear);
        let err = backend.request(r#"{"op":"ping"}"#).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
        assert!(backend
            .request(r#"{"op":"ping"}"#)
            .unwrap()
            .contains("pong"));
        server.shutdown();
    }

    #[test]
    fn register_into_exposes_backend_counters() {
        let registry = ncl_obs::Registry::new();
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let backend = Backend::new(3, dead);
        backend.register_into(&registry);
        let _ = backend.request(r#"{"op":"ping"}"#);
        let text = registry.render();
        assert!(
            text.contains("router_backend_requests_failed_total{replica=\"3\"} 1"),
            "exposition tracks the shared counter:\n{text}"
        );
        assert!(text.contains("router_backend_requests_ok_total{replica=\"3\"} 0"));
    }
}
