//! One replica, as the router sees it.
//!
//! A [`Backend`] owns a small pool of NDJSON connections to its replica
//! plus the router-side view of its state: health, role, served model
//! version and per-replica request counters. All request traffic —
//! client predicts, health probes, delta relays — goes through
//! [`Backend::request`], which checks a pooled connection out, runs one
//! line-for-line round trip, and returns the connection only if the
//! round trip succeeded (an errored connection is dropped, never
//! reused: the protocol has no way to resynchronize a half-read line).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ncl_obs::{Counter, Registry};
use serde_json::Value;

/// Default cap on one backend round trip before the connection is
/// considered dead. Generous next to sub-ms predicts, tight enough that
/// a hung replica cannot stall the sync loop or a failover for long.
/// Override per backend with [`Backend::with_timeout`].
const ROUND_TRIP_TIMEOUT: Duration = Duration::from_secs(5);

/// Pooled connections per backend. Predict relays hold a connection
/// only for one round trip, so a handful covers heavy concurrency.
const POOL_LIMIT: usize = 8;

/// One NDJSON connection to a replica.
struct BackendConn {
    stream: TcpStream,
    /// Bytes read past the last returned line (partial next line).
    pending: Vec<u8>,
}

impl BackendConn {
    fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(BackendConn {
            stream,
            pending: Vec::new(),
        })
    }

    /// One request line out, one response line back.
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = self.pending.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line_bytes).trim().to_owned());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "replica closed mid-response",
                    ))
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Maps a socket timeout (surfaced by the OS as `WouldBlock` or
/// `TimedOut` depending on platform) onto a uniform `TimedOut` error
/// naming the replica, so "replica hung" never reads as "replica
/// refused" in failover diagnostics.
fn mark_timeout(e: std::io::Error, addr: SocketAddr) -> std::io::Error {
    if matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    ) {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("timed out talking to replica {addr}"),
        )
    } else {
        e
    }
}

/// Router-side state of one replica.
pub struct Backend {
    /// Stable replica id (position in the router's backend list).
    pub id: usize,
    /// The replica's listen address.
    pub addr: SocketAddr,
    timeout: Duration,
    healthy: AtomicBool,
    inflight: AtomicUsize,
    requests_ok: Arc<Counter>,
    requests_failed: Arc<Counter>,
    timeouts: Arc<Counter>,
    model_version: AtomicU64,
    role: Mutex<String>,
    pool: Mutex<Vec<BackendConn>>,
}

impl Backend {
    /// A backend starts unknown-unhealthy; the first health probe (or
    /// successful request) marks it up.
    #[must_use]
    pub fn new(id: usize, addr: SocketAddr) -> Self {
        Backend::with_timeout(id, addr, ROUND_TRIP_TIMEOUT)
    }

    /// A backend with an explicit round-trip cap (connect, read and
    /// write each get this bound).
    #[must_use]
    pub fn with_timeout(id: usize, addr: SocketAddr, timeout: Duration) -> Self {
        Backend {
            id,
            addr,
            timeout,
            healthy: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            requests_ok: Arc::new(Counter::new()),
            requests_failed: Arc::new(Counter::new()),
            timeouts: Arc::new(Counter::new()),
            model_version: AtomicU64::new(0),
            role: Mutex::new("unknown".to_owned()),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Exposes this backend's counters in `registry` as
    /// `router_backend_*_total{replica="<id>"}` series. The handles are
    /// shared, not copied: the hot path keeps incrementing the same
    /// atomics the exposition reads.
    pub fn register_into(&self, registry: &Registry) {
        let replica = self.id.to_string();
        let labels: &[(&str, &str)] = &[("replica", &replica)];
        let _ = registry.adopt_counter(
            "router_backend_requests_ok_total",
            labels,
            "Relayed requests this replica answered.",
            Arc::clone(&self.requests_ok),
        );
        let _ = registry.adopt_counter(
            "router_backend_requests_failed_total",
            labels,
            "Relayed requests that failed on this replica at the transport level.",
            Arc::clone(&self.requests_failed),
        );
        let _ = registry.adopt_counter(
            "router_backend_timeouts_total",
            labels,
            "Transport failures that were timeouts (hung replica, not a refusal).",
            Arc::clone(&self.timeouts),
        );
    }

    /// Whether the last probe/request reached this replica.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Requests currently relayed to this replica.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// The model version the replica reported last.
    #[must_use]
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Ordering::Acquire)
    }

    /// The replication role the replica reported last.
    #[must_use]
    pub fn role(&self) -> String {
        // Role/pool values stay valid whatever panicked while the
        // lock was held — recover the guard, never cascade the poison
        // through the dispatch path.
        self.role
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Requests this backend answered (any valid response line).
    #[must_use]
    pub fn ok_count(&self) -> u64 {
        self.requests_ok.get()
    }

    /// Requests that failed on this backend at the transport level.
    #[must_use]
    pub fn failed_count(&self) -> u64 {
        self.requests_failed.get()
    }

    /// Transport failures that were timeouts.
    #[must_use]
    pub fn timeout_count(&self) -> u64 {
        self.timeouts.get()
    }

    /// Runs one round trip against this replica, tracking inflight and
    /// success counters. A transport failure marks the backend
    /// unhealthy (the sync loop's next probe can bring it back).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error. A returned `Ok` line may still
    /// be a protocol-level `{"ok":false,...}` — that is the replica's
    /// answer, not a transport failure, and is relayed as such.
    pub fn request(&self, line: &str) -> std::io::Result<String> {
        self.inflight.fetch_add(1, Ordering::AcqRel);
        let result = self
            .request_inner(line)
            .map_err(|e| mark_timeout(e, self.addr));
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        match &result {
            Ok(_) => {
                self.requests_ok.inc();
                self.healthy.store(true, Ordering::Release);
            }
            Err(e) => {
                self.requests_failed.inc();
                if e.kind() == std::io::ErrorKind::TimedOut {
                    self.timeouts.inc();
                }
                self.healthy.store(false, Ordering::Release);
            }
        }
        result
    }

    fn request_inner(&self, line: &str) -> std::io::Result<String> {
        let pooled = self
            .pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => BackendConn::connect(self.addr, self.timeout)?,
        };
        match conn.round_trip(line) {
            Ok(response) => {
                let mut pool = self
                    .pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if pool.len() < POOL_LIMIT {
                    pool.push(conn);
                }
                Ok(response)
            }
            Err(e) => Err(e), // drop the connection: its stream state is unknown
        }
    }

    /// Probes `{"op":"health"}` and refreshes health, role and version.
    /// Returns the parsed response when the replica answered.
    pub fn probe_health(&self) -> Option<Value> {
        let response = match self.request(r#"{"op":"health"}"#) {
            Ok(response) => response,
            Err(_) => {
                // request() already marked us unhealthy; also drop every
                // pooled connection so recovery starts from fresh sockets.
                self.pool
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .clear();
                return None;
            }
        };
        let Ok(value) = serde_json::from_str(&response) else {
            self.healthy.store(false, Ordering::Release);
            return None;
        };
        let value: Value = value;
        if value.get("ok").and_then(Value::as_bool) != Some(true) {
            self.healthy.store(false, Ordering::Release);
            return None;
        }
        if let Some(version) = value.get("model_version").and_then(Value::as_u64) {
            self.model_version.store(version, Ordering::Release);
        }
        if let Some(role) = value.get("role").and_then(Value::as_str) {
            *self
                .role
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = role.to_owned();
        }
        Some(value)
    }

    /// The router's stats entry for this replica.
    #[must_use]
    pub fn status(&self) -> Value {
        ncl_serve::protocol::object(vec![
            ("id", Value::from(self.id as u64)),
            ("addr", Value::from(self.addr.to_string())),
            ("healthy", Value::from(self.is_healthy())),
            ("role", Value::from(self.role())),
            ("model_version", Value::from(self.model_version())),
            ("requests_ok", Value::from(self.ok_count())),
            ("requests_failed", Value::from(self.failed_count())),
            ("timeouts", Value::from(self.timeout_count())),
            ("inflight", Value::from(self.inflight() as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_serve::registry::ModelRegistry;
    use ncl_serve::server::{Server, ServerConfig};
    use ncl_snn::{Network, NetworkConfig};
    use std::sync::Arc;

    #[test]
    fn request_pools_connections_and_tracks_health() {
        let network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        let registry = Arc::new(ModelRegistry::new(network, "test"));
        let server = Server::start(registry, ServerConfig::default()).unwrap();
        let backend = Backend::new(0, server.local_addr());
        assert!(!backend.is_healthy(), "unknown until the first probe");

        let health = backend.probe_health().unwrap();
        assert_eq!(health.get("ok").and_then(Value::as_bool), Some(true));
        assert!(backend.is_healthy());
        assert_eq!(backend.model_version(), 1);
        assert_eq!(backend.role(), "standalone");

        // A second request reuses the pooled connection.
        let pong = backend.request(r#"{"op":"ping"}"#).unwrap();
        assert!(pong.contains("pong"));
        assert_eq!(backend.ok_count(), 2);
        assert_eq!(backend.failed_count(), 0);

        // Kill the replica: the next request fails and flips health.
        server.shutdown();
        assert!(backend.request(r#"{"op":"ping"}"#).is_err());
        assert!(!backend.is_healthy());
        assert!(backend.probe_health().is_none());
    }

    #[test]
    fn hung_replica_surfaces_as_timeout_and_is_counted() {
        // Accept and go silent: the request must time out, not hang,
        // and the error must be distinguishable from a refusal.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let backend = Backend::with_timeout(0, addr, Duration::from_millis(50));
        let err = backend.request(r#"{"op":"ping"}"#).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("timed out"), "{err}");
        assert_eq!(backend.timeout_count(), 1);
        assert_eq!(backend.failed_count(), 1);
        drop(hold.join());

        // A refusal (bind-then-drop port) is a failure but not a timeout.
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let refused = Backend::with_timeout(1, dead, Duration::from_secs(2));
        let err = refused.request(r#"{"op":"ping"}"#).unwrap_err();
        assert_ne!(err.kind(), std::io::ErrorKind::TimedOut);
        assert_eq!(refused.timeout_count(), 0);
        assert_eq!(refused.failed_count(), 1);
    }

    #[test]
    fn register_into_exposes_backend_counters() {
        let registry = ncl_obs::Registry::new();
        let dead = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let backend = Backend::new(3, dead);
        backend.register_into(&registry);
        let _ = backend.request(r#"{"op":"ping"}"#);
        let text = registry.render();
        assert!(
            text.contains("router_backend_requests_failed_total{replica=\"3\"} 1"),
            "exposition tracks the shared counter:\n{text}"
        );
        assert!(text.contains("router_backend_requests_ok_total{replica=\"3\"} 0"));
    }
}
