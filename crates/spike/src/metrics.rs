//! Spike statistics: counts, rates and spike-timing summaries.
//!
//! [`mean_spike_time`] is the quantity driving the paper's adaptive
//! threshold (Alg. 1 lines 12–13 and 26–27): `V_thr = 1 + 0.01·(T − t̄)`
//! where `t̄` is the mean spike time of the observed window.

use crate::raster::SpikeRaster;

/// Per-layer spike activity summary of one forward pass; consumed by the
/// hardware cost models (`ncl-hw`) to count synaptic operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpikeStats {
    /// Total spike count.
    pub total_spikes: u64,
    /// Number of neuron-timesteps observed (`neurons * steps`).
    pub cells: u64,
    /// Mean spike time (timestep index), if any spikes occurred.
    pub mean_spike_time: Option<f64>,
}

impl SpikeStats {
    /// Computes the summary of a raster.
    #[must_use]
    pub fn of(raster: &SpikeRaster) -> Self {
        let mut total = 0u64;
        let mut time_sum = 0u64;
        for t in 0..raster.steps() {
            let c = raster.spikes_at(t) as u64;
            total += c;
            time_sum += c * t as u64;
        }
        SpikeStats {
            total_spikes: total,
            cells: raster.payload_bits(),
            mean_spike_time: if total > 0 {
                Some(time_sum as f64 / total as f64)
            } else {
                None
            },
        }
    }

    /// Mean firing probability per neuron per timestep.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.total_spikes as f64 / self.cells as f64
        }
    }

    /// Merges another summary into this one (weighted by spike counts).
    pub fn merge(&mut self, other: &SpikeStats) {
        let combined_spikes = self.total_spikes + other.total_spikes;
        self.mean_spike_time = match (self.mean_spike_time, other.mean_spike_time) {
            (Some(a), Some(b)) if combined_spikes > 0 => Some(
                (a * self.total_spikes as f64 + b * other.total_spikes as f64)
                    / combined_spikes as f64,
            ),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            _ => None,
        };
        self.total_spikes = combined_spikes;
        self.cells += other.cells;
    }
}

/// Mean spike time over a window `[start, end)` of the raster; `None` when
/// the window is silent. This is Alg. 1's `mean(spike_timing)` restricted
/// to the adjustment interval.
#[must_use]
pub fn mean_spike_time(raster: &SpikeRaster, start: usize, end: usize) -> Option<f64> {
    let end = end.min(raster.steps());
    let mut total = 0u64;
    let mut time_sum = 0u64;
    for t in start..end {
        let c = raster.spikes_at(t) as u64;
        total += c;
        time_sum += c * t as u64;
    }
    if total == 0 {
        None
    } else {
        Some(time_sum as f64 / total as f64)
    }
}

/// Per-neuron firing rates (spikes per timestep).
#[must_use]
pub fn firing_rates(raster: &SpikeRaster) -> Vec<f32> {
    let mut counts = vec![0u32; raster.neurons()];
    for t in 0..raster.steps() {
        for n in raster.active_at(t) {
            counts[n] += 1;
        }
    }
    let steps = raster.steps().max(1) as f32;
    counts.into_iter().map(|c| c as f32 / steps).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_raster() {
        let s = SpikeStats::of(&SpikeRaster::new(10, 10));
        assert_eq!(s.total_spikes, 0);
        assert_eq!(s.mean_spike_time, None);
        assert_eq!(s.density(), 0.0);
    }

    #[test]
    fn stats_mean_time_known() {
        let mut r = SpikeRaster::new(2, 10);
        r.set(0, 2, true);
        r.set(1, 8, true);
        let s = SpikeStats::of(&r);
        assert_eq!(s.total_spikes, 2);
        assert_eq!(s.mean_spike_time, Some(5.0));
        assert!((s.density() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_weighted() {
        let mut r1 = SpikeRaster::new(1, 10);
        r1.set(0, 2, true); // mean 2, 1 spike
        let mut r2 = SpikeRaster::new(1, 10);
        r2.set(0, 5, true);
        r2.set(0, 9, true); // mean 7, 2 spikes
        let mut a = SpikeStats::of(&r1);
        let b = SpikeStats::of(&r2);
        a.merge(&b);
        assert_eq!(a.total_spikes, 3);
        assert!((a.mean_spike_time.unwrap() - 16.0 / 3.0).abs() < 1e-9);
        // Merging an empty summary keeps the mean.
        let mut c = SpikeStats::of(&r1);
        c.merge(&SpikeStats::default());
        assert_eq!(c.mean_spike_time, Some(2.0));
        let mut d = SpikeStats::default();
        d.merge(&SpikeStats::of(&r1));
        assert_eq!(d.mean_spike_time, Some(2.0));
    }

    #[test]
    fn window_mean_spike_time() {
        let mut r = SpikeRaster::new(1, 20);
        r.set(0, 3, true);
        r.set(0, 15, true);
        assert_eq!(mean_spike_time(&r, 0, 10), Some(3.0));
        assert_eq!(mean_spike_time(&r, 10, 20), Some(15.0));
        assert_eq!(mean_spike_time(&r, 0, 20), Some(9.0));
        assert_eq!(mean_spike_time(&r, 4, 10), None);
        // End clamps to raster length.
        assert_eq!(mean_spike_time(&r, 10, 999), Some(15.0));
    }

    #[test]
    fn firing_rates_per_neuron() {
        let r = SpikeRaster::from_fn(3, 10, |n, t| match n {
            0 => true,
            1 => t % 2 == 0,
            _ => false,
        });
        let rates = firing_rates(&r);
        assert!((rates[0] - 1.0).abs() < 1e-6);
        assert!((rates[1] - 0.5).abs() < 1e-6);
        assert_eq!(rates[2], 0.0);
    }
}
