//! Bit-packed spike raster.

use serde::{Deserialize, Serialize};

use crate::error::SpikeError;

/// A binary `neurons x steps` spike raster, bit-packed in **time-major**
/// order: all neuron bits of timestep `t` are contiguous.
///
/// Time-major layout makes the SNN forward pass cache-friendly: processing
/// timestep `t` only touches the `ceil(neurons / 64)` words of that step,
/// and [`SpikeRaster::active_at`] iterates the set bits directly.
///
/// # Example
///
/// ```
/// use ncl_spike::SpikeRaster;
///
/// let mut r = SpikeRaster::new(100, 10);
/// r.set(42, 3, true);
/// assert!(r.get(42, 3));
/// assert_eq!(r.active_at(3).collect::<Vec<_>>(), vec![42]);
/// assert_eq!(r.total_spikes(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeRaster {
    neurons: usize,
    steps: usize,
    words_per_step: usize,
    words: Vec<u64>,
}

impl SpikeRaster {
    /// Creates an empty (all-zero) raster.
    #[must_use]
    pub fn new(neurons: usize, steps: usize) -> Self {
        let words_per_step = neurons.div_ceil(64);
        SpikeRaster {
            neurons,
            steps,
            words_per_step,
            words: vec![0; words_per_step * steps],
        }
    }

    /// Builds a raster from a predicate over `(neuron, step)`.
    #[must_use]
    pub fn from_fn(neurons: usize, steps: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut r = SpikeRaster::new(neurons, steps);
        for t in 0..steps {
            for n in 0..neurons {
                if f(n, t) {
                    r.set(n, t, true);
                }
            }
        }
        r
    }

    /// Number of neurons (rows).
    #[inline]
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Number of timesteps (columns).
    #[inline]
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Whether the spike at `(neuron, step)` is set.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds; use [`SpikeRaster::try_get`] for
    /// a fallible variant.
    #[inline]
    #[must_use]
    pub fn get(&self, neuron: usize, step: usize) -> bool {
        assert!(
            neuron < self.neurons && step < self.steps,
            "raster index out of bounds"
        );
        let w = self.words[step * self.words_per_step + neuron / 64];
        (w >> (neuron % 64)) & 1 == 1
    }

    /// Fallible variant of [`SpikeRaster::get`].
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::IndexOutOfBounds`] for invalid indices.
    pub fn try_get(&self, neuron: usize, step: usize) -> Result<bool, SpikeError> {
        if neuron >= self.neurons || step >= self.steps {
            return Err(SpikeError::IndexOutOfBounds {
                neuron,
                step,
                neurons: self.neurons,
                steps: self.steps,
            });
        }
        Ok(self.get(neuron, step))
    }

    /// Sets or clears the spike at `(neuron, step)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    #[inline]
    pub fn set(&mut self, neuron: usize, step: usize, value: bool) {
        assert!(
            neuron < self.neurons && step < self.steps,
            "raster index out of bounds"
        );
        let idx = step * self.words_per_step + neuron / 64;
        let bit = 1u64 << (neuron % 64);
        if value {
            self.words[idx] |= bit;
        } else {
            self.words[idx] &= !bit;
        }
    }

    /// The packed words of one timestep.
    ///
    /// # Panics
    ///
    /// Panics if `step >= steps`.
    #[inline]
    #[must_use]
    pub fn step_words(&self, step: usize) -> &[u64] {
        assert!(step < self.steps, "step out of bounds");
        &self.words[step * self.words_per_step..(step + 1) * self.words_per_step]
    }

    /// Iterator over the indices of neurons that spike at `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step >= steps`.
    pub fn active_at(&self, step: usize) -> ActiveIter<'_> {
        ActiveIter {
            words: self.step_words(step),
            word_idx: 0,
            current: None,
        }
    }

    /// Number of spikes at one timestep.
    #[must_use]
    pub fn spikes_at(&self, step: usize) -> usize {
        self.step_words(step)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Total number of spikes in the raster.
    #[must_use]
    pub fn total_spikes(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits, in `[0, 1]`; `0.0` for an empty raster.
    #[must_use]
    pub fn density(&self) -> f64 {
        let cells = self.neurons * self.steps;
        if cells == 0 {
            return 0.0;
        }
        self.total_spikes() as f64 / cells as f64
    }

    /// The spike train of a single neuron as booleans over time.
    ///
    /// # Panics
    ///
    /// Panics if `neuron >= neurons`.
    #[must_use]
    pub fn neuron_train(&self, neuron: usize) -> Vec<bool> {
        assert!(neuron < self.neurons, "neuron out of bounds");
        (0..self.steps).map(|t| self.get(neuron, t)).collect()
    }

    /// Writes timestep `step` into a dense `0.0 / 1.0` slice (used by the
    /// BPTT backward pass, which needs float activations).
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::ShapeMismatch`] if `out.len() != neurons`.
    pub fn write_dense_step(&self, step: usize, out: &mut [f32]) -> Result<(), SpikeError> {
        if out.len() != self.neurons {
            return Err(SpikeError::ShapeMismatch {
                op: "write_dense_step",
                expected: (self.neurons, 1),
                actual: (out.len(), 1),
            });
        }
        out.iter_mut().for_each(|v| *v = 0.0);
        for n in self.active_at(step) {
            out[n] = 1.0;
        }
        Ok(())
    }

    /// Copies one timestep of `src` into timestep `dst_step` of `self`
    /// (neuron counts must match).
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::ShapeMismatch`] if neuron counts differ, or
    /// [`SpikeError::IndexOutOfBounds`] for bad step indices.
    pub fn copy_step_from(
        &mut self,
        dst_step: usize,
        src: &SpikeRaster,
        src_step: usize,
    ) -> Result<(), SpikeError> {
        if src.neurons != self.neurons {
            return Err(SpikeError::ShapeMismatch {
                op: "copy_step_from",
                expected: (self.neurons, self.steps),
                actual: (src.neurons, src.steps),
            });
        }
        if dst_step >= self.steps || src_step >= src.steps {
            return Err(SpikeError::IndexOutOfBounds {
                neuron: 0,
                step: dst_step.max(src_step),
                neurons: self.neurons,
                steps: self.steps.min(src.steps),
            });
        }
        let src_words = src.step_words(src_step).to_vec();
        let dst =
            &mut self.words[dst_step * self.words_per_step..(dst_step + 1) * self.words_per_step];
        dst.copy_from_slice(&src_words);
        Ok(())
    }

    /// ORs one timestep of `src` into timestep `dst_step` of `self`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SpikeRaster::copy_step_from`].
    pub fn or_step_from(
        &mut self,
        dst_step: usize,
        src: &SpikeRaster,
        src_step: usize,
    ) -> Result<(), SpikeError> {
        if src.neurons != self.neurons {
            return Err(SpikeError::ShapeMismatch {
                op: "or_step_from",
                expected: (self.neurons, self.steps),
                actual: (src.neurons, src.steps),
            });
        }
        if dst_step >= self.steps || src_step >= src.steps {
            return Err(SpikeError::IndexOutOfBounds {
                neuron: 0,
                step: dst_step.max(src_step),
                neurons: self.neurons,
                steps: self.steps.min(src.steps),
            });
        }
        for i in 0..self.words_per_step {
            let v = src.words[src_step * src.words_per_step + i];
            self.words[dst_step * self.words_per_step + i] |= v;
        }
        Ok(())
    }

    /// Exact number of payload bits (`neurons * steps`); the quantity the
    /// latent-memory model of Fig. 12 accounts.
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        self.neurons as u64 * self.steps as u64
    }

    /// Clears every spike, keeping shape and allocation. Equivalent to
    /// `*self = SpikeRaster::new(self.neurons(), self.steps())` without the
    /// reallocation — the training arenas reuse rasters across samples.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Reshapes `self` into an all-zero `neurons x steps` raster in place,
    /// reusing the existing word buffer when its capacity suffices (no
    /// heap traffic once a raster has seen its steady-state shape).
    pub fn reset(&mut self, neurons: usize, steps: usize) {
        self.neurons = neurons;
        self.steps = steps;
        self.words_per_step = neurons.div_ceil(64);
        self.words.clear();
        self.words.resize(self.words_per_step * steps, 0);
    }

    /// Makes `self` an exact copy of `other`, reusing `self`'s allocation
    /// when possible (the in-place counterpart of `clone`).
    pub fn copy_from(&mut self, other: &SpikeRaster) {
        self.neurons = other.neurons;
        self.steps = other.steps;
        self.words_per_step = other.words_per_step;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }
}

/// Iterator over active neuron indices within one timestep.
///
/// Produced by [`SpikeRaster::active_at`].
#[derive(Debug, Clone)]
pub struct ActiveIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: Option<u64>,
}

impl Iterator for ActiveIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            match self.current {
                Some(bits) if bits != 0 => {
                    let tz = bits.trailing_zeros() as usize;
                    self.current = Some(bits & (bits - 1)); // clear lowest set bit
                    return Some((self.word_idx - 1) * 64 + tz);
                }
                _ => {
                    if self.word_idx >= self.words.len() {
                        return None;
                    }
                    self.current = Some(self.words[self.word_idx]);
                    self.word_idx += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_raster_has_no_spikes() {
        let r = SpikeRaster::new(700, 100);
        assert_eq!(r.total_spikes(), 0);
        assert_eq!(r.density(), 0.0);
        assert_eq!(r.active_at(0).count(), 0);
        assert_eq!(r.payload_bits(), 70_000);
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut r = SpikeRaster::new(130, 3);
        for &n in &[0usize, 63, 64, 65, 127, 128, 129] {
            r.set(n, 1, true);
            assert!(r.get(n, 1));
            assert!(!r.get(n, 0));
        }
        assert_eq!(r.spikes_at(1), 7);
        r.set(64, 1, false);
        assert!(!r.get(64, 1));
        assert_eq!(r.spikes_at(1), 6);
    }

    #[test]
    fn active_at_yields_sorted_indices() {
        let mut r = SpikeRaster::new(200, 2);
        for &n in &[5usize, 63, 64, 140, 199] {
            r.set(n, 0, true);
        }
        let active: Vec<usize> = r.active_at(0).collect();
        assert_eq!(active, vec![5, 63, 64, 140, 199]);
    }

    #[test]
    fn try_get_bounds() {
        let r = SpikeRaster::new(4, 4);
        assert!(r.try_get(3, 3).is_ok());
        assert!(matches!(
            r.try_get(4, 0),
            Err(SpikeError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            r.try_get(0, 4),
            Err(SpikeError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn from_fn_diagonal() {
        let r = SpikeRaster::from_fn(5, 5, |n, t| n == t);
        assert_eq!(r.total_spikes(), 5);
        for t in 0..5 {
            assert_eq!(r.active_at(t).collect::<Vec<_>>(), vec![t]);
        }
    }

    #[test]
    fn write_dense_step_matches_bits() {
        let mut r = SpikeRaster::new(70, 2);
        r.set(0, 0, true);
        r.set(69, 0, true);
        let mut buf = vec![9.0f32; 70];
        r.write_dense_step(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1.0);
        assert_eq!(buf[69], 1.0);
        assert_eq!(buf[1..69].iter().sum::<f32>(), 0.0);
        let mut bad = vec![0.0f32; 3];
        assert!(r.write_dense_step(0, &mut bad).is_err());
    }

    #[test]
    fn copy_and_or_steps() {
        let mut a = SpikeRaster::new(70, 2);
        let mut b = SpikeRaster::new(70, 2);
        a.set(3, 0, true);
        b.set(65, 1, true);
        a.copy_step_from(1, &b, 1).unwrap();
        assert!(a.get(65, 1));
        a.or_step_from(1, &b, 1).unwrap();
        assert!(a.get(65, 1));
        // copy overwrites
        let empty = SpikeRaster::new(70, 1);
        a.copy_step_from(1, &empty, 0).unwrap();
        assert!(!a.get(65, 1));
        // mismatched neurons error
        let c = SpikeRaster::new(4, 1);
        assert!(a.copy_step_from(0, &c, 0).is_err());
        assert!(a.or_step_from(0, &c, 0).is_err());
        // bad steps error
        assert!(a.copy_step_from(5, &b, 0).is_err());
        assert!(a.or_step_from(0, &b, 5).is_err());
    }

    #[test]
    fn neuron_train_extracts_column() {
        let mut r = SpikeRaster::new(3, 4);
        r.set(1, 0, true);
        r.set(1, 3, true);
        assert_eq!(r.neuron_train(1), vec![true, false, false, true]);
        assert_eq!(r.neuron_train(0), vec![false; 4]);
    }

    #[test]
    fn density_counts() {
        let mut r = SpikeRaster::new(10, 10);
        for i in 0..10 {
            r.set(i, i, true);
        }
        assert!((r.density() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clear_reset_copy_from_reuse_allocation() {
        let mut r = SpikeRaster::from_fn(130, 6, |n, t| (n + t) % 7 == 0);
        assert!(r.total_spikes() > 0);
        r.clear();
        assert_eq!(r.total_spikes(), 0);
        assert_eq!(r.neurons(), 130);
        assert_eq!(r.steps(), 6);

        // Reset to a smaller shape: equivalent to a fresh raster.
        r.reset(70, 3);
        assert_eq!(r, SpikeRaster::new(70, 3));
        r.set(69, 2, true);
        // Reset back up: old bits never leak through.
        r.reset(130, 6);
        assert_eq!(r, SpikeRaster::new(130, 6));

        // copy_from is an in-place clone.
        let src = SpikeRaster::from_fn(33, 4, |n, t| n == t * 3);
        r.copy_from(&src);
        assert_eq!(r, src);
        assert_eq!(r.active_at(1).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_panics_out_of_bounds() {
        let r = SpikeRaster::new(2, 2);
        let _ = r.get(2, 0);
    }
}
