//! Lossless run-length coding of spike trains — the natural comparison
//! point for the paper's lossy decimation codec.
//!
//! Sparse spike rasters compress well losslessly: per neuron, the gaps
//! between consecutive spikes are stored as variable-length integers.
//! This module exists to quantify the trade the paper makes: decimation
//! ([`crate::codec`]) achieves a *fixed, predictable* memory budget
//! (essential for embedded latent stores) at the cost of dropped frames,
//! while RLE is exact but content-dependent — a dense raster can even
//! expand. The `fig12` reproduction can be re-run against this codec to
//! see why the paper chose decimation.

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::error::SpikeError;
use crate::raster::SpikeRaster;

/// A losslessly run-length-coded raster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RleRaster {
    neurons: usize,
    steps: usize,
    /// Concatenated per-neuron gap streams, LEB128-style varints.
    payload: Vec<u8>,
    /// Byte offset of each neuron's stream in `payload`.
    offsets: Vec<u32>,
}

/// Encodes a value as a LEB128-style varint.
fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a varint; returns `(value, bytes_consumed)`.
///
/// Rejects payloads that cannot come from [`push_varint`]: truncated
/// streams, varints longer than 5 bytes, non-canonical overlong encodings
/// (a trailing zero continuation), and — the subtle one — a 5th byte
/// whose payload bits do not fit the 4 bits remaining in a `u32`. The
/// old decoder shifted that byte by 28 and silently discarded its top 3
/// bits, so an adversarial-but-terminated varint decoded to a *wrong
/// gap* instead of an error.
fn read_varint(buf: &[u8]) -> Result<(u32, usize), SpikeError> {
    let invalid = |detail: &str| SpikeError::InvalidParameter {
        what: "rle payload",
        detail: detail.into(),
    };
    let mut value = 0u32;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 32 {
            return Err(invalid("varint longer than 5 bytes"));
        }
        let payload = u32::from(byte & 0x7F);
        if shift > 32 - 7 && payload >> (32 - shift) != 0 {
            return Err(invalid("varint payload overflows 32 bits"));
        }
        if byte & 0x80 == 0 {
            if i > 0 && payload == 0 {
                return Err(invalid("overlong varint (trailing zero byte)"));
            }
            return Ok((value | (payload << shift), i + 1));
        }
        value |= payload << shift;
        shift += 7;
    }
    Err(invalid("truncated varint"))
}

impl RleRaster {
    /// Losslessly encodes a raster.
    #[must_use]
    pub fn encode(raster: &SpikeRaster) -> Self {
        let mut payload = Vec::new();
        let mut offsets = Vec::with_capacity(raster.neurons());
        for n in 0..raster.neurons() {
            offsets.push(payload.len() as u32);
            let mut last = 0usize; // gap is measured from the previous spike + 1
            let mut first = true;
            for t in 0..raster.steps() {
                if raster.get(n, t) {
                    let gap = if first { t } else { t - last - 1 };
                    push_varint(&mut payload, gap as u32);
                    last = t;
                    first = false;
                }
            }
            // Terminator: a gap that runs past the end marks stream end.
            push_varint(
                &mut payload,
                (raster.steps() - if first { 0 } else { last + 1 }) as u32 + 1,
            );
        }
        RleRaster {
            neurons: raster.neurons(),
            steps: raster.steps(),
            payload,
            offsets,
        }
    }

    /// Reassembles an encoded raster from its stored parts — the entry
    /// point for payloads read back from disk or a wire, which may be
    /// corrupt. Construction is cheap and unvalidated; [`decode`] performs
    /// the full strict validation and is the only way to get a raster
    /// back out, so a malformed reassembly can never produce a wrong
    /// raster silently.
    ///
    /// [`decode`]: RleRaster::decode
    #[must_use]
    pub fn from_parts(neurons: usize, steps: usize, payload: Vec<u8>, offsets: Vec<u32>) -> Self {
        RleRaster {
            neurons,
            steps,
            payload,
            offsets,
        }
    }

    /// The concatenated per-neuron gap streams.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Byte offset of each neuron's stream in the payload.
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Number of neurons.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Number of timesteps of the original raster.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Encoded payload size in bits (the latent-memory cost of this
    /// codec), including the per-neuron offset table.
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        (self.payload.len() as u64 + 4 * self.offsets.len() as u64) * 8
    }

    /// Appends the encoded raster to a byte stream (the persistence wire
    /// format): `u64 neurons`, `u64 steps`, `u64 payload length`, the
    /// per-neuron `u32` offsets, then the payload bytes — all
    /// little-endian. [`read_from`] is the strict inverse.
    ///
    /// [`read_from`]: RleRaster::read_from
    pub fn write_into(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(self.neurons as u64);
        buf.put_u64_le(self.steps as u64);
        buf.put_u64_le(self.payload.len() as u64);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        buf.put_slice(&self.payload);
    }

    /// The encoded raster as a standalone byte vector ([`write_into`] into
    /// a fresh buffer).
    ///
    /// [`write_into`]: RleRaster::write_into
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24 + 4 * self.offsets.len() + self.payload.len());
        self.write_into(&mut buf);
        buf
    }

    /// Reads one [`write_into`] frame from the front of `buf`, advancing it
    /// past the consumed bytes. The header is validated strictly
    /// (truncation, implausible dimensions, offsets outside the payload all
    /// fail) and the returned raster still goes through [`decode`]'s full
    /// payload validation — so corrupt persisted bytes surface as `Err`,
    /// never as a silently wrong raster.
    ///
    /// [`write_into`]: RleRaster::write_into
    /// [`decode`]: RleRaster::decode
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::InvalidParameter`] describing the first
    /// malformed field.
    pub fn read_from(buf: &mut &[u8]) -> Result<Self, SpikeError> {
        let invalid = |detail: String| SpikeError::InvalidParameter {
            what: "rle frame",
            detail,
        };
        let need = |buf: &&[u8], n: usize, what: &str| {
            if buf.remaining() < n {
                return Err(invalid(format!("truncated while reading {what}")));
            }
            Ok(())
        };
        need(buf, 24, "header")?;
        let neurons = buf.get_u64_le();
        let steps = buf.get_u64_le();
        let payload_len = buf.get_u64_le();
        // A terminator varint per neuron is at least one payload byte, so
        // any genuine encoding satisfies payload >= neurons; combined with
        // the remaining-bytes check this bounds every allocation below by
        // the input size.
        if neurons > buf.remaining() as u64 || steps > u64::from(u32::MAX) {
            return Err(invalid(format!(
                "implausible dimensions {neurons}x{steps} for {} remaining bytes",
                buf.remaining()
            )));
        }
        let neurons = neurons as usize;
        let steps = steps as usize;
        need(buf, 4 * neurons, "offset table")?;
        let mut offsets = Vec::with_capacity(neurons);
        for _ in 0..neurons {
            offsets.push(buf.get_u32_le());
        }
        if payload_len > buf.remaining() as u64 {
            return Err(invalid(format!(
                "payload length {payload_len} exceeds the {} remaining bytes",
                buf.remaining()
            )));
        }
        let payload_len = payload_len as usize;
        if let Some(&out) = offsets.iter().find(|&&o| o as usize > payload_len) {
            return Err(invalid(format!(
                "offset {out} outside the {payload_len}-byte payload"
            )));
        }
        let payload = buf[..payload_len].to_vec();
        *buf = &buf[payload_len..];
        Ok(RleRaster {
            neurons,
            steps,
            payload,
            offsets,
        })
    }

    /// Losslessly decodes back to the original raster.
    ///
    /// Decoding is strict: every neuron stream must consist of in-range
    /// gaps followed by exactly the canonical terminator [`encode`]
    /// writes, with no bytes left over. A corrupted payload therefore
    /// decodes to `Err`, never silently to a wrong raster — any byte
    /// change either breaks a varint, moves a spike out of range, or
    /// desynchronizes the terminator check.
    ///
    /// [`encode`]: RleRaster::encode
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::InvalidParameter`] if the payload or offset
    /// table is corrupted.
    pub fn decode(&self) -> Result<SpikeRaster, SpikeError> {
        let invalid = |detail: String| SpikeError::InvalidParameter {
            what: "rle payload",
            detail,
        };
        if self.offsets.len() != self.neurons {
            return Err(invalid(format!(
                "offset table has {} entries for {} neurons",
                self.offsets.len(),
                self.neurons
            )));
        }
        let mut raster = SpikeRaster::new(self.neurons, self.steps);
        for n in 0..self.neurons {
            let start = self.offsets[n] as usize;
            let end = self
                .offsets
                .get(n + 1)
                .map_or(self.payload.len(), |&o| o as usize);
            if start > end || end > self.payload.len() {
                return Err(invalid(format!(
                    "offset table entry {n} ({start}..{end}) outside payload"
                )));
            }
            let mut stream = &self.payload[start..end];
            let mut t = 0usize;
            let mut first = true;
            loop {
                if stream.is_empty() {
                    return Err(invalid(format!("neuron {n} stream missing terminator")));
                }
                let (gap, used) = read_varint(stream)?;
                stream = &stream[used..];
                let next = if first {
                    gap as usize
                } else {
                    t + 1 + gap as usize
                };
                if next == self.steps + 1 {
                    // The canonical terminator always lands exactly one
                    // past the raster end; a desynchronized stream cannot.
                    if !stream.is_empty() {
                        return Err(invalid(format!(
                            "neuron {n} has {} trailing bytes after terminator",
                            stream.len()
                        )));
                    }
                    break;
                }
                if next >= self.steps {
                    return Err(invalid(format!(
                        "neuron {n} spike at step {next} outside 0..{}",
                        self.steps
                    )));
                }
                raster.set(n, next, true);
                t = next;
                first = false;
            }
        }
        Ok(raster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_tensor::Rng;

    fn random_raster(neurons: usize, steps: usize, density: f64, seed: u64) -> SpikeRaster {
        let mut rng = Rng::seed_from_u64(seed);
        SpikeRaster::from_fn(neurons, steps, |_, _| rng.bernoulli(density))
    }

    #[test]
    fn wire_format_round_trips() {
        for (density, seed) in [(0.0, 11), (0.05, 12), (0.4, 13), (1.0, 14)] {
            let r = random_raster(19, 31, density, seed);
            let encoded = RleRaster::encode(&r);
            let bytes = encoded.to_bytes();
            let mut cursor = bytes.as_slice();
            let read = RleRaster::read_from(&mut cursor).unwrap();
            assert!(cursor.is_empty(), "frame fully consumed");
            assert_eq!(read, encoded);
            assert_eq!(read.decode().unwrap(), r, "density {density}");
        }
    }

    #[test]
    fn wire_format_frames_concatenate() {
        let a = RleRaster::encode(&random_raster(5, 9, 0.3, 1));
        let b = RleRaster::encode(&random_raster(7, 4, 0.6, 2));
        let mut buf = Vec::new();
        a.write_into(&mut buf);
        b.write_into(&mut buf);
        let mut cursor = buf.as_slice();
        assert_eq!(RleRaster::read_from(&mut cursor).unwrap(), a);
        assert_eq!(RleRaster::read_from(&mut cursor).unwrap(), b);
        assert!(cursor.is_empty());
    }

    #[test]
    fn wire_format_rejects_malformed_frames() {
        let r = random_raster(6, 12, 0.25, 3);
        let bytes = RleRaster::encode(&r).to_bytes();
        // Every strict prefix fails cleanly.
        for cut in [0, 7, 8, 16, 23, 24, bytes.len() - 1] {
            let mut cursor = &bytes[..cut];
            assert!(
                RleRaster::read_from(&mut cursor).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        // An offset pointing past the payload is rejected at read time
        // (not deferred to decode): byte 24 is the first offset's low
        // byte, and this raster's payload is well under 255 bytes.
        let mut bad_offset = bytes.clone();
        bad_offset[24] = 0xFF;
        assert!(RleRaster::read_from(&mut bad_offset.as_slice()).is_err());
        // Implausible dimensions are rejected before any allocation.
        let mut huge = bytes.clone();
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(RleRaster::read_from(&mut huge.as_slice()).is_err());
        let mut long = bytes.clone();
        long[8..16].copy_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes());
        assert!(RleRaster::read_from(&mut long.as_slice()).is_err());
        // An oversold payload length is rejected.
        let mut oversold = bytes;
        oversold[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(RleRaster::read_from(&mut oversold.as_slice()).is_err());
    }

    #[test]
    fn round_trip_is_lossless() {
        for (density, seed) in [(0.0, 1), (0.02, 2), (0.2, 3), (0.9, 4), (1.0, 5)] {
            let r = random_raster(37, 53, density, seed);
            let decoded = RleRaster::encode(&r).decode().unwrap();
            assert_eq!(decoded, r, "density {density}");
        }
    }

    #[test]
    fn edge_patterns_round_trip() {
        // Spike at the very first and very last step.
        let mut r = SpikeRaster::new(3, 10);
        r.set(0, 0, true);
        r.set(1, 9, true);
        r.set(2, 0, true);
        r.set(2, 9, true);
        assert_eq!(RleRaster::encode(&r).decode().unwrap(), r);
        // All spikes.
        let full = SpikeRaster::from_fn(2, 8, |_, _| true);
        assert_eq!(RleRaster::encode(&full).decode().unwrap(), full);
        // Empty.
        let empty = SpikeRaster::new(4, 6);
        assert_eq!(RleRaster::encode(&empty).decode().unwrap(), empty);
    }

    #[test]
    fn sparse_rasters_compress_dense_rasters_expand() {
        let sparse = random_raster(100, 100, 0.01, 7);
        let rle = RleRaster::encode(&sparse);
        assert!(
            rle.payload_bits() < sparse.payload_bits(),
            "1% density must compress: {} vs {}",
            rle.payload_bits(),
            sparse.payload_bits()
        );

        let dense = random_raster(100, 100, 0.6, 8);
        let rle = RleRaster::encode(&dense);
        assert!(
            rle.payload_bits() > dense.payload_bits(),
            "60% density must expand: {} vs {}",
            rle.payload_bits(),
            dense.payload_bits()
        );
    }

    #[test]
    fn rle_is_content_dependent_decimation_is_not() {
        // The property that justifies the paper's choice: decimation's
        // footprint depends only on shape, RLE's on content.
        let a = random_raster(50, 100, 0.02, 9);
        let b = random_raster(50, 100, 0.3, 10);
        let dec = |r: &SpikeRaster| {
            crate::codec::compress(r, crate::codec::CompressionFactor::new(2).unwrap())
                .payload_bits()
        };
        assert_eq!(dec(&a), dec(&b), "decimation: fixed budget");
        assert_ne!(
            RleRaster::encode(&a).payload_bits(),
            RleRaster::encode(&b).payload_bits(),
            "rle: content-dependent"
        );
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let r = random_raster(4, 20, 0.3, 11);
        let mut rle = RleRaster::encode(&r);
        // Make every byte a continuation byte: the varint never terminates.
        rle.payload.iter_mut().for_each(|b| *b |= 0x80);
        assert!(rle.decode().is_err());
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
        assert!(read_varint(&[0x80]).is_err(), "truncated varint");
    }

    #[test]
    fn adversarial_varints_are_rejected() {
        // The regression: a terminated 5-byte varint whose 5th byte holds
        // payload bits beyond u32's remaining 4 bits. The old decoder
        // shifted by 28 and silently dropped the top 3 bits, decoding a
        // wrong value; now it must error.
        let overflowing = [0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(read_varint(&overflowing).is_err(), "5th-byte overflow");
        // Any non-zero bit in the 5th byte's upper nibble overflows.
        for fifth in [0x10u8, 0x20, 0x40, 0x70] {
            assert!(
                read_varint(&[0x80, 0x80, 0x80, 0x80, fifth]).is_err(),
                "payload bit {fifth:#x} beyond 32 bits accepted"
            );
        }
        // The largest canonical 5-byte varint still decodes.
        let max = [0xFF, 0xFF, 0xFF, 0xFF, 0x0F];
        assert_eq!(read_varint(&max).unwrap(), (u32::MAX, 5));
        // Overlong encodings (trailing zero continuation) are rejected.
        assert!(read_varint(&[0x80, 0x00]).is_err(), "overlong zero");
        assert!(read_varint(&[0x81, 0x80, 0x00]).is_err(), "overlong tail");
        // More than 5 bytes of continuation is rejected, terminated or not.
        assert!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]).is_err());
        assert!(read_varint(&[]).is_err(), "empty stream");
    }

    #[test]
    fn structural_corruption_is_rejected_not_misdecoded() {
        let r = random_raster(6, 30, 0.25, 12);
        let clean = RleRaster::encode(&r);
        assert_eq!(clean.decode().unwrap(), r);

        // Chopping the final terminator byte: missing terminator.
        let mut truncated = clean.clone();
        truncated.payload.pop();
        assert!(truncated.decode().is_err(), "missing terminator accepted");

        // Appending garbage after the last neuron's terminator.
        let mut trailing = clean.clone();
        trailing.payload.push(0x00);
        assert!(trailing.decode().is_err(), "trailing byte accepted");

        // Corrupting a mid-stream gap desynchronizes the terminator and
        // must surface as an error — the old decoder treated the first
        // out-of-range position as a terminator and returned a wrong
        // raster.
        let mut skewed = clean.clone();
        skewed.payload[0] = skewed.payload[0].wrapping_add(1);
        let outcome = skewed.decode();
        assert!(
            outcome.is_err() || outcome.unwrap() == r,
            "corrupted gap silently decoded to a different raster"
        );

        // An offset table pointing outside the payload errors cleanly
        // instead of panicking.
        let mut bad_offsets = clean.clone();
        bad_offsets.offsets[2] = clean.payload.len() as u32 + 40;
        assert!(bad_offsets.decode().is_err(), "wild offset accepted");
        let mut short_table = clean;
        short_table.offsets.pop();
        assert!(short_table.decode().is_err(), "short offset table accepted");
    }

    #[test]
    fn empty_stream_for_neuron_is_rejected() {
        // A zero-length neuron stream (possible only through corruption:
        // even a spike-free neuron stores its terminator) must error.
        let r = SpikeRaster::new(2, 10);
        let mut rle = RleRaster::encode(&r);
        // Collapse neuron 1's stream to zero length.
        let cut = rle.offsets[1] as usize;
        rle.payload.truncate(cut);
        assert!(rle.decode().is_err());
    }
}
