//! Lossless run-length coding of spike trains — the natural comparison
//! point for the paper's lossy decimation codec.
//!
//! Sparse spike rasters compress well losslessly: per neuron, the gaps
//! between consecutive spikes are stored as variable-length integers.
//! This module exists to quantify the trade the paper makes: decimation
//! ([`crate::codec`]) achieves a *fixed, predictable* memory budget
//! (essential for embedded latent stores) at the cost of dropped frames,
//! while RLE is exact but content-dependent — a dense raster can even
//! expand. The `fig12` reproduction can be re-run against this codec to
//! see why the paper chose decimation.

use serde::{Deserialize, Serialize};

use crate::error::SpikeError;
use crate::raster::SpikeRaster;

/// A losslessly run-length-coded raster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RleRaster {
    neurons: usize,
    steps: usize,
    /// Concatenated per-neuron gap streams, LEB128-style varints.
    payload: Vec<u8>,
    /// Byte offset of each neuron's stream in `payload`.
    offsets: Vec<u32>,
}

/// Encodes a value as a LEB128-style varint.
fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes a varint; returns `(value, bytes_consumed)`.
fn read_varint(buf: &[u8]) -> Result<(u32, usize), SpikeError> {
    let mut value = 0u32;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 32 {
            break;
        }
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(SpikeError::InvalidParameter {
        what: "rle payload",
        detail: "truncated or overlong varint".into(),
    })
}

impl RleRaster {
    /// Losslessly encodes a raster.
    #[must_use]
    pub fn encode(raster: &SpikeRaster) -> Self {
        let mut payload = Vec::new();
        let mut offsets = Vec::with_capacity(raster.neurons());
        for n in 0..raster.neurons() {
            offsets.push(payload.len() as u32);
            let mut last = 0usize; // gap is measured from the previous spike + 1
            let mut first = true;
            for t in 0..raster.steps() {
                if raster.get(n, t) {
                    let gap = if first { t } else { t - last - 1 };
                    push_varint(&mut payload, gap as u32);
                    last = t;
                    first = false;
                }
            }
            // Terminator: a gap that runs past the end marks stream end.
            push_varint(
                &mut payload,
                (raster.steps() - if first { 0 } else { last + 1 }) as u32 + 1,
            );
        }
        RleRaster {
            neurons: raster.neurons(),
            steps: raster.steps(),
            payload,
            offsets,
        }
    }

    /// Number of neurons.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Number of timesteps of the original raster.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Encoded payload size in bits (the latent-memory cost of this
    /// codec), including the per-neuron offset table.
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        (self.payload.len() as u64 + 4 * self.offsets.len() as u64) * 8
    }

    /// Losslessly decodes back to the original raster.
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::InvalidParameter`] if the payload is
    /// corrupted.
    pub fn decode(&self) -> Result<SpikeRaster, SpikeError> {
        let mut raster = SpikeRaster::new(self.neurons, self.steps);
        for n in 0..self.neurons {
            let start = self.offsets[n] as usize;
            let end = self
                .offsets
                .get(n + 1)
                .map_or(self.payload.len(), |&o| o as usize);
            let mut stream = &self.payload[start..end];
            let mut t = 0usize;
            let mut first = true;
            loop {
                let (gap, used) = read_varint(stream)?;
                stream = &stream[used..];
                let next = if first {
                    gap as usize
                } else {
                    t + 1 + gap as usize
                };
                if next >= self.steps {
                    break; // terminator
                }
                raster.set(n, next, true);
                t = next;
                first = false;
                if stream.is_empty() {
                    break;
                }
            }
        }
        Ok(raster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_tensor::Rng;

    fn random_raster(neurons: usize, steps: usize, density: f64, seed: u64) -> SpikeRaster {
        let mut rng = Rng::seed_from_u64(seed);
        SpikeRaster::from_fn(neurons, steps, |_, _| rng.bernoulli(density))
    }

    #[test]
    fn round_trip_is_lossless() {
        for (density, seed) in [(0.0, 1), (0.02, 2), (0.2, 3), (0.9, 4), (1.0, 5)] {
            let r = random_raster(37, 53, density, seed);
            let decoded = RleRaster::encode(&r).decode().unwrap();
            assert_eq!(decoded, r, "density {density}");
        }
    }

    #[test]
    fn edge_patterns_round_trip() {
        // Spike at the very first and very last step.
        let mut r = SpikeRaster::new(3, 10);
        r.set(0, 0, true);
        r.set(1, 9, true);
        r.set(2, 0, true);
        r.set(2, 9, true);
        assert_eq!(RleRaster::encode(&r).decode().unwrap(), r);
        // All spikes.
        let full = SpikeRaster::from_fn(2, 8, |_, _| true);
        assert_eq!(RleRaster::encode(&full).decode().unwrap(), full);
        // Empty.
        let empty = SpikeRaster::new(4, 6);
        assert_eq!(RleRaster::encode(&empty).decode().unwrap(), empty);
    }

    #[test]
    fn sparse_rasters_compress_dense_rasters_expand() {
        let sparse = random_raster(100, 100, 0.01, 7);
        let rle = RleRaster::encode(&sparse);
        assert!(
            rle.payload_bits() < sparse.payload_bits(),
            "1% density must compress: {} vs {}",
            rle.payload_bits(),
            sparse.payload_bits()
        );

        let dense = random_raster(100, 100, 0.6, 8);
        let rle = RleRaster::encode(&dense);
        assert!(
            rle.payload_bits() > dense.payload_bits(),
            "60% density must expand: {} vs {}",
            rle.payload_bits(),
            dense.payload_bits()
        );
    }

    #[test]
    fn rle_is_content_dependent_decimation_is_not() {
        // The property that justifies the paper's choice: decimation's
        // footprint depends only on shape, RLE's on content.
        let a = random_raster(50, 100, 0.02, 9);
        let b = random_raster(50, 100, 0.3, 10);
        let dec = |r: &SpikeRaster| {
            crate::codec::compress(r, crate::codec::CompressionFactor::new(2).unwrap())
                .payload_bits()
        };
        assert_eq!(dec(&a), dec(&b), "decimation: fixed budget");
        assert_ne!(
            RleRaster::encode(&a).payload_bits(),
            RleRaster::encode(&b).payload_bits(),
            "rle: content-dependent"
        );
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let r = random_raster(4, 20, 0.3, 11);
        let mut rle = RleRaster::encode(&r);
        // Make every byte a continuation byte: the varint never terminates.
        rle.payload.iter_mut().for_each(|b| *b |= 0x80);
        assert!(rle.decode().is_err());
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let (back, used) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
        assert!(read_varint(&[0x80]).is_err(), "truncated varint");
    }
}
