//! Spike-train substrate for the Replay4NCL reproduction.
//!
//! Everything the latent-replay pipeline stores, moves or measures is a
//! *spike raster*: a binary `neurons x timesteps` matrix. This crate
//! provides:
//!
//! * [`SpikeRaster`] — a bit-packed, time-major raster with cheap per-step
//!   active-neuron iteration (the access pattern of the event-driven SNN
//!   forward pass);
//! * [`codec`] — the compression/decompression mechanism of the paper's
//!   Fig. 7 (frame decimation / zero re-expansion), plus size accounting;
//! * [`resample`] — temporal re-binning used for timestep optimization
//!   (Section III-A), with several strategies;
//! * [`metrics`] — spike counts, rates and mean spike times (the quantity
//!   driving the paper's adaptive threshold, Alg. 1);
//! * [`memory`] — bit-exact latent-memory accounting (Fig. 12);
//! * [`encode`] — Poisson-rate and time-to-first-spike encoders for turning
//!   analog vectors into rasters.
//!
//! # Example
//!
//! ```
//! use ncl_spike::{SpikeRaster, codec::{self, CompressionFactor}};
//!
//! # fn main() -> Result<(), ncl_spike::SpikeError> {
//! let mut raster = SpikeRaster::new(4, 10);
//! raster.set(2, 5, true);
//! let compressed = codec::compress(&raster, CompressionFactor::new(2)?);
//! assert_eq!(compressed.stored_steps(), 5);
//! let restored = compressed.decompress();
//! assert_eq!(restored.steps(), 10);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod encode;
pub mod error;
pub mod events;
pub mod memory;
pub mod metrics;
pub mod raster;
pub mod resample;
pub mod rle;

pub use error::SpikeError;
pub use events::SpikeEvent;
pub use raster::SpikeRaster;
