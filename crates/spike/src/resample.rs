//! Temporal re-binning of spike rasters.
//!
//! The paper's timestep optimization (Section III-A) runs the network at a
//! reduced timestep count T* < T. Event data recorded at T timesteps must
//! then be re-binned to T* bins. How bins aggregate matters:
//!
//! * [`ResampleStrategy::Decimate`] keeps one frame per bin (what the
//!   Fig. 7 codec does) — lossy, drops most spikes at high ratios;
//! * [`ResampleStrategy::OrBins`] ORs all frames of a bin — preserves
//!   *whether* a neuron fired but saturates counts;
//! * [`ResampleStrategy::CountAtLeast`] fires when a bin contains at least
//!   `m` spikes — a denoising middle ground.
//!
//! The accuracy degradation the paper observes under aggressive timestep
//! reduction (Fig. 2(b), Fig. 8) is the information loss this module makes
//! explicit.

use serde::{Deserialize, Serialize};

use crate::error::SpikeError;
use crate::raster::SpikeRaster;

/// How the frames falling into one target bin are aggregated.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResampleStrategy {
    /// Keep only the first frame of each bin (frame decimation).
    Decimate,
    /// OR all frames of each bin.
    #[default]
    OrBins,
    /// Fire if the bin contains at least this many spikes of the neuron.
    CountAtLeast(u32),
}

/// Re-bins `raster` to `target_steps` timesteps.
///
/// Source frames are partitioned into `target_steps` contiguous bins of
/// near-equal width (`ceil`/`floor` mix, covering every source frame
/// exactly once).
///
/// # Errors
///
/// Returns [`SpikeError::InvalidParameter`] if `target_steps == 0`, or if
/// `target_steps > raster.steps()` (upsampling is not meaningful for
/// event data), or if a `CountAtLeast` threshold of `0` is given.
pub fn resample(
    raster: &SpikeRaster,
    target_steps: usize,
    strategy: ResampleStrategy,
) -> Result<SpikeRaster, SpikeError> {
    if target_steps == 0 {
        return Err(SpikeError::InvalidParameter {
            what: "target_steps",
            detail: "must be at least 1".into(),
        });
    }
    if target_steps > raster.steps() {
        return Err(SpikeError::InvalidParameter {
            what: "target_steps",
            detail: format!(
                "cannot upsample: target {} exceeds source {}",
                target_steps,
                raster.steps()
            ),
        });
    }
    if let ResampleStrategy::CountAtLeast(0) = strategy {
        return Err(SpikeError::InvalidParameter {
            what: "count threshold",
            detail: "must be at least 1".into(),
        });
    }

    let src_steps = raster.steps();
    let mut out = SpikeRaster::new(raster.neurons(), target_steps);
    for bin in 0..target_steps {
        // Proportional partition: bin b covers [b*S/T, (b+1)*S/T).
        let start = bin * src_steps / target_steps;
        let end = ((bin + 1) * src_steps / target_steps).max(start + 1);
        match strategy {
            ResampleStrategy::Decimate => {
                out.copy_step_from(bin, raster, start)?;
            }
            ResampleStrategy::OrBins => {
                for t in start..end {
                    out.or_step_from(bin, raster, t)?;
                }
            }
            ResampleStrategy::CountAtLeast(m) => {
                let mut counts = vec![0u32; raster.neurons()];
                for t in start..end {
                    for n in raster.active_at(t) {
                        counts[n] += 1;
                    }
                }
                for (n, &c) in counts.iter().enumerate() {
                    if c >= m {
                        out.set(n, bin, true);
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(neurons: usize, steps: usize) -> SpikeRaster {
        SpikeRaster::from_fn(neurons, steps, |n, t| (n + t) % 2 == 0)
    }

    #[test]
    fn decimate_keeps_first_of_bin() {
        let r = SpikeRaster::from_fn(1, 10, |_, t| t % 2 == 0); // spikes at even t
        let d = resample(&r, 5, ResampleStrategy::Decimate).unwrap();
        // Bins [0,2),[2,4)... first frame of each bin is even => all fire.
        assert_eq!(d.total_spikes(), 5);
        let r2 = SpikeRaster::from_fn(1, 10, |_, t| t % 2 == 1); // odd t only
        let d2 = resample(&r2, 5, ResampleStrategy::Decimate).unwrap();
        assert_eq!(d2.total_spikes(), 0, "decimation drops off-grid spikes");
    }

    #[test]
    fn or_bins_preserves_any_activity() {
        let r = SpikeRaster::from_fn(1, 10, |_, t| t == 3);
        let d = resample(&r, 5, ResampleStrategy::OrBins).unwrap();
        assert_eq!(d.total_spikes(), 1);
        assert!(d.get(0, 1)); // t=3 falls in bin [2,4)
    }

    #[test]
    fn count_at_least_filters_sparse_bins() {
        // Two spikes in bin 0, one in bin 1.
        let mut r = SpikeRaster::new(1, 10);
        r.set(0, 0, true);
        r.set(0, 1, true);
        r.set(0, 7, true);
        let d = resample(&r, 2, ResampleStrategy::CountAtLeast(2)).unwrap();
        assert!(d.get(0, 0));
        assert!(!d.get(0, 1));
    }

    #[test]
    fn identity_resample_with_or_is_lossless() {
        let r = checker(6, 12);
        let d = resample(&r, 12, ResampleStrategy::OrBins).unwrap();
        assert_eq!(d, r);
        let d = resample(&r, 12, ResampleStrategy::Decimate).unwrap();
        assert_eq!(d, r);
    }

    #[test]
    fn non_divisible_ratio_covers_all_frames() {
        let r = SpikeRaster::from_fn(2, 10, |_, _| true);
        let d = resample(&r, 3, ResampleStrategy::OrBins).unwrap();
        assert_eq!(d.steps(), 3);
        assert_eq!(d.total_spikes(), 6, "all bins see activity");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let r = checker(2, 8);
        assert!(resample(&r, 0, ResampleStrategy::OrBins).is_err());
        assert!(resample(&r, 9, ResampleStrategy::OrBins).is_err());
        assert!(resample(&r, 4, ResampleStrategy::CountAtLeast(0)).is_err());
    }

    #[test]
    fn information_loss_ordering() {
        // Dense raster: decimation to 1/5 keeps at most 1/5 of frames,
        // OR keeps per-bin activity. So OR retains >= spikes of decimate.
        let r = checker(20, 100);
        let dec = resample(&r, 20, ResampleStrategy::Decimate).unwrap();
        let orr = resample(&r, 20, ResampleStrategy::OrBins).unwrap();
        assert!(orr.total_spikes() >= dec.total_spikes());
        // And aggressive reduction loses more than mild reduction (decimate).
        let mild = resample(&r, 50, ResampleStrategy::Decimate).unwrap();
        assert!(mild.total_spikes() >= dec.total_spikes());
    }

    #[test]
    fn default_strategy_is_or() {
        assert_eq!(ResampleStrategy::default(), ResampleStrategy::OrBins);
    }
}
