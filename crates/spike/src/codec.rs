//! The latent-replay compression codec of the paper (Fig. 7).
//!
//! The mechanism — adopted by both SpikingLR and Replay4NCL — is temporal
//! **frame decimation**: compression keeps every `c`-th timestep frame of
//! the raster (`compressed[t] = original[c*t]`), and decompression
//! re-expands by inserting `c − 1` zero frames after every stored frame.
//! The paper's Fig. 7 bit pattern
//! (`1101 0100 1011 10 → 1000 111 → 1000 0000 1010 10`) is exactly this
//! scheme with `c = 2`; a unit test below checks that pattern verbatim.
//!
//! Decimation is lossy (odd frames are discarded) — that information loss
//! is precisely what the paper's parameter adjustments (Section III-B)
//! compensate for.

use serde::{Deserialize, Serialize};

use crate::error::SpikeError;
use crate::raster::SpikeRaster;

/// A validated compression factor (`>= 1`); `1` means "store verbatim".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompressionFactor(u32);

impl CompressionFactor {
    /// Identity compression (factor 1).
    pub const IDENTITY: CompressionFactor = CompressionFactor(1);

    /// Creates a compression factor.
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::InvalidParameter`] if `factor == 0`.
    pub fn new(factor: u32) -> Result<Self, SpikeError> {
        if factor == 0 {
            return Err(SpikeError::InvalidParameter {
                what: "compression factor",
                detail: "must be at least 1".into(),
            });
        }
        Ok(CompressionFactor(factor))
    }

    /// The raw factor value.
    #[must_use]
    pub fn get(self) -> u32 {
        self.0
    }
}

impl Default for CompressionFactor {
    fn default() -> Self {
        CompressionFactor::IDENTITY
    }
}

/// A compressed latent-replay raster: decimated frames plus the metadata
/// needed to re-expand it.
///
/// # Example
///
/// ```
/// use ncl_spike::{SpikeRaster, codec::{self, CompressionFactor}};
///
/// # fn main() -> Result<(), ncl_spike::SpikeError> {
/// let raster = SpikeRaster::from_fn(2, 8, |n, t| t % 2 == 0 && n == 0);
/// let c = codec::compress(&raster, CompressionFactor::new(2)?);
/// assert_eq!(c.stored_steps(), 4);
/// assert_eq!(c.payload_bits(), 8); // 2 neurons x 4 frames
/// let back = c.decompress();
/// assert_eq!(back.steps(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedRaster {
    frames: SpikeRaster,
    original_steps: usize,
    factor: CompressionFactor,
}

impl CompressedRaster {
    /// Reassembles a compressed raster from stored parts (frames that were
    /// produced by [`compress`], the original step count and the factor) —
    /// used by replay buffers that persist the three fields separately.
    ///
    /// # Errors
    ///
    /// Returns [`SpikeError::InvalidParameter`] if the frame count does not
    /// equal `ceil(original_steps / factor)`.
    pub fn from_parts(
        frames: SpikeRaster,
        original_steps: usize,
        factor: CompressionFactor,
    ) -> Result<Self, SpikeError> {
        let expected = original_steps.div_ceil(factor.get() as usize);
        if frames.steps() != expected {
            return Err(SpikeError::InvalidParameter {
                what: "compressed frame count",
                detail: format!(
                    "expected {expected} frames for {original_steps} steps at factor {}, got {}",
                    factor.get(),
                    frames.steps()
                ),
            });
        }
        Ok(CompressedRaster {
            frames,
            original_steps,
            factor,
        })
    }

    /// Number of neurons.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.frames.neurons()
    }

    /// Number of stored (decimated) frames.
    #[must_use]
    pub fn stored_steps(&self) -> usize {
        self.frames.steps()
    }

    /// Timestep count of the original raster.
    #[must_use]
    pub fn original_steps(&self) -> usize {
        self.original_steps
    }

    /// The compression factor used.
    #[must_use]
    pub fn factor(&self) -> CompressionFactor {
        self.factor
    }

    /// Borrow of the stored frames (the decimated raster itself).
    ///
    /// Replay4NCL feeds these frames to the network *directly* — replaying
    /// at the reduced timestep — while SpikingLR decompresses back to the
    /// original length first.
    #[must_use]
    pub fn frames(&self) -> &SpikeRaster {
        &self.frames
    }

    /// Consumes the compressed raster, returning the stored frames.
    #[must_use]
    pub fn into_frames(self) -> SpikeRaster {
        self.frames
    }

    /// Exact payload size in bits (`neurons * stored_steps`) — the quantity
    /// the paper's latent-memory comparison (Fig. 12) measures.
    #[must_use]
    pub fn payload_bits(&self) -> u64 {
        self.frames.payload_bits()
    }

    /// Re-expands to `original_steps` by inserting zero frames
    /// (the Fig. 7 decompression).
    #[must_use]
    pub fn decompress(&self) -> SpikeRaster {
        let mut out = SpikeRaster::new(self.frames.neurons(), self.original_steps);
        let c = self.factor.get() as usize;
        for f in 0..self.frames.steps() {
            let t = f * c;
            if t < self.original_steps {
                out.copy_step_from(t, &self.frames, f)
                    .expect("shapes match by construction");
            }
        }
        out
    }
}

/// Compresses a raster by keeping every `factor`-th frame.
///
/// The number of stored frames is `ceil(steps / factor)`, so every raster —
/// including lengths not divisible by the factor — round-trips to its
/// original step count through [`CompressedRaster::decompress`].
#[must_use]
pub fn compress(raster: &SpikeRaster, factor: CompressionFactor) -> CompressedRaster {
    let c = factor.get() as usize;
    let stored = raster.steps().div_ceil(c);
    let mut frames = SpikeRaster::new(raster.neurons(), stored);
    for f in 0..stored {
        frames
            .copy_step_from(f, raster, f * c)
            .expect("shapes match by construction");
    }
    CompressedRaster {
        frames,
        original_steps: raster.steps(),
        factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a 1-neuron raster from a bit string.
    fn train(bits: &[u8]) -> SpikeRaster {
        SpikeRaster::from_fn(1, bits.len(), |_, t| bits[t] == 1)
    }

    fn bits(r: &SpikeRaster) -> Vec<u8> {
        (0..r.steps()).map(|t| u8::from(r.get(0, t))).collect()
    }

    #[test]
    fn paper_fig7_bit_pattern() {
        // Original data from Fig. 7 of the paper:
        let original = train(&[1, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0]);
        let c = compress(&original, CompressionFactor::new(2).unwrap());
        // Compressed data from Fig. 7:
        assert_eq!(bits(c.frames()), vec![1, 0, 0, 0, 1, 1, 1]);
        // Decompressed data from Fig. 7:
        let d = c.decompress();
        assert_eq!(bits(&d), vec![1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn identity_factor_is_lossless() {
        let original = train(&[1, 0, 1, 1, 0]);
        let c = compress(&original, CompressionFactor::IDENTITY);
        assert_eq!(c.stored_steps(), 5);
        assert_eq!(c.decompress(), original);
    }

    #[test]
    fn non_divisible_length_round_trips_shape() {
        let original = train(&[1, 0, 0, 1, 1]); // 5 steps, factor 2
        let c = compress(&original, CompressionFactor::new(2).unwrap());
        assert_eq!(c.stored_steps(), 3); // frames 0, 2, 4
        assert_eq!(bits(c.frames()), vec![1, 0, 1]);
        let d = c.decompress();
        assert_eq!(d.steps(), 5);
        assert_eq!(bits(&d), vec![1, 0, 0, 0, 1]);
    }

    #[test]
    fn compression_reduces_payload_bits() {
        let r = SpikeRaster::from_fn(50, 100, |n, t| (n + t) % 7 == 0);
        let c = compress(&r, CompressionFactor::new(2).unwrap());
        assert_eq!(c.payload_bits(), 50 * 50);
        assert_eq!(r.payload_bits(), 50 * 100);
        assert_eq!(c.neurons(), 50);
        assert_eq!(c.original_steps(), 100);
        assert_eq!(c.factor().get(), 2);
    }

    #[test]
    fn zero_factor_rejected() {
        assert!(CompressionFactor::new(0).is_err());
        assert_eq!(CompressionFactor::default(), CompressionFactor::IDENTITY);
    }

    #[test]
    fn decompressed_spikes_subset_of_original() {
        let r = SpikeRaster::from_fn(10, 30, |n, t| (n * 13 + t * 7) % 5 == 0);
        let c = compress(&r, CompressionFactor::new(3).unwrap());
        let d = c.decompress();
        for t in 0..30 {
            for n in 0..10 {
                if d.get(n, t) {
                    assert!(r.get(n, t), "decompression may only keep original spikes");
                }
            }
        }
        assert!(d.total_spikes() <= r.total_spikes());
    }

    #[test]
    fn from_parts_round_trips() {
        let r = SpikeRaster::from_fn(6, 11, |n, t| (n + t) % 4 == 0);
        let c = compress(&r, CompressionFactor::new(3).unwrap());
        let parts =
            CompressedRaster::from_parts(c.frames().clone(), c.original_steps(), c.factor())
                .unwrap();
        assert_eq!(parts, c);
        assert_eq!(parts.decompress(), c.decompress());
        // Wrong frame count rejected.
        let bad = SpikeRaster::new(6, 2);
        assert!(CompressedRaster::from_parts(bad, 11, CompressionFactor::new(3).unwrap()).is_err());
    }

    #[test]
    fn into_frames_returns_stored_raster() {
        let r = train(&[1, 0, 1, 0]);
        let c = compress(&r, CompressionFactor::new(2).unwrap());
        let frames = c.into_frames();
        assert_eq!(frames.steps(), 2);
        assert_eq!(bits(&frames), vec![1, 1]);
    }
}
