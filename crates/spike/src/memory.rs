//! Latent-memory accounting.
//!
//! The paper's Fig. 12 compares the *latent memory* — the bytes an embedded
//! device must reserve for stored latent-replay activations. This module
//! provides bit-exact accounting for raster payloads plus the per-sample
//! metadata a real store needs (label, shape), with an explicit alignment
//! policy, so the 20 %–21.88 % savings band of the paper can be reproduced
//! and explained.

use serde::{Deserialize, Serialize};

/// Byte-alignment policy of the latent store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Alignment {
    /// Count exact payload bits (idealized store).
    Bit,
    /// Round each sample up to whole bytes (packed byte store).
    #[default]
    Byte,
    /// Round each sample up to 32-bit words (word-addressed SRAM).
    Word32,
}

/// Size report for a single stored latent sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleFootprint {
    /// Raw raster payload bits (`neurons * stored_steps`).
    pub payload_bits: u64,
    /// Metadata bits (label + stored-steps field).
    pub metadata_bits: u64,
    /// Total bits after applying the alignment policy.
    pub aligned_bits: u64,
}

/// Per-sample metadata: a 16-bit label and a 16-bit frame count.
pub const METADATA_BITS: u64 = 32;

/// Computes the footprint of one latent sample.
#[must_use]
pub fn sample_footprint(payload_bits: u64, alignment: Alignment) -> SampleFootprint {
    let raw = payload_bits + METADATA_BITS;
    let aligned_bits = match alignment {
        Alignment::Bit => raw,
        Alignment::Byte => raw.div_ceil(8) * 8,
        Alignment::Word32 => raw.div_ceil(32) * 32,
    };
    SampleFootprint {
        payload_bits,
        metadata_bits: METADATA_BITS,
        aligned_bits,
    }
}

/// Total store footprint in bits for `samples` identical latent entries.
#[must_use]
pub fn store_bits(samples: usize, payload_bits_each: u64, alignment: Alignment) -> u64 {
    samples as u64 * sample_footprint(payload_bits_each, alignment).aligned_bits
}

/// Converts bits to kibibytes (for report printing).
#[must_use]
pub fn bits_to_kib(bits: u64) -> f64 {
    bits as f64 / 8.0 / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_alignment_is_exact() {
        let f = sample_footprint(100, Alignment::Bit);
        assert_eq!(f.aligned_bits, 132);
        assert_eq!(f.payload_bits, 100);
        assert_eq!(f.metadata_bits, METADATA_BITS);
    }

    #[test]
    fn byte_alignment_rounds_up() {
        // 100 + 32 = 132 bits -> 17 bytes = 136 bits.
        assert_eq!(sample_footprint(100, Alignment::Byte).aligned_bits, 136);
        // Already aligned stays put: 96 + 32 = 128 bits = 16 bytes.
        assert_eq!(sample_footprint(96, Alignment::Byte).aligned_bits, 128);
    }

    #[test]
    fn word_alignment_rounds_up() {
        assert_eq!(sample_footprint(100, Alignment::Word32).aligned_bits, 160);
        assert_eq!(sample_footprint(96, Alignment::Word32).aligned_bits, 128);
    }

    #[test]
    fn paper_headline_saving_is_twenty_percent() {
        // SpikingLR: T=100 compressed x2 -> 50 frames; Replay4NCL: 40 frames.
        // At insertion layer 3 (50 neurons), per-sample payloads:
        let sota = 50u64 * 50; // 2500 bits
        let ours = 50u64 * 40; // 2000 bits
        let saving = 1.0 - ours as f64 / sota as f64;
        assert!((saving - 0.20).abs() < 1e-12);
        // With store-level accounting the saving stays in the paper's
        // 20 %-21.88 % band for the byte-aligned policy.
        let s_sota = store_bits(19, sota, Alignment::Byte);
        let s_ours = store_bits(19, ours, Alignment::Byte);
        let s_saving = 1.0 - s_ours as f64 / s_sota as f64;
        assert!((0.18..=0.23).contains(&s_saving), "saving was {s_saving}");
    }

    #[test]
    fn store_bits_scales_linearly() {
        let one = store_bits(1, 1000, Alignment::Byte);
        let ten = store_bits(10, 1000, Alignment::Byte);
        assert_eq!(ten, 10 * one);
        assert_eq!(store_bits(0, 1000, Alignment::Byte), 0);
    }

    #[test]
    fn kib_conversion() {
        assert!((bits_to_kib(8 * 1024) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_alignment_is_byte() {
        assert_eq!(Alignment::default(), Alignment::Byte);
    }
}
