//! Error type for spike-raster operations.

use std::error::Error;
use std::fmt;

/// Error returned by fallible spike-train operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpikeError {
    /// An index was outside the raster's `neurons x steps` bounds.
    IndexOutOfBounds {
        /// Offending neuron index.
        neuron: usize,
        /// Offending timestep index.
        step: usize,
        /// Raster neuron count.
        neurons: usize,
        /// Raster step count.
        steps: usize,
    },
    /// Two rasters that must agree in shape did not.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Expected `neurons x steps`.
        expected: (usize, usize),
        /// Actual `neurons x steps`.
        actual: (usize, usize),
    },
    /// A parameter (compression factor, bin width, …) was invalid.
    InvalidParameter {
        /// Name of the parameter.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for SpikeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpikeError::IndexOutOfBounds {
                neuron,
                step,
                neurons,
                steps,
            } => write!(
                f,
                "index ({neuron}, {step}) out of bounds for {neurons}x{steps} raster"
            ),
            SpikeError::ShapeMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "{op}: raster shape mismatch (expected {}x{}, got {}x{})",
                expected.0, expected.1, actual.0, actual.1
            ),
            SpikeError::InvalidParameter { what, detail } => {
                write!(f, "invalid {what}: {detail}")
            }
        }
    }
}

impl Error for SpikeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SpikeError::IndexOutOfBounds {
            neuron: 9,
            step: 3,
            neurons: 4,
            steps: 2,
        };
        assert!(e.to_string().contains("(9, 3)"));
        let e = SpikeError::ShapeMismatch {
            op: "or",
            expected: (2, 2),
            actual: (3, 2),
        };
        assert!(e.to_string().contains("2x2"));
        let e = SpikeError::InvalidParameter {
            what: "factor",
            detail: "zero".into(),
        };
        assert!(e.to_string().contains("factor"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SpikeError>();
    }
}
