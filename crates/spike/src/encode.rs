//! Encoders that turn analog feature vectors into spike rasters.
//!
//! The synthetic SHD-like generator produces event data directly, but a
//! released SNN library also needs standard encoders for non-event inputs;
//! both classic schemes are provided:
//!
//! * [`poisson_encode`] — rate coding: each feature value becomes a firing
//!   probability per timestep;
//! * [`latency_encode`] — time-to-first-spike coding: larger values fire
//!   earlier, once.

use ncl_tensor::Rng;

use crate::error::SpikeError;
use crate::raster::SpikeRaster;

/// Poisson rate encoding: neuron `i` fires at each timestep with
/// probability `values[i] * max_rate` (clamped to `[0, 1]`).
///
/// # Errors
///
/// Returns [`SpikeError::InvalidParameter`] if `steps == 0` or `max_rate`
/// is not in `(0, 1]`.
pub fn poisson_encode(
    values: &[f32],
    steps: usize,
    max_rate: f64,
    rng: &mut Rng,
) -> Result<SpikeRaster, SpikeError> {
    if steps == 0 {
        return Err(SpikeError::InvalidParameter {
            what: "steps",
            detail: "must be at least 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&max_rate) || max_rate == 0.0 {
        return Err(SpikeError::InvalidParameter {
            what: "max_rate",
            detail: format!("must be in (0, 1], got {max_rate}"),
        });
    }
    let mut raster = SpikeRaster::new(values.len(), steps);
    for (n, &v) in values.iter().enumerate() {
        let p = (f64::from(v) * max_rate).clamp(0.0, 1.0);
        if p == 0.0 {
            continue;
        }
        for t in 0..steps {
            if rng.bernoulli(p) {
                raster.set(n, t, true);
            }
        }
    }
    Ok(raster)
}

/// Time-to-first-spike (latency) encoding: neuron `i` fires exactly once at
/// timestep `round((1 - clamp(values[i])) * (steps - 1))`; zero-valued
/// features stay silent.
///
/// # Errors
///
/// Returns [`SpikeError::InvalidParameter`] if `steps == 0`.
pub fn latency_encode(values: &[f32], steps: usize) -> Result<SpikeRaster, SpikeError> {
    if steps == 0 {
        return Err(SpikeError::InvalidParameter {
            what: "steps",
            detail: "must be at least 1".into(),
        });
    }
    let mut raster = SpikeRaster::new(values.len(), steps);
    for (n, &v) in values.iter().enumerate() {
        let v = v.clamp(0.0, 1.0);
        if v <= 0.0 {
            continue;
        }
        let t = ((1.0 - v) * (steps - 1) as f32).round() as usize;
        raster.set(n, t.min(steps - 1), true);
    }
    Ok(raster)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_tracks_value() {
        let mut rng = Rng::seed_from_u64(42);
        let r = poisson_encode(&[1.0, 0.5, 0.0], 4000, 0.5, &mut rng).unwrap();
        let rates = crate::metrics::firing_rates(&r);
        assert!((rates[0] - 0.5).abs() < 0.03, "rate was {}", rates[0]);
        assert!((rates[1] - 0.25).abs() < 0.03, "rate was {}", rates[1]);
        assert_eq!(rates[2], 0.0);
    }

    #[test]
    fn poisson_rejects_bad_parameters() {
        let mut rng = Rng::seed_from_u64(0);
        assert!(poisson_encode(&[0.5], 0, 0.5, &mut rng).is_err());
        assert!(poisson_encode(&[0.5], 10, 0.0, &mut rng).is_err());
        assert!(poisson_encode(&[0.5], 10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn latency_larger_values_fire_earlier() {
        let r = latency_encode(&[1.0, 0.5, 0.1], 11).unwrap();
        let t_of = |n: usize| (0..11).find(|&t| r.get(n, t)).unwrap();
        assert_eq!(t_of(0), 0);
        assert_eq!(t_of(1), 5);
        assert_eq!(t_of(2), 9);
        // One spike per active neuron.
        assert_eq!(r.total_spikes(), 3);
    }

    #[test]
    fn latency_zero_value_is_silent() {
        let r = latency_encode(&[0.0, -1.0], 5).unwrap();
        assert_eq!(r.total_spikes(), 0);
        assert!(latency_encode(&[1.0], 0).is_err());
    }

    #[test]
    fn latency_clamps_above_one() {
        let r = latency_encode(&[5.0], 10).unwrap();
        assert!(r.get(0, 0));
        assert_eq!(r.total_spikes(), 1);
    }
}
