//! Event-list view of spike data.
//!
//! Event-based sensors (and the SHD dataset the paper uses) deliver spikes
//! as `(neuron, time)` events; rasters are the binned view. This module
//! converts between the two.

use serde::{Deserialize, Serialize};

use crate::error::SpikeError;
use crate::raster::SpikeRaster;

/// A single spike event: neuron `neuron` fired at timestep `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpikeEvent {
    /// Timestep of the event (ordered first so derived `Ord` sorts by time).
    pub t: u32,
    /// Index of the neuron that fired.
    pub neuron: u32,
}

impl SpikeEvent {
    /// Creates an event.
    #[must_use]
    pub fn new(neuron: u32, t: u32) -> Self {
        SpikeEvent { t, neuron }
    }
}

/// Converts a raster into a time-sorted event list.
#[must_use]
pub fn raster_to_events(raster: &SpikeRaster) -> Vec<SpikeEvent> {
    let mut events = Vec::with_capacity(raster.total_spikes());
    for t in 0..raster.steps() {
        for n in raster.active_at(t) {
            events.push(SpikeEvent::new(n as u32, t as u32));
        }
    }
    events
}

/// Builds a raster from an event list.
///
/// # Errors
///
/// Returns [`SpikeError::IndexOutOfBounds`] if any event lies outside
/// `neurons x steps`.
pub fn events_to_raster(
    events: &[SpikeEvent],
    neurons: usize,
    steps: usize,
) -> Result<SpikeRaster, SpikeError> {
    let mut raster = SpikeRaster::new(neurons, steps);
    for e in events {
        let (n, t) = (e.neuron as usize, e.t as usize);
        if n >= neurons || t >= steps {
            return Err(SpikeError::IndexOutOfBounds {
                neuron: n,
                step: t,
                neurons,
                steps,
            });
        }
        raster.set(n, t, true);
    }
    Ok(raster)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_events() {
        let mut r = SpikeRaster::new(8, 6);
        r.set(1, 0, true);
        r.set(7, 5, true);
        r.set(3, 2, true);
        let events = raster_to_events(&r);
        assert_eq!(events.len(), 3);
        // Sorted by time first.
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
        let back = events_to_raster(&events, 8, 6).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn events_out_of_bounds_rejected() {
        let events = [SpikeEvent::new(9, 0)];
        assert!(events_to_raster(&events, 8, 6).is_err());
        let events = [SpikeEvent::new(0, 6)];
        assert!(events_to_raster(&events, 8, 6).is_err());
    }

    #[test]
    fn duplicate_events_collapse() {
        let events = [SpikeEvent::new(2, 3), SpikeEvent::new(2, 3)];
        let r = events_to_raster(&events, 4, 4).unwrap();
        assert_eq!(r.total_spikes(), 1);
    }

    #[test]
    fn ordering_is_time_major() {
        let a = SpikeEvent::new(5, 1);
        let b = SpikeEvent::new(0, 2);
        assert!(a < b);
    }
}
