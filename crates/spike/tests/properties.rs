//! Property-based tests for the spike substrate: codec round-trips, raster
//! bit operations and resampling invariants.

use ncl_spike::codec::{self, CompressionFactor};
use ncl_spike::events::{events_to_raster, raster_to_events};
use ncl_spike::memory::{sample_footprint, Alignment};
use ncl_spike::resample::{resample, ResampleStrategy};
use ncl_spike::SpikeRaster;
use proptest::prelude::*;

/// Strategy: a random raster with bounded dimensions and density.
fn raster_strategy(max_neurons: usize, max_steps: usize) -> impl Strategy<Value = SpikeRaster> {
    (1..=max_neurons, 1..=max_steps, any::<u64>()).prop_map(|(n, s, seed)| {
        let mut rng = ncl_tensor::Rng::seed_from_u64(seed);
        SpikeRaster::from_fn(n, s, |_, _| rng.bernoulli(0.2))
    })
}

proptest! {
    #[test]
    fn event_round_trip(r in raster_strategy(80, 40)) {
        let events = raster_to_events(&r);
        prop_assert_eq!(events.len(), r.total_spikes());
        let back = events_to_raster(&events, r.neurons(), r.steps()).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn codec_shape_round_trip(r in raster_strategy(40, 60), factor in 1u32..6) {
        let c = codec::compress(&r, CompressionFactor::new(factor).unwrap());
        prop_assert_eq!(c.stored_steps(), r.steps().div_ceil(factor as usize));
        let d = c.decompress();
        prop_assert_eq!(d.steps(), r.steps());
        prop_assert_eq!(d.neurons(), r.neurons());
    }

    #[test]
    fn codec_identity_factor_lossless(r in raster_strategy(40, 60)) {
        let c = codec::compress(&r, CompressionFactor::IDENTITY);
        prop_assert_eq!(c.decompress(), r);
    }

    #[test]
    fn codec_never_invents_spikes(r in raster_strategy(30, 50), factor in 1u32..5) {
        let d = codec::compress(&r, CompressionFactor::new(factor).unwrap()).decompress();
        for t in 0..r.steps() {
            for n in 0..r.neurons() {
                if d.get(n, t) {
                    prop_assert!(r.get(n, t));
                }
            }
        }
    }

    #[test]
    fn codec_keeps_kept_frames_exact(r in raster_strategy(30, 50), factor in 1u32..5) {
        let c = factor as usize;
        let d = codec::compress(&r, CompressionFactor::new(factor).unwrap()).decompress();
        // Every kept frame (t divisible by c) survives exactly.
        for t in (0..r.steps()).step_by(c) {
            for n in 0..r.neurons() {
                prop_assert_eq!(d.get(n, t), r.get(n, t));
            }
        }
    }

    #[test]
    fn codec_payload_monotone_in_factor(r in raster_strategy(30, 60)) {
        let mut prev = u64::MAX;
        for factor in 1..=4u32 {
            let bits = codec::compress(&r, CompressionFactor::new(factor).unwrap())
                .payload_bits();
            prop_assert!(bits <= prev);
            prev = bits;
        }
    }

    #[test]
    fn resample_or_preserves_activity(r in raster_strategy(30, 60), denom in 1usize..6) {
        let target = (r.steps() / denom).max(1);
        let d = resample(&r, target, ResampleStrategy::OrBins).unwrap();
        // OR-binning keeps exactly the per-neuron "fired at all" property.
        for n in 0..r.neurons() {
            let src_any = (0..r.steps()).any(|t| r.get(n, t));
            let dst_any = (0..d.steps()).any(|t| d.get(n, t));
            prop_assert_eq!(src_any, dst_any);
        }
        // And never grows the spike count.
        prop_assert!(d.total_spikes() <= r.total_spikes());
    }

    #[test]
    fn resample_decimate_loses_at_least_as_much_as_or(
        r in raster_strategy(30, 60), denom in 1usize..6
    ) {
        let target = (r.steps() / denom).max(1);
        let dec = resample(&r, target, ResampleStrategy::Decimate).unwrap();
        let orr = resample(&r, target, ResampleStrategy::OrBins).unwrap();
        prop_assert!(dec.total_spikes() <= orr.total_spikes());
    }

    #[test]
    fn footprint_alignment_ordering(bits in 0u64..100_000) {
        let exact = sample_footprint(bits, Alignment::Bit).aligned_bits;
        let byte = sample_footprint(bits, Alignment::Byte).aligned_bits;
        let word = sample_footprint(bits, Alignment::Word32).aligned_bits;
        prop_assert!(exact <= byte);
        prop_assert!(byte <= word);
        prop_assert!(word - exact < 32);
        prop_assert_eq!(byte % 8, 0);
        prop_assert_eq!(word % 32, 0);
    }

    #[test]
    fn rle_round_trips_any_raster(r in raster_strategy(60, 60)) {
        let rle = ncl_spike::rle::RleRaster::encode(&r);
        prop_assert_eq!(rle.decode().unwrap(), r);
    }

    /// Encode → corrupt → decode never silently succeeds: if the decoder
    /// returns `Ok` at all on a tampered payload, the result must equal
    /// the original raster (i.e. the corruption was provably benign) —
    /// it must never hand back a *wrong* raster. Exercises byte flips,
    /// truncations, extensions and offset-table damage.
    #[test]
    fn rle_decode_never_silently_misdecodes(
        r in raster_strategy(30, 40),
        mode in 0u8..4,
        pos in any::<u64>(),
        xor in 1u8..=255,
    ) {
        use ncl_spike::rle::RleRaster;
        let clean = RleRaster::encode(&r);
        let mut payload = clean.payload().to_vec();
        let mut offsets = clean.offsets().to_vec();
        match mode {
            // Flip bits of one payload byte.
            0 if !payload.is_empty() => {
                let i = (pos % payload.len() as u64) as usize;
                payload[i] ^= xor;
            }
            // Truncate the payload.
            1 if !payload.is_empty() => {
                let keep = (pos % payload.len() as u64) as usize;
                payload.truncate(keep);
            }
            // Append garbage.
            2 => payload.push(xor),
            // Skew one offset-table entry.
            _ if !offsets.is_empty() => {
                let i = (pos % offsets.len() as u64) as usize;
                offsets[i] = offsets[i].wrapping_add(u32::from(xor));
            }
            _ => {}
        }
        let tampered = RleRaster::from_parts(r.neurons(), r.steps(), payload, offsets);
        match tampered.decode() {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(
                decoded, r,
                "corrupted payload decoded to a wrong raster instead of an error"
            ),
        }
    }

    #[test]
    fn spikes_at_sums_to_total(r in raster_strategy(60, 40)) {
        let sum: usize = (0..r.steps()).map(|t| r.spikes_at(t)).sum();
        prop_assert_eq!(sum, r.total_spikes());
    }

    #[test]
    fn active_at_agrees_with_get(r in raster_strategy(70, 20)) {
        for t in 0..r.steps() {
            let from_iter: Vec<usize> = r.active_at(t).collect();
            let from_get: Vec<usize> =
                (0..r.neurons()).filter(|&n| r.get(n, t)).collect();
            prop_assert_eq!(from_iter, from_get);
        }
    }
}
