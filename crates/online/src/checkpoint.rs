//! Atomic daemon checkpoints.
//!
//! A checkpoint is everything `ncl-learnd` needs to resume mid-stream
//! **bit-identically**: the model bytes (the `ncl_snn::serialize`
//! format), the replay buffer with every latent entry RLE-encoded, the
//! stream cursor, the daemon version counter and the rolling digest of
//! the applied-event log. The file format is little-endian with a
//! versioned magic and a trailing CRC-32 over everything before it, so a
//! *single corrupted byte anywhere* fails the restore — a damaged
//! checkpoint can never load a wrong model or a wrong buffer silently.
//! Writes go through a uniquely named temp file plus rename (the
//! `serialize::to_file` discipline), so a crash mid-write leaves the
//! previous checkpoint intact.
//!
//! RLE is the right codec here: latent rasters are sparse, the encoding
//! is exact (unlike the lossy decimation codec the *store* uses for its
//! memory budget), and the strict [`RleRaster::decode`] turns any payload
//! damage that slips past the CRC into a hard error.

use bytes::{Buf, BufMut};
use ncl_snn::{serialize, Network};
use ncl_spike::codec::CompressionFactor;
use ncl_spike::memory::Alignment;
use ncl_spike::rle::RleRaster;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};

use crate::error::OnlineError;

/// Magic + version prefix of the checkpoint format.
pub const MAGIC: &[u8; 8] = b"NCLOLCK1";

/// The resumable daemon state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Daemon model version (1 = the pretrained model, +1 per increment).
    pub version: u64,
    /// Next stream sequence number to consume.
    pub cursor: u64,
    /// Rolling FNV-1a digest of the applied-event log.
    pub event_digest: u64,
    /// Digest of every determinism-relevant daemon config field (see
    /// `OnlineConfig::determinism_digest`). A resume with a drifted
    /// config — different seed, epochs, method, thresholds, budget —
    /// would silently break the bit-identical-resume contract, so the
    /// digest is stored and checked instead.
    pub config_digest: u64,
    /// Classes learned so far, sorted.
    pub known_classes: Vec<u16>,
    /// The serving network.
    pub network: Network,
    /// The latent replay store.
    pub buffer: LatentReplayBuffer,
    /// Captured novel-class latents still below the arrival threshold —
    /// persisted so a checkpoint taken mid-arrival resumes to exactly the
    /// same state an uninterrupted run reaches (the cursor has already
    /// passed these events; dropping them would change when the next
    /// increment fires).
    pub pending: Vec<(u16, ncl_spike::SpikeRaster)>,
}

/// CRC-32 (IEEE, reflected). Detects every single-byte corruption, which
/// is the guarantee the corrupt-one-byte restore tests pin down.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn alignment_tag(alignment: Alignment) -> u8 {
    match alignment {
        Alignment::Bit => 0,
        Alignment::Byte => 1,
        Alignment::Word32 => 2,
    }
}

fn alignment_from_tag(tag: u8) -> Result<Alignment, OnlineError> {
    match tag {
        0 => Ok(Alignment::Bit),
        1 => Ok(Alignment::Byte),
        2 => Ok(Alignment::Word32),
        other => Err(bad(format!("unknown alignment tag {other}"))),
    }
}

pub(crate) fn bad(detail: impl Into<String>) -> OnlineError {
    OnlineError::Checkpoint {
        detail: detail.into(),
    }
}

pub(crate) fn need(buf: &&[u8], n: usize, what: &str) -> Result<(), OnlineError> {
    if buf.remaining() < n {
        return Err(bad(format!("truncated while reading {what}")));
    }
    Ok(())
}

/// Encodes one latent entry (label, original steps, codec factor,
/// RLE-coded frames) — the per-entry wire format shared by the full
/// checkpoint and the checkpoint delta's store tail.
pub(crate) fn write_entry(buf: &mut Vec<u8>, entry: &LatentEntry) {
    buf.put_u32_le(u32::from(entry.label()));
    buf.put_u64_le(entry.original_steps() as u64);
    match entry.codec_factor() {
        Some(factor) => {
            buf.put_u8(1);
            buf.put_u32_le(factor.get());
        }
        None => {
            buf.put_u8(0);
            buf.put_u32_le(0);
        }
    }
    RleRaster::encode(entry.frames()).write_into(buf);
}

/// Decodes one latent entry written by [`write_entry`]; `i` labels the
/// entry in error messages.
pub(crate) fn read_entry(buf: &mut &[u8], i: u64) -> Result<LatentEntry, OnlineError> {
    need(buf, 4 + 8 + 1 + 4, "entry header")?;
    let raw_label = buf.get_u32_le();
    let label = u16::try_from(raw_label)
        .map_err(|_| bad(format!("entry {i}: label {raw_label} overflows u16")))?;
    let original_steps = buf.get_u64_le() as usize;
    let has_factor = buf.get_u8();
    let factor_raw = buf.get_u32_le();
    let codec_factor = match has_factor {
        0 => None,
        1 => Some(CompressionFactor::new(factor_raw).map_err(|e| bad(format!("entry {i}: {e}")))?),
        other => return Err(bad(format!("entry {i}: bad factor flag {other}"))),
    };
    let rle = RleRaster::read_from(buf).map_err(|e| bad(format!("entry {i} frames: {e}")))?;
    let frames = rle
        .decode()
        .map_err(|e| bad(format!("entry {i} frames: {e}")))?;
    LatentEntry::from_parts(frames, original_steps, codec_factor, label)
        .map_err(|e| bad(format!("entry {i}: {e}")))
}

/// Encodes one pending novel-class latent (label + RLE-coded raster).
pub(crate) fn write_pending(buf: &mut Vec<u8>, label: u16, raster: &ncl_spike::SpikeRaster) {
    buf.put_u32_le(u32::from(label));
    RleRaster::encode(raster).write_into(buf);
}

/// Decodes one pending latent written by [`write_pending`].
pub(crate) fn read_pending(
    buf: &mut &[u8],
    i: u64,
) -> Result<(u16, ncl_spike::SpikeRaster), OnlineError> {
    need(buf, 4, "pending label")?;
    let raw_label = buf.get_u32_le();
    let label = u16::try_from(raw_label)
        .map_err(|_| bad(format!("pending {i}: label {raw_label} overflows u16")))?;
    let rle = RleRaster::read_from(buf).map_err(|e| bad(format!("pending {i} frames: {e}")))?;
    let raster = rle
        .decode()
        .map_err(|e| bad(format!("pending {i} frames: {e}")))?;
    Ok((label, raster))
}

/// Borrowed view of the resumable state — what [`Checkpoint::to_bytes`]
/// encodes, without requiring the daemon to clone its model, store and
/// pending pool first. `OnlineLearner` encodes through this view on
/// every increment; the owned [`Checkpoint`] exists for restores and
/// tests.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointView<'a> {
    /// See [`Checkpoint::version`].
    pub version: u64,
    /// See [`Checkpoint::cursor`].
    pub cursor: u64,
    /// See [`Checkpoint::event_digest`].
    pub event_digest: u64,
    /// See [`Checkpoint::config_digest`].
    pub config_digest: u64,
    /// See [`Checkpoint::known_classes`].
    pub known_classes: &'a [u16],
    /// See [`Checkpoint::network`].
    pub network: &'a Network,
    /// See [`Checkpoint::buffer`].
    pub buffer: &'a LatentReplayBuffer,
    /// See [`Checkpoint::pending`].
    pub pending: &'a [(u16, ncl_spike::SpikeRaster)],
}

impl CheckpointView<'_> {
    /// Serializes the viewed state (magic, body, trailing CRC-32).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let model = serialize::to_bytes(self.network);
        let mut buf = Vec::with_capacity(128 + model.len());
        buf.put_slice(MAGIC);
        buf.put_u64_le(self.version);
        buf.put_u64_le(self.cursor);
        buf.put_u64_le(self.event_digest);
        buf.put_u64_le(self.config_digest);
        buf.put_u32_le(self.known_classes.len() as u32);
        for &c in self.known_classes {
            buf.put_u32_le(u32::from(c));
        }
        buf.put_u64_le(model.len() as u64);
        buf.put_slice(&model);

        // Replay buffer: policy, then each entry with RLE-coded frames.
        buf.put_u8(alignment_tag(self.buffer.alignment()));
        match self.buffer.capacity_bits() {
            Some(bits) => {
                buf.put_u8(1);
                buf.put_u64_le(bits);
            }
            None => {
                buf.put_u8(0);
                buf.put_u64_le(0);
            }
        }
        buf.put_u64_le(self.buffer.len() as u64);
        for entry in self.buffer {
            write_entry(&mut buf, entry);
        }

        // Pending novel-class latents (captured, below the threshold).
        buf.put_u64_le(self.pending.len() as u64);
        for (label, raster) in self.pending {
            write_pending(&mut buf, *label, raster);
        }

        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf
    }

    /// Writes the viewed state atomically — see [`Checkpoint::write`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_atomically(path, &self.to_bytes())
    }
}

impl Checkpoint {
    /// Borrowed view of this checkpoint (encodes without cloning).
    #[must_use]
    pub fn view(&self) -> CheckpointView<'_> {
        CheckpointView {
            version: self.version,
            cursor: self.cursor,
            event_digest: self.event_digest,
            config_digest: self.config_digest,
            known_classes: &self.known_classes,
            network: &self.network,
            buffer: &self.buffer,
            pending: &self.pending,
        }
    }

    /// Serializes the checkpoint (magic, body, trailing CRC-32).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.view().to_bytes()
    }

    /// Restores a checkpoint from [`to_bytes`] output.
    ///
    /// [`to_bytes`]: Checkpoint::to_bytes
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::Checkpoint`] for any malformed input: wrong
    /// magic, failed CRC, truncation, undecodable model bytes, corrupt
    /// RLE frames, inconsistent entry parts or an over-budget buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, OnlineError> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(bad("shorter than magic + checksum"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        // split_at guarantees 4 trailing bytes; the fold keeps the
        // little-endian read panic-free all the same.
        let stored_crc = crc_bytes
            .iter()
            .rev()
            .fold(0u32, |acc, &b| (acc << 8) | u32::from(b));
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(bad(format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let mut buf = body;
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(bad("bad magic (not an NCLOLCK1 checkpoint)"));
        }

        need(&buf, 8 * 4 + 4, "header")?;
        let version = buf.get_u64_le();
        let cursor = buf.get_u64_le();
        let event_digest = buf.get_u64_le();
        let config_digest = buf.get_u64_le();
        let known_count = buf.get_u32_le() as usize;
        need(&buf, 4 * known_count, "known classes")?;
        let mut known_classes = Vec::with_capacity(known_count);
        for _ in 0..known_count {
            let raw = buf.get_u32_le();
            let label =
                u16::try_from(raw).map_err(|_| bad(format!("label {raw} overflows u16")))?;
            known_classes.push(label);
        }
        let mut pairs = known_classes.iter().zip(known_classes.iter().skip(1));
        if !pairs.all(|(a, b)| a < b) {
            return Err(bad("known classes not strictly sorted"));
        }

        need(&buf, 8, "model length")?;
        let model_len = buf.get_u64_le();
        if model_len > buf.remaining() as u64 {
            return Err(bad(format!(
                "model length {model_len} exceeds the {} remaining bytes",
                buf.remaining()
            )));
        }
        let model_len = model_len as usize;
        let network = serialize::from_bytes(&buf[..model_len])
            .map_err(|e| bad(format!("model bytes: {e}")))?;
        buf = &buf[model_len..];

        need(&buf, 1 + 1 + 8 + 8, "buffer header")?;
        let alignment = alignment_from_tag(buf.get_u8())?;
        let has_capacity = buf.get_u8();
        let capacity_raw = buf.get_u64_le();
        let capacity_bits = match has_capacity {
            0 => None,
            1 => Some(capacity_raw),
            other => return Err(bad(format!("bad capacity flag {other}"))),
        };
        let entry_count = buf.get_u64_le();
        // Each entry carries at least its fixed fields + an RLE header.
        if entry_count > buf.remaining() as u64 {
            return Err(bad(format!(
                "implausible entry count {entry_count} for {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut entries = Vec::with_capacity(entry_count as usize);
        for i in 0..entry_count {
            entries.push(read_entry(&mut buf, i)?);
        }
        let buffer = LatentReplayBuffer::from_entries(alignment, capacity_bits, entries)
            .map_err(|e| bad(format!("buffer snapshot: {e}")))?;

        need(&buf, 8, "pending count")?;
        let pending_count = buf.get_u64_le();
        if pending_count > buf.remaining() as u64 {
            return Err(bad(format!(
                "implausible pending count {pending_count} for {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut pending = Vec::with_capacity(pending_count as usize);
        for i in 0..pending_count {
            pending.push(read_pending(&mut buf, i)?);
        }
        if !buf.is_empty() {
            return Err(bad(format!(
                "{} trailing bytes after pending latents",
                buf.len()
            )));
        }

        Ok(Checkpoint {
            version,
            cursor,
            event_digest,
            config_digest,
            known_classes,
            network,
            buffer,
            pending,
        })
    }

    /// Writes the checkpoint atomically: a uniquely named sibling temp
    /// file, then a rename — a reader (or a crash) never observes a
    /// half-written checkpoint.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_atomically(path, &self.to_bytes())
    }

    /// Reads a checkpoint written by [`write`].
    ///
    /// [`write`]: Checkpoint::write
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::Io`] for unreadable files and
    /// [`OnlineError::Checkpoint`] for malformed bytes.
    pub fn read(path: &std::path::Path) -> Result<Self, OnlineError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::from_bytes(&bytes)
    }
}

/// Durable atomic file replacement: a uniquely named sibling temp file,
/// fsync'd before the rename, with the directory fsync'd after it —
/// without both, a power loss shortly after an increment can surface the
/// renamed checkpoint with truncated contents (the CRC would catch it,
/// but the daemon's durable history would be gone, the exact crash this
/// module claims to survive). A failed write removes its temp sibling,
/// since ingest treats checkpoint failures as warnings and would
/// otherwise leak one .tmp per increment.
fn write_atomically(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(
        "{file_name}.{}.{}.tmp",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
        return result;
    }
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::File::open(dir).and_then(|d| d.sync_all()).ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::NetworkConfig;
    use ncl_spike::codec;
    use ncl_spike::SpikeRaster;

    fn sample_checkpoint() -> Checkpoint {
        let network = Network::new(NetworkConfig::tiny(8, 3)).unwrap();
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 8_192);
        for i in 0..5u16 {
            let act =
                SpikeRaster::from_fn(6, 10, |n, t| (n * 5 + t * 3 + i as usize).is_multiple_of(4));
            buffer.push(LatentEntry::reduced(act, 25, i % 3));
        }
        // One codec entry exercises the factor path.
        let act = SpikeRaster::from_fn(6, 20, |n, t| (n + t) % 3 == 0);
        buffer.push(LatentEntry::compressed(
            codec::compress(&act, CompressionFactor::new(2).unwrap()),
            2,
        ));
        // Two pending novel-class latents below the arrival threshold.
        let pending = vec![
            (
                9u16,
                SpikeRaster::from_fn(6, 10, |n, t| (n + 2 * t) % 5 == 0),
            ),
            (9u16, SpikeRaster::from_fn(6, 10, |n, t| (n * t) % 7 == 1)),
        ];
        Checkpoint {
            version: 3,
            cursor: 41,
            event_digest: 0xDEAD_BEEF_CAFE_F00D,
            config_digest: 0x5EED_C0DE_0051_7E57,
            known_classes: vec![0, 1, 2],
            network,
            buffer,
            pending,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let restored = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(restored, ckpt);
        // Re-encoding the restore is byte-identical (the checkpoint is a
        // canonical form).
        assert_eq!(restored.to_bytes(), bytes);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = sample_checkpoint().to_bytes();
        // Exhaustive: flip one bit of every byte. The CRC (or, for the
        // trailing CRC field itself, the mismatch against the body) must
        // catch each one — never a silent wrong restore.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                Checkpoint::from_bytes(&corrupt).is_err(),
                "corruption at byte {i}/{} was accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [0, 5, 11, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        let mut extended = bytes;
        extended.extend_from_slice(&[0u8; 3]);
        assert!(Checkpoint::from_bytes(&extended).is_err());
        assert!(Checkpoint::from_bytes(b"NCLOLCK1 but nonsense").is_err());
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let dir = std::env::temp_dir().join("ncl-online-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("daemon.ckpt");
        let ckpt = sample_checkpoint();
        ckpt.write(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), ckpt);
        // No temp sibling lingers.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(leftovers, 0);
        assert!(Checkpoint::read(&dir.join("missing.ckpt")).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn unbounded_buffer_round_trips_and_tight_budgets_reject() {
        // An unbounded-store checkpoint round-trips with the capacity
        // flag clear.
        let mut ckpt = sample_checkpoint();
        let entries: Vec<LatentEntry> = ckpt.buffer.iter().cloned().collect();
        ckpt.buffer =
            LatentReplayBuffer::from_entries(Alignment::Byte, None, entries.clone()).unwrap();
        let restored = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored.buffer.capacity_bits(), None);
        assert_eq!(restored, ckpt);
        // A snapshot claiming a capacity its entries exceed is rejected —
        // the decoder's strict path for capacity-carrying snapshots.
        assert!(LatentReplayBuffer::from_entries(Alignment::Byte, Some(1), entries).is_err());
    }
}
