//! The learner side of checkpoint replication.
//!
//! A [`DeltaPublisher`] sits next to the learner's [`OnlineLearner`]:
//! after every committed increment the learner hands it the fresh
//! checkpoint, and the publisher computes + retains the
//! [`CheckpointDelta`] from the previous one. Followers (via the
//! router's sync loop) then ask for "the delta from *my* version";
//! the publisher answers from its ring of recent deltas, or reports a
//! gap so the caller falls back to the full checkpoint bytes it also
//! keeps.
//!
//! Everything is behind one mutex — publishes are rare (once per
//! increment) and fetches copy out encoded bytes, so there is no
//! contention worth a finer scheme.
//!
//! [`OnlineLearner`]: crate::daemon::OnlineLearner

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::checkpoint::Checkpoint;
use crate::delta::CheckpointDelta;
use crate::error::OnlineError;

/// One retained delta: the version pair it bridges and its encoding.
#[derive(Debug, Clone)]
struct StoredDelta {
    base_version: u64,
    version: u64,
    bytes: Vec<u8>,
}

struct Inner {
    /// The latest published checkpoint (deltas are built against this).
    base: Checkpoint,
    /// Its full encoding, served to followers that cannot use a delta.
    full_bytes: Vec<u8>,
    /// Recent deltas, oldest first.
    ring: VecDeque<StoredDelta>,
}

/// Thread-safe publication point for checkpoint deltas (see the module
/// docs).
pub struct DeltaPublisher {
    inner: Mutex<Inner>,
    /// How many past deltas to retain.
    capacity: usize,
}

impl DeltaPublisher {
    /// Default delta-ring depth: enough for a follower to lag several
    /// increments without forcing a full-checkpoint resync.
    pub const DEFAULT_RING: usize = 8;

    /// Creates a publisher seeded with the learner's current checkpoint
    /// (typically the bootstrap state, before any increment).
    #[must_use]
    pub fn new(initial: Checkpoint) -> Self {
        Self::with_ring(initial, Self::DEFAULT_RING)
    }

    /// Like [`DeltaPublisher::new`] with an explicit ring depth
    /// (minimum 1).
    #[must_use]
    pub fn with_ring(initial: Checkpoint, capacity: usize) -> Self {
        let full_bytes = initial.to_bytes();
        DeltaPublisher {
            inner: Mutex::new(Inner {
                base: initial,
                full_bytes,
                ring: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Publishes the checkpoint produced by a committed increment:
    /// computes the delta from the previously published checkpoint,
    /// appends it to the ring and advances the base.
    ///
    /// Returns the encoded size of the new delta.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::Checkpoint`] if `next` does not advance
    /// the published version (see [`CheckpointDelta::between`]); the
    /// published state is unchanged.
    pub fn publish(&self, next: Checkpoint) -> Result<usize, OnlineError> {
        // Publisher state stays valid across any unwind point (the
        // fallible work happens before the mutations), so recover a
        // poisoned guard instead of cascading the panic.
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let delta = CheckpointDelta::between(&inner.base, &next)?;
        let bytes = delta.to_bytes();
        let size = bytes.len();
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(StoredDelta {
            base_version: delta.base_version,
            version: delta.version,
            bytes,
        });
        inner.full_bytes = next.to_bytes();
        inner.base = next;
        Ok(size)
    }

    /// The delta that advances a replica holding `base_version`, if the
    /// ring still has it. `None` means the follower is too far behind
    /// (or already current) and should compare versions / fetch the
    /// full checkpoint instead.
    #[must_use]
    pub fn delta_from(&self, base_version: u64) -> Option<(u64, Vec<u8>)> {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner
            .ring
            .iter()
            .find(|d| d.base_version == base_version)
            .map(|d| (d.version, d.bytes.clone()))
    }

    /// The full encoding of the latest published checkpoint.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .full_bytes
            .clone()
    }

    /// The latest published version.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .base
            .version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::{Network, NetworkConfig};
    use ncl_spike::memory::Alignment;
    use replay4ncl::buffer::LatentReplayBuffer;

    fn checkpoint(version: u64) -> Checkpoint {
        let mut network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        // Make each version's weights distinct so deltas are non-empty.
        network
            .visit_trainable_mut(1, |slice| {
                for v in slice.iter_mut() {
                    *v += version as f32 * 0.01;
                }
            })
            .unwrap();
        Checkpoint {
            version,
            cursor: version * 10,
            event_digest: version ^ 0xAB,
            config_digest: 42,
            known_classes: vec![0, 1],
            network,
            buffer: LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 8_192),
            pending: Vec::new(),
        }
    }

    #[test]
    fn publish_builds_a_servable_chain() {
        let publisher = DeltaPublisher::new(checkpoint(1));
        assert_eq!(publisher.version(), 1);
        assert!(publisher.delta_from(1).is_none(), "nothing published yet");

        publisher.publish(checkpoint(2)).unwrap();
        publisher.publish(checkpoint(3)).unwrap();
        assert_eq!(publisher.version(), 3);

        // A follower at v2 gets the v2->v3 delta and lands on v3
        // bit-identically.
        let (version, bytes) = publisher.delta_from(2).unwrap();
        assert_eq!(version, 3);
        let delta = crate::delta::CheckpointDelta::from_bytes(&bytes).unwrap();
        let applied = delta.apply(&checkpoint(2)).unwrap();
        assert_eq!(applied.to_bytes(), publisher.checkpoint_bytes());

        // A follower at an unknown version gets no delta.
        assert!(publisher.delta_from(7).is_none());
    }

    #[test]
    fn ring_evicts_oldest() {
        let publisher = DeltaPublisher::with_ring(checkpoint(1), 2);
        for v in 2..=5 {
            publisher.publish(checkpoint(v)).unwrap();
        }
        assert!(publisher.delta_from(1).is_none(), "evicted");
        assert!(publisher.delta_from(2).is_none(), "evicted");
        assert!(publisher.delta_from(3).is_some());
        assert!(publisher.delta_from(4).is_some());
    }

    #[test]
    fn non_advancing_publish_leaves_state_untouched() {
        let publisher = DeltaPublisher::new(checkpoint(2));
        assert!(publisher.publish(checkpoint(2)).is_err());
        assert_eq!(publisher.version(), 2);
        assert!(publisher.delta_from(2).is_none());
    }
}
