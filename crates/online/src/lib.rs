//! **ncl-online** — the lifelong-learning daemon that closes the
//! stream → replay → train → hot-swap loop.
//!
//! The paper's methodology exists so a deployed neuromorphic system can
//! keep learning *in the field*: new classes arrive as labeled samples,
//! latents are captured under a tight memory budget, and the system
//! updates itself without forgetting — all while it keeps answering
//! predictions. This crate is that orchestration layer:
//!
//! * [`stream`] — a deterministic labeled sample stream (warm known-class
//!   phase, then a novel class arrives interleaved);
//! * [`detector::NoveltyTracker`] — novel-class arrival detection with a
//!   configurable sample threshold;
//! * [`daemon::OnlineLearner`] — the state machine: budgeted on-the-fly
//!   latent capture into the [`replay4ncl::buffer::LatentReplayBuffer`],
//!   background Replay4NCL increments on the zero-alloc
//!   [`ncl_snn::trainer::IncrementalTrainer`], atomic hot-swap into the
//!   serving [`ncl_serve::registry::ModelRegistry`];
//! * [`checkpoint`] — crash-safe atomic checkpoints (model bytes +
//!   RLE-coded replay store + pending novel-class latents + stream
//!   cursor + version counter + event digest, CRC-32 sealed) that
//!   resume mid-stream bit-identically.
//!
//! Every state transition is a deterministic function of the event
//! sequence, and the trainer is byte-identical at every worker count —
//! so 1-worker and N-worker daemons write **byte-identical checkpoints**.
//!
//! # Quickstart
//!
//! ```no_run
//! use ncl_online::daemon::{OnlineConfig, OnlineLearner};
//! use ncl_online::stream::{SampleStream, StreamConfig};
//! use ncl_serve::server::{Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut config = OnlineConfig::smoke();
//! config.checkpoint_path = Some("daemon.ckpt".into());
//! let mut learner = OnlineLearner::bootstrap(config)?;
//! // Serve predictions concurrently with learning:
//! let server = Server::start(learner.registry(), ServerConfig::default())?;
//! let stream = SampleStream::generate(&StreamConfig::smoke())?;
//! let summary = learner.run_stream(&stream)?;
//! println!(
//!     "applied {} events, ran {} increment(s), now v{}",
//!     summary.events_applied,
//!     summary.increments.len(),
//!     learner.version()
//! );
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! The `ncl-learnd` binary wraps this into a process (serve + ingest +
//! checkpoint); `ncl-online-bench` measures it and emits
//! `BENCH_online.json`.

pub mod checkpoint;
pub mod daemon;
pub mod delta;
pub mod detector;
pub mod error;
pub mod publish;
pub mod stream;

pub use checkpoint::Checkpoint;
pub use daemon::{IncrementReport, IngestOutcome, OnlineConfig, OnlineLearner, RunSummary};
pub use delta::CheckpointDelta;
pub use detector::NoveltyTracker;
pub use error::OnlineError;
pub use publish::DeltaPublisher;
pub use stream::{SampleStream, StreamConfig, StreamEvent};
