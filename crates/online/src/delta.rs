//! Checkpoint deltas: the KB-scale replication unit between a learner
//! and its follower replicas.
//!
//! A Replay4NCL increment only touches the **learning-stage** weight
//! planes (insertion layer onward plus the readout), appends a handful
//! of new-class entries to the latent store (evicting a few old ones)
//! and drains the pending pool — the frozen backbone, which dominates
//! the model bytes, never moves. A [`CheckpointDelta`] encodes exactly
//! that difference between two consecutive [`Checkpoint`]s:
//!
//! * the changed weight planes, identified by their canonical
//!   visitation index (see [`ncl_snn::Network::visit_trainable`]);
//! * the store diff: a kept-bitmap over the base entries (eviction
//!   removes anywhere, push only appends, so the surviving base entries
//!   are a subsequence) plus the appended tail, entry-coded exactly as
//!   the full checkpoint codes them;
//! * the pending pool, replaced wholesale (it is tiny and usually
//!   empties on the very increment that published the delta);
//! * the scalar header (versions, cursor, digests, known classes).
//!
//! The format is sealed twice: a trailing CRC-32 over the delta bytes
//! (any single corrupted byte fails the decode) and a `target_crc` over
//! the **target checkpoint's full encoding** — [`CheckpointDelta::apply`]
//! re-encodes its result and refuses to return anything that is not
//! bit-identical to the checkpoint the learner published from. A
//! follower that applies a delta therefore holds *exactly* the
//! learner's bytes, or an error — never an approximation.
//!
//! Reconciliation contract: `apply` rejects a delta whose base version
//! is not the follower's current version with
//! [`OnlineError::DeltaMismatch`]; the replication layer reacts by
//! re-requesting a full checkpoint instead of guessing.

use bytes::{Buf, BufMut};
use ncl_snn::Network;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};

use crate::checkpoint::{bad, crc32, need, read_entry, read_pending, write_entry, write_pending};
use crate::checkpoint::{Checkpoint, MAGIC as CHECKPOINT_MAGIC};
use crate::error::OnlineError;

/// Magic + version prefix of the delta format.
pub const MAGIC: &[u8; 8] = b"NCLDLT01";

/// One changed trainable plane: its canonical visitation index (stage 0
/// order) and the full replacement values.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneUpdate {
    /// Index in the stage-0 visitation order.
    pub index: u32,
    /// Replacement parameter values for the whole plane.
    pub values: Vec<f32>,
}

/// The difference between two consecutive checkpoints. Built by
/// [`CheckpointDelta::between`], shipped as bytes, applied with
/// [`CheckpointDelta::apply`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDelta {
    /// Version of the checkpoint this delta was built on.
    pub base_version: u64,
    /// Version of the checkpoint this delta produces (`> base_version`).
    pub version: u64,
    /// Target stream cursor.
    pub cursor: u64,
    /// Target rolling event digest.
    pub event_digest: u64,
    /// Config digest (must match the base's — a delta never crosses a
    /// configuration change).
    pub config_digest: u64,
    /// Target known-class list, sorted.
    pub known_classes: Vec<u16>,
    /// Changed weight planes, indices strictly increasing.
    pub planes: Vec<PlaneUpdate>,
    /// Number of entries in the base store (checked on apply).
    pub base_entry_count: u64,
    /// Which base entries survive, by position.
    pub kept: Vec<bool>,
    /// Entries appended after the kept base entries.
    pub tail: Vec<LatentEntry>,
    /// Target pending pool (full replacement).
    pub pending: Vec<(u16, ncl_spike::SpikeRaster)>,
    /// CRC-32 of the target checkpoint's full encoding — the
    /// bit-identity seal [`CheckpointDelta::apply`] verifies.
    pub target_crc: u32,
}

/// Collects every trainable plane of `network` (stage-0 visitation
/// order) as owned vectors. Stage 0 is valid for every network, but
/// the error is propagated rather than unwrapped — delta code runs on
/// the publish path, which must not panic.
fn collect_planes(network: &Network) -> Result<Vec<Vec<f32>>, OnlineError> {
    let mut planes = Vec::new();
    network
        .visit_trainable(0, |slice| planes.push(slice.to_vec()))
        .map_err(|e| bad(format!("visiting trainable planes: {e}")))?;
    Ok(planes)
}

/// Bitwise inequality over f32 planes (delta correctness is defined on
/// bytes, not on numeric equality semantics).
fn plane_differs(a: &[f32], b: &[f32]) -> bool {
    a.len() != b.len()
        || a.iter()
            .zip(b.iter())
            .any(|(x, y)| x.to_bits() != y.to_bits())
}

impl CheckpointDelta {
    /// Builds the delta turning `base` into `next`.
    ///
    /// The store diff matches `next`'s entries as a subsequence of
    /// `base`'s (the store's push-appends/evict-anywhere discipline
    /// guarantees this for real increments); if the subsequence match
    /// fails — the checkpoints are unrelated — the delta degrades to a
    /// full store replacement and stays correct, just not small.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::Checkpoint`] if `next` does not advance
    /// `base` (version not increasing), the config digests differ, or
    /// the store policies (alignment, capacity) differ — none of which
    /// a consecutive-increment pair can produce.
    pub fn between(base: &Checkpoint, next: &Checkpoint) -> Result<Self, OnlineError> {
        if next.version <= base.version {
            return Err(bad(format!(
                "delta must advance the version: base v{}, next v{}",
                base.version, next.version
            )));
        }
        if next.config_digest != base.config_digest {
            return Err(bad(
                "delta across a config change: base and next disagree on the config digest",
            ));
        }
        if base.buffer.alignment() != next.buffer.alignment()
            || base.buffer.capacity_bits() != next.buffer.capacity_bits()
        {
            return Err(bad(
                "delta across a store-policy change: alignment or capacity differs",
            ));
        }

        let base_planes = collect_planes(&base.network)?;
        let next_planes = collect_planes(&next.network)?;
        if base_planes.len() != next_planes.len() {
            return Err(bad(
                "delta across an architecture change: plane counts differ",
            ));
        }
        let planes: Vec<PlaneUpdate> = base_planes
            .iter()
            .zip(next_planes.iter())
            .enumerate()
            .filter(|(_, (b, n))| plane_differs(b, n))
            .map(|(i, (_, n))| PlaneUpdate {
                index: i as u32,
                values: n.clone(),
            })
            .collect();

        // Greedy subsequence match of next's entries against base's.
        let base_entries: Vec<&LatentEntry> = base.buffer.iter().collect();
        let next_entries: Vec<&LatentEntry> = next.buffer.iter().collect();
        let mut kept = vec![false; base_entries.len()];
        let mut base_pos = 0usize;
        'outer: for entry in &next_entries {
            while base_pos < base_entries.len() {
                if base_entries[base_pos] == *entry {
                    kept[base_pos] = true;
                    base_pos += 1;
                    continue 'outer;
                }
                base_pos += 1;
            }
            break;
        }
        // Verify kept ++ tail reproduces next exactly; otherwise fall
        // back to a full replacement (kept = none, tail = everything).
        let kept_seq: Vec<&LatentEntry> = base_entries
            .iter()
            .zip(kept.iter())
            .filter(|(_, &k)| k)
            .map(|(e, _)| *e)
            .collect();
        let prefix_matches = kept_seq.len() <= next_entries.len()
            && kept_seq
                .iter()
                .zip(next_entries.iter())
                .all(|(a, b)| *a == *b);
        let (kept, tail_start) = if prefix_matches {
            (kept, kept_seq.len())
        } else {
            (vec![false; base_entries.len()], 0)
        };
        let tail: Vec<LatentEntry> = next_entries[tail_start..]
            .iter()
            .map(|e| (*e).clone())
            .collect();

        Ok(CheckpointDelta {
            base_version: base.version,
            version: next.version,
            cursor: next.cursor,
            event_digest: next.event_digest,
            config_digest: next.config_digest,
            known_classes: next.known_classes.clone(),
            planes,
            base_entry_count: base_entries.len() as u64,
            kept,
            tail,
            pending: next.pending.clone(),
            target_crc: crc32(&next.to_bytes()),
        })
    }

    /// Serializes the delta (magic, body, trailing CRC-32).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        buf.put_slice(MAGIC);
        buf.put_u64_le(self.base_version);
        buf.put_u64_le(self.version);
        buf.put_u64_le(self.cursor);
        buf.put_u64_le(self.event_digest);
        buf.put_u64_le(self.config_digest);
        buf.put_u32_le(self.known_classes.len() as u32);
        for &c in &self.known_classes {
            buf.put_u32_le(u32::from(c));
        }
        buf.put_u32_le(self.planes.len() as u32);
        for plane in &self.planes {
            buf.put_u32_le(plane.index);
            buf.put_u64_le(plane.values.len() as u64);
            for &v in &plane.values {
                buf.put_f32_le(v);
            }
        }
        buf.put_u64_le(self.base_entry_count);
        // Kept-bitmap, LSB-first within each byte, padding bits zero.
        let mut byte = 0u8;
        for (i, &k) in self.kept.iter().enumerate() {
            if k {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                buf.put_u8(byte);
                byte = 0;
            }
        }
        if !self.kept.len().is_multiple_of(8) {
            buf.put_u8(byte);
        }
        buf.put_u64_le(self.tail.len() as u64);
        for entry in &self.tail {
            write_entry(&mut buf, entry);
        }
        buf.put_u64_le(self.pending.len() as u64);
        for (label, raster) in &self.pending {
            write_pending(&mut buf, *label, raster);
        }
        buf.put_u32_le(self.target_crc);
        let crc = crc32(&buf);
        buf.put_u32_le(crc);
        buf
    }

    /// Decodes a delta from [`to_bytes`] output. Strict: bad magic,
    /// failed CRC, truncation, non-increasing versions, unsorted
    /// classes, out-of-order planes, nonzero bitmap padding or trailing
    /// bytes all fail.
    ///
    /// [`to_bytes`]: CheckpointDelta::to_bytes
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::Checkpoint`] describing the first problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, OnlineError> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(bad("shorter than magic + checksum"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        // split_at guarantees 4 trailing bytes; the fold keeps the
        // little-endian read panic-free all the same.
        let stored_crc = crc_bytes
            .iter()
            .rev()
            .fold(0u32, |acc, &b| (acc << 8) | u32::from(b));
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(bad(format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let mut buf = body;
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(bad("bad magic (not an NCLDLT01 delta)"));
        }

        need(&buf, 8 * 5 + 4, "header")?;
        let base_version = buf.get_u64_le();
        let version = buf.get_u64_le();
        if version <= base_version {
            return Err(bad(format!(
                "delta does not advance the version: base v{base_version}, target v{version}"
            )));
        }
        let cursor = buf.get_u64_le();
        let event_digest = buf.get_u64_le();
        let config_digest = buf.get_u64_le();
        let known_count = buf.get_u32_le() as usize;
        need(&buf, 4 * known_count, "known classes")?;
        let mut known_classes = Vec::with_capacity(known_count);
        for _ in 0..known_count {
            let raw = buf.get_u32_le();
            let label =
                u16::try_from(raw).map_err(|_| bad(format!("label {raw} overflows u16")))?;
            known_classes.push(label);
        }
        let mut pairs = known_classes.iter().zip(known_classes.iter().skip(1));
        if !pairs.all(|(a, b)| a < b) {
            return Err(bad("known classes not strictly sorted"));
        }

        need(&buf, 4, "plane count")?;
        let plane_count = buf.get_u32_le() as usize;
        let mut planes: Vec<PlaneUpdate> = Vec::with_capacity(plane_count.min(1024));
        for i in 0..plane_count {
            need(&buf, 4 + 8, "plane header")?;
            let index = buf.get_u32_le();
            if let Some(prev) = planes.last() {
                if index <= prev.index {
                    return Err(bad(format!(
                        "plane indices not strictly increasing: {} after {}",
                        index, prev.index
                    )));
                }
            }
            let len = buf.get_u64_le();
            if len
                .checked_mul(4)
                .is_none_or(|b| b > buf.remaining() as u64)
            {
                return Err(bad(format!(
                    "plane {i}: implausible length {len} for {} remaining bytes",
                    buf.remaining()
                )));
            }
            let mut values = Vec::with_capacity(len as usize);
            for _ in 0..len {
                values.push(buf.get_f32_le());
            }
            planes.push(PlaneUpdate { index, values });
        }

        need(&buf, 8, "base entry count")?;
        let base_entry_count = buf.get_u64_le();
        let bitmap_len = (base_entry_count as usize).div_ceil(8);
        need(&buf, bitmap_len, "kept bitmap")?;
        let mut kept = Vec::with_capacity(base_entry_count as usize);
        for i in 0..bitmap_len {
            let byte = buf.get_u8();
            let bits_here = (base_entry_count as usize - i * 8).min(8);
            if bits_here < 8 && byte >> bits_here != 0 {
                return Err(bad("nonzero padding bits in the kept bitmap"));
            }
            for b in 0..bits_here {
                kept.push(byte & (1 << b) != 0);
            }
        }

        need(&buf, 8, "tail count")?;
        let tail_count = buf.get_u64_le();
        if tail_count > buf.remaining() as u64 {
            return Err(bad(format!(
                "implausible tail count {tail_count} for {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut tail = Vec::with_capacity(tail_count as usize);
        for i in 0..tail_count {
            tail.push(read_entry(&mut buf, i)?);
        }

        need(&buf, 8, "pending count")?;
        let pending_count = buf.get_u64_le();
        if pending_count > buf.remaining() as u64 {
            return Err(bad(format!(
                "implausible pending count {pending_count} for {} remaining bytes",
                buf.remaining()
            )));
        }
        let mut pending = Vec::with_capacity(pending_count as usize);
        for i in 0..pending_count {
            pending.push(read_pending(&mut buf, i)?);
        }

        need(&buf, 4, "target crc")?;
        let target_crc = buf.get_u32_le();
        if !buf.is_empty() {
            return Err(bad(format!(
                "{} trailing bytes after target crc",
                buf.len()
            )));
        }

        Ok(CheckpointDelta {
            base_version,
            version,
            cursor,
            event_digest,
            config_digest,
            known_classes,
            planes,
            base_entry_count,
            kept,
            tail,
            pending,
            target_crc,
        })
    }

    /// Applies the delta to `base`, producing the target checkpoint.
    ///
    /// The result is verified against [`CheckpointDelta::target_crc`]:
    /// the returned checkpoint's encoding is **bit-identical** to the
    /// checkpoint the delta was built from, or this fails.
    ///
    /// # Errors
    ///
    /// * [`OnlineError::DeltaMismatch`] — `base.version` is not the
    ///   delta's base (out-of-order or cross-stream application); the
    ///   caller should fall back to fetching a full checkpoint.
    /// * [`OnlineError::Checkpoint`] — config-digest mismatch, bad plane
    ///   indices/shapes, inconsistent store diff, or a result that does
    ///   not reproduce the target bytes.
    pub fn apply(&self, base: &Checkpoint) -> Result<Checkpoint, OnlineError> {
        if base.version != self.base_version {
            return Err(OnlineError::DeltaMismatch {
                expected_base: base.version,
                got_base: self.base_version,
            });
        }
        if base.config_digest != self.config_digest {
            return Err(bad(format!(
                "config digest mismatch: base {:016x}, delta {:016x}",
                base.config_digest, self.config_digest
            )));
        }
        if base.buffer.len() as u64 != self.base_entry_count {
            return Err(bad(format!(
                "store mismatch: delta expects {} base entries, base holds {}",
                self.base_entry_count,
                base.buffer.len()
            )));
        }

        // Overwrite the changed planes on a copy of the base network.
        let mut plane_lens = Vec::new();
        base.network
            .visit_trainable(0, |slice| plane_lens.push(slice.len()))
            .map_err(|e| bad(format!("visiting trainable planes: {e}")))?;
        for plane in &self.planes {
            let Some(&len) = plane_lens.get(plane.index as usize) else {
                return Err(bad(format!(
                    "plane index {} out of range ({} planes)",
                    plane.index,
                    plane_lens.len()
                )));
            };
            if plane.values.len() != len {
                return Err(bad(format!(
                    "plane {}: {} values for a {}-parameter plane",
                    plane.index,
                    plane.values.len(),
                    len
                )));
            }
        }
        let mut network = base.network.clone();
        let mut plane_idx = 0u32;
        let mut updates = self.planes.iter().peekable();
        network
            .visit_trainable_mut(0, |slice| {
                if let Some(update) = updates.peek() {
                    if update.index == plane_idx {
                        slice.copy_from_slice(&update.values);
                        updates.next();
                    }
                }
                plane_idx += 1;
            })
            .map_err(|e| bad(format!("visiting trainable planes: {e}")))?;

        // Rebuild the store: surviving base entries in order + the tail,
        // through the strict constructor (budget re-checked).
        let mut entries: Vec<LatentEntry> = base
            .buffer
            .iter()
            .zip(self.kept.iter())
            .filter(|(_, &k)| k)
            .map(|(e, _)| e.clone())
            .collect();
        entries.extend(self.tail.iter().cloned());
        let buffer = LatentReplayBuffer::from_entries(
            base.buffer.alignment(),
            base.buffer.capacity_bits(),
            entries,
        )
        .map_err(|e| bad(format!("store diff: {e}")))?;

        let next = Checkpoint {
            version: self.version,
            cursor: self.cursor,
            event_digest: self.event_digest,
            config_digest: self.config_digest,
            known_classes: self.known_classes.clone(),
            network,
            buffer,
            pending: self.pending.clone(),
        };
        let encoded = next.to_bytes();
        debug_assert_eq!(&encoded[..8], &CHECKPOINT_MAGIC[..]);
        let actual = crc32(&encoded);
        if actual != self.target_crc {
            return Err(bad(format!(
                "applied delta does not reproduce the target checkpoint \
                 (crc {actual:#010x}, expected {:#010x})",
                self.target_crc
            )));
        }
        Ok(next)
    }

    /// Total parameters shipped in changed planes (diagnostics).
    #[must_use]
    pub fn changed_params(&self) -> usize {
        self.planes.iter().map(|p| p.values.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncl_snn::NetworkConfig;
    use ncl_spike::memory::Alignment;
    use ncl_spike::SpikeRaster;
    use replay4ncl::buffer::LatentReplayBuffer;

    fn base_checkpoint() -> Checkpoint {
        let network = Network::new(NetworkConfig::tiny(8, 3)).unwrap();
        let mut buffer = LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 16_384);
        for i in 0..6u16 {
            let act =
                SpikeRaster::from_fn(6, 10, |n, t| (n * 3 + t * 5 + i as usize).is_multiple_of(4));
            buffer.push(LatentEntry::reduced(act, 20, i % 3));
        }
        Checkpoint {
            version: 4,
            cursor: 100,
            event_digest: 0x1234_5678_9ABC_DEF0,
            config_digest: 0x0FED_CBA9_8765_4321,
            known_classes: vec![0, 1, 2],
            network,
            buffer,
            pending: vec![(7, SpikeRaster::from_fn(6, 10, |n, t| (n + t) % 5 == 0))],
        }
    }

    /// A plausible successor: learning-stage planes perturbed, one base
    /// entry evicted, two entries appended, pending drained, counters
    /// advanced.
    fn next_checkpoint(base: &Checkpoint) -> Checkpoint {
        let mut network = base.network.clone();
        network
            .visit_trainable_mut(1, |slice| {
                for v in slice.iter_mut() {
                    *v += 0.125;
                }
            })
            .unwrap();
        let mut entries: Vec<LatentEntry> = base.buffer.iter().cloned().collect();
        entries.remove(2);
        for i in 0..2u16 {
            let act =
                SpikeRaster::from_fn(6, 10, |n, t| (n * 7 + t + i as usize).is_multiple_of(3));
            entries.push(LatentEntry::reduced(act, 20, 7));
        }
        let buffer = LatentReplayBuffer::from_entries(
            base.buffer.alignment(),
            base.buffer.capacity_bits(),
            entries,
        )
        .unwrap();
        Checkpoint {
            version: base.version + 1,
            cursor: base.cursor + 9,
            event_digest: base.event_digest ^ 0xABCD,
            config_digest: base.config_digest,
            known_classes: vec![0, 1, 2, 7],
            network,
            buffer,
            pending: Vec::new(),
        }
    }

    #[test]
    fn between_apply_is_bit_identical() {
        let base = base_checkpoint();
        let next = next_checkpoint(&base);
        let delta = CheckpointDelta::between(&base, &next).unwrap();
        let applied = delta.apply(&base).unwrap();
        assert_eq!(applied, next);
        assert_eq!(applied.to_bytes(), next.to_bytes());
        // The diff really is partial: a frozen stage-0 plane exists, so
        // fewer planes ship than the network has.
        let mut total_planes = 0usize;
        base.network
            .visit_trainable(0, |_| total_planes += 1)
            .unwrap();
        assert!(delta.planes.len() < total_planes, "no plane was skipped");
        // And the delta is smaller than the full checkpoint.
        assert!(delta.to_bytes().len() < next.to_bytes().len());
    }

    #[test]
    fn round_trip_is_exact() {
        let base = base_checkpoint();
        let next = next_checkpoint(&base);
        let delta = CheckpointDelta::between(&base, &next).unwrap();
        let bytes = delta.to_bytes();
        let decoded = CheckpointDelta::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, delta);
        assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let base = base_checkpoint();
        let next = next_checkpoint(&base);
        let bytes = CheckpointDelta::between(&base, &next).unwrap().to_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                CheckpointDelta::from_bytes(&corrupt).is_err(),
                "corruption at byte {i}/{} was accepted",
                bytes.len()
            );
        }
    }

    #[test]
    fn base_version_mismatch_is_rejected() {
        let base = base_checkpoint();
        let next = next_checkpoint(&base);
        let delta = CheckpointDelta::between(&base, &next).unwrap();
        // A replica that already advanced past the base must not apply.
        let err = delta.apply(&next).unwrap_err();
        assert!(
            matches!(
                err,
                OnlineError::DeltaMismatch {
                    expected_base: 5,
                    got_base: 4
                }
            ),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn out_of_order_delta_is_rejected() {
        // Chain v4 -> v5 -> v6, then try applying the second delta to
        // the first base (skipping v5): the reconciliation layer must
        // see a hard DeltaMismatch and fall back to a full checkpoint.
        let base = base_checkpoint();
        let mid = next_checkpoint(&base);
        let tip = next_checkpoint(&mid);
        let second = CheckpointDelta::between(&mid, &tip).unwrap();
        let err = second.apply(&base).unwrap_err();
        assert!(matches!(
            err,
            OnlineError::DeltaMismatch {
                expected_base: 4,
                got_base: 5
            }
        ));
        // In order, the chain reproduces the tip bit-exactly.
        let first = CheckpointDelta::between(&base, &mid).unwrap();
        let applied = second.apply(&first.apply(&base).unwrap()).unwrap();
        assert_eq!(applied.to_bytes(), tip.to_bytes());
    }

    #[test]
    fn non_advancing_deltas_are_rejected() {
        let base = base_checkpoint();
        assert!(CheckpointDelta::between(&base, &base).is_err());
        let mut regressed = next_checkpoint(&base);
        regressed.version = base.version; // same version
        assert!(CheckpointDelta::between(&base, &regressed).is_err());
        // A decoded delta claiming version <= base_version fails too.
        let next = next_checkpoint(&base);
        let mut delta = CheckpointDelta::between(&base, &next).unwrap();
        delta.version = delta.base_version;
        assert!(CheckpointDelta::from_bytes(&delta.to_bytes()).is_err());
    }

    #[test]
    fn config_digest_mismatch_is_rejected() {
        let base = base_checkpoint();
        let mut next = next_checkpoint(&base);
        next.config_digest ^= 1;
        assert!(CheckpointDelta::between(&base, &next).is_err());
        // And a tampered (re-encoded) delta fails on apply.
        next.config_digest = base.config_digest;
        let mut delta = CheckpointDelta::between(&base, &next).unwrap();
        delta.config_digest ^= 1;
        let err = delta.apply(&base).unwrap_err();
        assert!(matches!(err, OnlineError::Checkpoint { .. }));
    }

    #[test]
    fn unrelated_stores_fall_back_to_full_replacement() {
        let base = base_checkpoint();
        let mut next = next_checkpoint(&base);
        // Replace the store with unrelated entries (not a subsequence).
        let entries: Vec<LatentEntry> = (0..3u16)
            .map(|i| {
                let act =
                    SpikeRaster::from_fn(6, 10, |n, t| (n + t * 2 + i as usize).is_multiple_of(2));
                LatentEntry::reduced(act, 20, i)
            })
            .collect();
        next.buffer = LatentReplayBuffer::from_entries(
            base.buffer.alignment(),
            base.buffer.capacity_bits(),
            entries,
        )
        .unwrap();
        let delta = CheckpointDelta::between(&base, &next).unwrap();
        assert!(delta.kept.iter().all(|&k| !k), "nothing should be kept");
        assert_eq!(delta.tail.len(), next.buffer.len());
        let applied = delta.apply(&base).unwrap();
        assert_eq!(applied.to_bytes(), next.to_bytes());
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let base = base_checkpoint();
        let next = next_checkpoint(&base);
        let bytes = CheckpointDelta::between(&base, &next).unwrap().to_bytes();
        for cut in [0, 7, 12, 44, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                CheckpointDelta::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        let mut extended = bytes;
        extended.extend_from_slice(&[0u8; 2]);
        assert!(CheckpointDelta::from_bytes(&extended).is_err());
    }
}
