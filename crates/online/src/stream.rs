//! The labeled sample stream the daemon ingests.
//!
//! Deployment streams are external; for experiments, CI and the
//! integration tests this module generates a *deterministic* stream from
//! the scenario's synthetic dataset: a warm phase of known-class traffic,
//! then a novel class (the scenario's held-out class) starts arriving
//! interleaved with known traffic — the moment the paper's continual
//! learning phase models. The same [`StreamConfig`] always yields the
//! same event sequence, which is what makes daemon checkpoints
//! reproducible end to end.

use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use replay4ncl::{phases, ScenarioConfig};
use serde::{Deserialize, Serialize};

use crate::error::OnlineError;

/// Seed salt keeping the stream's sample draw independent of the
/// scenario's phase streams.
const STREAM_SALT: u64 = 0x57F0;

/// Configuration of a generated stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Scenario providing the dataset and class split (the held-out last
    /// class is the novel arrival).
    pub scenario: ScenarioConfig,
    /// Events before the novel class first appears (known classes only).
    pub warmup_events: usize,
    /// Total events in the stream.
    pub total_events: usize,
    /// After the warm phase, every `novel_every`-th event is a
    /// novel-class sample (the rest stay known-class traffic).
    pub novel_every: usize,
    /// Stream shuffling seed (independent of the scenario seeds).
    pub seed: u64,
}

impl StreamConfig {
    /// A fast deterministic stream over the smoke scenario: 24 warm
    /// events, then one novel sample every 3rd event, 60 events total.
    #[must_use]
    pub fn smoke() -> Self {
        StreamConfig {
            scenario: ScenarioConfig::smoke(),
            warmup_events: 24,
            total_events: 60,
            novel_every: 3,
            seed: 0x57EA4,
        }
    }

    /// Validates the stream parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), OnlineError> {
        self.scenario.validate()?;
        if self.total_events == 0 {
            return Err(OnlineError::InvalidConfig {
                what: "total_events",
                detail: "stream needs at least one event".into(),
            });
        }
        if self.novel_every == 0 {
            return Err(OnlineError::InvalidConfig {
                what: "novel_every",
                detail: "must be at least 1".into(),
            });
        }
        if self.warmup_events > self.total_events {
            return Err(OnlineError::InvalidConfig {
                what: "warmup_events",
                detail: format!(
                    "warm phase ({}) longer than the stream ({})",
                    self.warmup_events, self.total_events
                ),
            });
        }
        Ok(())
    }
}

/// One labeled sample arriving at the device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamEvent {
    /// Monotonic position in the stream (0-based).
    pub seq: u64,
    /// Ground-truth class label.
    pub label: u16,
    /// The raw input raster at the native timestep.
    pub raster: SpikeRaster,
}

/// A fully materialized deterministic sample stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleStream {
    events: Vec<StreamEvent>,
    novel_class: u16,
}

impl SampleStream {
    /// Generates the stream for `config` (same config, same events).
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidConfig`] for invalid parameters and
    /// propagates dataset-generation failures.
    pub fn generate(config: &StreamConfig) -> Result<Self, OnlineError> {
        config.validate()?;
        let data = phases::scenario_data(&config.scenario)?;
        let split = phases::scenario_split(&config.scenario)?;
        let known = split.pretrain_subset(&data.train);
        let novel = split.continual_subset(&data.train);
        let novel_class = config.scenario.data.classes - 1;
        if known.is_empty() || novel.is_empty() {
            return Err(OnlineError::InvalidConfig {
                what: "scenario.data",
                detail: "stream needs both known-class and novel-class samples".into(),
            });
        }

        let mut rng = Rng::seed_from_u64(config.seed ^ STREAM_SALT);
        let mut events = Vec::with_capacity(config.total_events);
        let mut novel_cursor = 0usize;
        for seq in 0..config.total_events {
            let is_novel = seq >= config.warmup_events
                && (seq - config.warmup_events).is_multiple_of(config.novel_every);
            let sample = if is_novel {
                let s = &novel.samples()[novel_cursor % novel.len()];
                novel_cursor += 1;
                s
            } else {
                &known.samples()[rng.below(known.len() as u64) as usize]
            };
            events.push(StreamEvent {
                seq: seq as u64,
                label: sample.label,
                raster: sample.raster.clone(),
            });
        }
        Ok(SampleStream {
            events,
            novel_class,
        })
    }

    /// All events, in sequence order.
    #[must_use]
    pub fn events(&self) -> &[StreamEvent] {
        &self.events
    }

    /// The class that arrives mid-stream.
    #[must_use]
    pub fn novel_class(&self) -> u16 {
        self.novel_class
    }

    /// Events from `cursor` onward — what a daemon resumed from a
    /// checkpoint still has to consume.
    pub fn events_from(&self, cursor: u64) -> impl Iterator<Item = &StreamEvent> {
        self.events.iter().filter(move |e| e.seq >= cursor)
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> StreamConfig {
        let mut c = StreamConfig::smoke();
        c.total_events = 30;
        c.warmup_events = 12;
        c
    }

    #[test]
    fn generation_is_deterministic() {
        let c = config();
        let a = SampleStream::generate(&c).unwrap();
        let b = SampleStream::generate(&c).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
    }

    #[test]
    fn warm_phase_holds_back_the_novel_class() {
        let c = config();
        let stream = SampleStream::generate(&c).unwrap();
        let novel = stream.novel_class();
        assert!(stream
            .events()
            .iter()
            .take(c.warmup_events)
            .all(|e| e.label != novel));
        let arrivals = stream.events().iter().filter(|e| e.label == novel).count();
        assert!(arrivals >= 2, "novel class arrives repeatedly after warmup");
        // Sequence numbers are the event positions.
        for (i, e) in stream.events().iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn events_from_skips_consumed_prefix() {
        let stream = SampleStream::generate(&config()).unwrap();
        let tail: Vec<u64> = stream.events_from(25).map(|e| e.seq).collect();
        assert_eq!(tail, vec![25, 26, 27, 28, 29]);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = config();
        c.total_events = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.novel_every = 0;
        assert!(c.validate().is_err());
        let mut c = config();
        c.warmup_events = c.total_events + 1;
        assert!(c.validate().is_err());
    }
}
