//! The online continual-learning daemon: stream → replay → train →
//! hot-swap, as one deterministic state machine.
//!
//! [`OnlineLearner`] owns the learning side of a deployment: the current
//! network, the budgeted latent store, the novelty tracker and the
//! persistent [`IncrementalTrainer`] arenas. Serving stays decoupled —
//! the learner publishes through an [`ModelRegistry`] `Arc` that an
//! `ncl_serve::Server` (or any other consumer) reads, so predictions
//! keep flowing while an increment trains and the swap itself is one
//! atomic pointer exchange.
//!
//! # Lifecycle
//!
//! ```text
//!             ┌────────────────────────────────────────────────┐
//!             │                ncl-learnd                      │
//!  stream ───▶│ ingest ─▶ novelty check ─▶ capture latent (T*) │
//!             │    │            │                │             │
//!             │    │        known class      novel class       │
//!             │    │            │                │             │
//!             │    │     refresh replay     pending pool       │
//!             │    │      (budgeted)            │ ≥ threshold  │
//!             │    │                        increment:         │
//!             │    │                 replay ∪ pending ─▶ train │
//!             │    ▼                            │              │
//!             │ checkpoint ◀── version++ ◀── hot-swap          │
//!             └─────────────────────────────────┼──────────────┘
//!                                               ▼
//!                              ModelRegistry ─▶ ncl-serve (predictions)
//! ```
//!
//! # Determinism contract
//!
//! Every state transition is a pure function of the event sequence: the
//! trainer is byte-identical at every worker count, increment RNG streams
//! are derived from the scenario seed and the version counter, and the
//! event log digests (seq, label, action) in order. Therefore a 1-worker
//! and an N-worker daemon fed the same stream produce **byte-identical
//! checkpoints** — the property `tests/online_integration.rs` pins.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ncl_obs::{Counter, Gauge, Level, Registry as ObsRegistry, Stage};
use ncl_serve::registry::ModelRegistry;
use ncl_snn::trainer::{IncrementalTrainer, TrainOptions};
use ncl_snn::Network;
use ncl_spike::SpikeRaster;
use ncl_tensor::Rng;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer, PushOutcome};
use replay4ncl::methods::MethodSpec;
use replay4ncl::{cache, phases, ScenarioConfig};
use serde::{Deserialize, Serialize};

use crate::checkpoint::Checkpoint;
use crate::detector::{NoveltyTracker, Observation};
use crate::error::OnlineError;
use crate::stream::{SampleStream, StreamEvent};

/// Seed salt for per-increment training RNG streams.
const INCREMENT_SALT: u64 = 0x1C4;

/// Retained tail of the in-memory event log (the rolling digest carries
/// the full history; the log itself is for inspection and must not grow
/// without bound in a lifelong daemon). Trimming happens in blocks of
/// this size, so appends stay amortized O(1).
const EVENT_LOG_CAP: usize = 1024;

/// Configuration of the online daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Scenario settings (dataset shape, network, batch size, worker
    /// count, CL epochs, insertion layer).
    pub scenario: ScenarioConfig,
    /// The continual-learning method (storage policy, threshold mode,
    /// learning-rate divisor). Must use replay.
    pub method: MethodSpec,
    /// Novel-class samples to accumulate before an increment fires.
    pub arrival_threshold: usize,
    /// Capture a known-class latent into the replay store every
    /// `capture_every`-th stream event (0 disables the refresh).
    pub capture_every: u64,
    /// Latent-memory budget for the replay store (`None` = unbounded;
    /// deployments should always bound it).
    pub capacity_bits: Option<u64>,
    /// Where increments checkpoint the daemon (`None` = no persistence).
    pub checkpoint_path: Option<PathBuf>,
    /// Depth of the published-delta ring when this daemon replicates
    /// (how many versions a follower can lag and still catch up via
    /// deltas rather than a full checkpoint). Not determinism-relevant:
    /// it changes how state ships, not what the state is.
    pub delta_ring: usize,
}

fn default_delta_ring() -> usize {
    crate::publish::DeltaPublisher::DEFAULT_RING
}

impl OnlineConfig {
    /// Fast deterministic configuration over the smoke scenario:
    /// Replay4NCL storage at T* = 16, a 4-sample arrival threshold and a
    /// 16 KiBit latent budget.
    #[must_use]
    pub fn smoke() -> Self {
        let scenario = ScenarioConfig::smoke();
        let t_star = (scenario.data.steps * 2 / 5).max(1);
        OnlineConfig {
            method: MethodSpec::replay4ncl(6, t_star).with_lr_divisor(2.0),
            scenario,
            arrival_threshold: 4,
            capture_every: 4,
            capacity_bits: Some(16 * 1024),
            checkpoint_path: None,
            delta_ring: default_delta_ring(),
        }
    }

    /// Digest of every field a resumed run's future behaviour depends
    /// on: dataset/network/seed, training protocol, method knobs,
    /// arrival threshold, capture period and latent budget. Deliberately
    /// excludes `parallelism` (results are byte-identical at every
    /// worker count — the checkpoint invariance the integration tests
    /// pin) and `checkpoint_path` (where state persists does not change
    /// what the state is). Stored in every checkpoint; [`OnlineLearner::resume`]
    /// rejects a drifted config instead of silently diverging.
    #[must_use]
    pub fn determinism_digest(&self) -> u64 {
        let desc = format!(
            "{:?}|{:?}|{}|{}|{}|{}|{}|{}|{:?}|{:?}|{}|{}|{:?}",
            self.scenario.data,
            self.scenario.network,
            self.scenario.insertion_layer,
            self.scenario.pretrain_epochs,
            self.scenario.cl_epochs,
            self.scenario.pretrain_lr.to_bits(),
            self.scenario.batch_size,
            self.scenario.seed,
            self.scenario.alignment,
            self.method,
            self.arrival_threshold,
            self.capture_every,
            self.capacity_bits,
        );
        fnv1a_fold_bytes(EVENT_DIGEST_SEED, desc.as_bytes())
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), OnlineError> {
        self.scenario.validate()?;
        self.method.validate()?;
        if !self.method.uses_replay() {
            return Err(OnlineError::InvalidConfig {
                what: "method",
                detail: "the online daemon is a replay system; the baseline method has no latent \
                         store to learn from"
                    .into(),
            });
        }
        if self.arrival_threshold == 0 {
            return Err(OnlineError::InvalidConfig {
                what: "arrival_threshold",
                detail: "must be at least 1".into(),
            });
        }
        if self.delta_ring == 0 {
            return Err(OnlineError::InvalidConfig {
                what: "delta_ring",
                detail: "the delta ring must retain at least 1 delta".into(),
            });
        }
        Ok(())
    }
}

/// What one applied event did (the event-log payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventAction {
    /// A known-class sample passed through without touching the store.
    Observed,
    /// A known-class latent was captured into the replay store,
    /// evicting `evicted` entries.
    Captured {
        /// Entries evicted to fit the budget.
        evicted: usize,
    },
    /// A known-class capture was rejected by the budget (entry alone
    /// exceeds the capacity).
    CaptureRejected,
    /// A novel-class latent joined the pending pool.
    Pending {
        /// Pending samples of that class so far.
        pending: usize,
    },
    /// The event completed an increment, producing `version`.
    Increment {
        /// The daemon version the increment produced.
        version: u64,
    },
}

/// One applied stream event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Stream sequence number.
    pub seq: u64,
    /// Sample label.
    pub label: u16,
    /// What the daemon did with it.
    pub action: EventAction,
}

impl EventRecord {
    /// Stable numeric encoding for the rolling digest.
    fn digest_words(&self) -> [u64; 3] {
        let (tag, extra) = match self.action {
            EventAction::Observed => (0u64, 0u64),
            EventAction::Captured { evicted } => (1, evicted as u64),
            EventAction::CaptureRejected => (2, 0),
            EventAction::Pending { pending } => (3, pending as u64),
            EventAction::Increment { version } => (4, version),
        };
        [self.seq, u64::from(self.label) << 32 | tag, extra]
    }
}

/// Folds one word into an FNV-1a digest.
fn fnv1a_fold(digest: u64, word: u64) -> u64 {
    fnv1a_fold_bytes(digest, &word.to_le_bytes())
}

/// Folds a byte slice into an FNV-1a digest — the one copy of the hash
/// constants shared by the event digest and the config digest.
fn fnv1a_fold_bytes(digest: u64, bytes: &[u8]) -> u64 {
    let mut d = digest;
    for &byte in bytes {
        d ^= u64::from(byte);
        d = d.wrapping_mul(0x0000_0100_0000_01B3);
    }
    d
}

/// FNV-1a offset basis — the digest of an empty event log.
pub const EVENT_DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Summary of one applied increment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementReport {
    /// The daemon version the increment produced.
    pub version: u64,
    /// The registry version the swap produced (registry versions count
    /// every swap, including a resume's initial publish).
    pub registry_version: u64,
    /// The class(es) the increment learned.
    pub classes: Vec<u16>,
    /// Samples trained on per epoch (replay ∪ pending).
    pub train_samples: usize,
    /// Mean loss per CL epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall time of the training phase.
    pub train_wall: Duration,
    /// Wall time of the registry swap (the only moment serving even
    /// *could* notice — and it is a pointer exchange).
    pub swap_latency: Duration,
    /// Wall time of the checkpoint write (zero when unconfigured).
    pub checkpoint_wall: Duration,
    /// Pending latents stored into the replay buffer by this increment.
    pub stored_entries: usize,
    /// Pending latents the budget rejected (an entry alone exceeding
    /// `capacity_bits`) — nonzero means the just-learned class has less
    /// replay representation than its arrival produced; with a budget
    /// smaller than one entry it has **none**, and will be forgotten by
    /// the next increment. Callers should surface this loudly.
    pub rejected_entries: usize,
    /// Set when the increment applied and hot-swapped but its checkpoint
    /// write failed — the daemon keeps running (availability over
    /// durability), but the last durable state now predates this
    /// increment.
    pub checkpoint_error: Option<String>,
}

/// Outcome of ingesting one event.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOutcome {
    /// Known class, nothing stored.
    Observed,
    /// Known class, latent captured into the replay store.
    Captured {
        /// Entries evicted to fit the budget.
        evicted: usize,
    },
    /// Known class, capture rejected by the budget.
    CaptureRejected,
    /// Novel class, waiting for the arrival threshold.
    Pending {
        /// The novel class.
        class: u16,
        /// Pending samples of it so far.
        pending: usize,
    },
    /// The event triggered an increment.
    Increment(IncrementReport),
}

/// Summary of a [`OnlineLearner::run_stream`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Events applied by this call.
    pub events_applied: usize,
    /// Increments run, in order.
    pub increments: Vec<IncrementReport>,
}

/// Pre-registered observability handles for the daemon: one registry
/// lookup per series at construction, plain atomic ops on the hot path.
/// Held behind an `Arc` so spans never borrow the learner itself.
struct Instruments {
    registry: Arc<ObsRegistry>,
    ingest: Stage,
    capture: Stage,
    replay_mix: Stage,
    train: Stage,
    swap: Stage,
    checkpoint: Stage,
    events: Arc<Counter>,
    increments: Arc<Counter>,
    checkpoint_errors: Arc<Counter>,
    version: Arc<Gauge>,
    buffer_entries: Arc<Gauge>,
    buffer_bits: Arc<Gauge>,
    pending_samples: Arc<Gauge>,
}

impl Instruments {
    fn new(registry: Arc<ObsRegistry>) -> Self {
        let stage = |name| registry.stage("online_stage_us", name);
        Instruments {
            ingest: stage("ingest"),
            capture: stage("capture"),
            replay_mix: stage("replay_mix"),
            train: stage("train"),
            swap: stage("swap"),
            checkpoint: stage("checkpoint"),
            events: registry.counter("online_events_total", "Stream events ingested."),
            increments: registry.counter(
                "online_increments_total",
                "Continual-learning increments committed.",
            ),
            checkpoint_errors: registry.counter(
                "online_checkpoint_errors_total",
                "Checkpoint writes that failed after a committed increment.",
            ),
            version: registry.gauge("online_version", "Daemon model version."),
            buffer_entries: registry.gauge(
                "online_buffer_entries",
                "Latent entries in the replay store.",
            ),
            buffer_bits: registry.gauge(
                "online_buffer_bits",
                "Latent-memory footprint of the replay store in bits.",
            ),
            pending_samples: registry.gauge(
                "online_pending_samples",
                "Novel-class samples awaiting the arrival threshold.",
            ),
            registry,
        }
    }
}

impl std::fmt::Debug for Instruments {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instruments").finish_non_exhaustive()
    }
}

/// The daemon state machine. See the module docs for the lifecycle.
#[derive(Debug)]
pub struct OnlineLearner {
    config: OnlineConfig,
    obs: Arc<Instruments>,
    registry: Arc<ModelRegistry>,
    network: Network,
    buffer: LatentReplayBuffer,
    trainer: IncrementalTrainer,
    tracker: NoveltyTracker,
    /// Captured novel-class latents awaiting the arrival threshold.
    pending: Vec<(u16, SpikeRaster)>,
    cursor: u64,
    version: u64,
    event_digest: u64,
    event_log: Vec<EventRecord>,
    pretrain_acc: f64,
}

impl OnlineLearner {
    /// Boots a fresh daemon: pre-trains (or loads the cached pre-trained
    /// model), seeds the replay store from the pre-training classes under
    /// the configured budget, and publishes the model as version 1.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError`] for invalid configs and training/data
    /// failures.
    pub fn bootstrap(config: OnlineConfig) -> Result<Self, OnlineError> {
        Self::bootstrap_with_obs(config, Arc::new(ObsRegistry::new()))
    }

    /// [`bootstrap`](OnlineLearner::bootstrap) publishing metrics,
    /// spans and events into a shared observability registry (typically
    /// the one the serving layer also renders through its `metrics`
    /// op).
    ///
    /// # Errors
    ///
    /// As [`bootstrap`](OnlineLearner::bootstrap).
    pub fn bootstrap_with_obs(
        config: OnlineConfig,
        obs: Arc<ObsRegistry>,
    ) -> Result<Self, OnlineError> {
        config.validate()?;
        let (network, pretrain_acc) = cache::pretrained_network(&config.scenario)?;
        let data = phases::scenario_data(&config.scenario)?;
        let split = phases::scenario_split(&config.scenario)?;
        let (seeded, _ops) = phases::prepare_buffer(
            &network,
            &config.scenario,
            &config.method,
            &data.train,
            &split,
        )?;

        // Re-push through a budgeted store: the phase helper builds an
        // unbounded buffer, the daemon lives under a capacity.
        let mut buffer = match config.capacity_bits {
            Some(bits) => LatentReplayBuffer::with_capacity_bits(config.scenario.alignment, bits),
            None => LatentReplayBuffer::new(config.scenario.alignment),
        };
        for entry in &seeded {
            buffer.push(entry.clone());
        }

        let tracker = NoveltyTracker::new(
            split.pretrain_classes().iter().copied(),
            config.arrival_threshold,
        );
        let registry = Arc::new(ModelRegistry::new(network.clone(), "pretrained"));
        let instruments = Arc::new(Instruments::new(obs));
        let mut trainer = IncrementalTrainer::new();
        trainer.attach_obs(&instruments.registry);
        instruments.version.set(1);
        instruments.buffer_entries.set(buffer.len() as i64);
        instruments
            .buffer_bits
            .set(buffer.footprint().total_bits as i64);
        Ok(OnlineLearner {
            config,
            obs: instruments,
            registry,
            network,
            buffer,
            trainer,
            tracker,
            pending: Vec::new(),
            cursor: 0,
            version: 1,
            event_digest: EVENT_DIGEST_SEED,
            event_log: Vec::new(),
            pretrain_acc,
        })
    }

    /// Resumes a daemon from its checkpoint: model, replay store,
    /// pending novel-class latents, stream cursor, version counter and
    /// event digest all restore bit-exactly, and the restored model is
    /// published to a fresh registry. A resumed run continues exactly
    /// where an uninterrupted one would be — same future increments,
    /// same future checkpoints.
    ///
    /// The in-memory event *log* restarts empty; its rolling digest
    /// carries the history.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidConfig`] if no checkpoint path is
    /// configured or the config's latent-store policy (capacity,
    /// alignment) contradicts the checkpoint's — a budget change needs a
    /// fresh bootstrap, not a silent mismatch between the config and the
    /// restored store — and [`OnlineError::Io`]/
    /// [`OnlineError::Checkpoint`] for unreadable or corrupt checkpoints.
    pub fn resume(config: OnlineConfig) -> Result<Self, OnlineError> {
        Self::resume_with_obs(config, Arc::new(ObsRegistry::new()))
    }

    /// [`resume`](OnlineLearner::resume) publishing into a shared
    /// observability registry.
    ///
    /// # Errors
    ///
    /// As [`resume`](OnlineLearner::resume).
    pub fn resume_with_obs(
        config: OnlineConfig,
        obs: Arc<ObsRegistry>,
    ) -> Result<Self, OnlineError> {
        let path = config
            .checkpoint_path
            .as_ref()
            .ok_or_else(|| OnlineError::InvalidConfig {
                what: "checkpoint_path",
                detail: "resume needs a checkpoint path".into(),
            })?;
        let ckpt = Checkpoint::read(path)?;
        let source = format!("checkpoint:{}", path.display());
        Self::resume_from_checkpoint_with_obs(config, ckpt, &source, obs)
    }

    /// Resumes from an in-memory [`Checkpoint`] instead of a file — the
    /// entry a promoted follower takes: it already holds the fleet's
    /// latest applied checkpoint (received over the wire) and continues
    /// the learning stream from that exact state, producing the same
    /// future increments the crashed learner would have.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidConfig`] if the checkpoint's
    /// determinism digest does not match `config` (see
    /// [`resume`](OnlineLearner::resume)).
    pub fn resume_from_checkpoint(
        config: OnlineConfig,
        ckpt: Checkpoint,
        source: &str,
    ) -> Result<Self, OnlineError> {
        Self::resume_from_checkpoint_with_obs(config, ckpt, source, Arc::new(ObsRegistry::new()))
    }

    /// [`resume_from_checkpoint`](OnlineLearner::resume_from_checkpoint)
    /// publishing into a shared observability registry.
    ///
    /// # Errors
    ///
    /// As [`resume_from_checkpoint`](OnlineLearner::resume_from_checkpoint).
    pub fn resume_from_checkpoint_with_obs(
        config: OnlineConfig,
        ckpt: Checkpoint,
        source: &str,
        obs: Arc<ObsRegistry>,
    ) -> Result<Self, OnlineError> {
        let registry = Arc::new(ModelRegistry::with_initial_version(
            ckpt.network.clone(),
            source,
            ckpt.version,
        ));
        Self::resume_into_registry_with_obs(config, ckpt, registry, obs)
    }

    /// [`resume_from_checkpoint`](OnlineLearner::resume_from_checkpoint)
    /// publishing into an *existing* [`ModelRegistry`] — the registry a
    /// running server is already bound to. The registry must already
    /// hold the checkpoint's version (the follower applied those exact
    /// bytes before promotion), so the learner continues publishing
    /// where the registry left off and the wire-visible `model_version`
    /// never regresses.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidConfig`] if the registry's version
    /// differs from the checkpoint's, or on a determinism-digest
    /// mismatch (see [`resume`](OnlineLearner::resume)).
    pub fn resume_into_registry_with_obs(
        config: OnlineConfig,
        ckpt: Checkpoint,
        registry: Arc<ModelRegistry>,
        obs: Arc<ObsRegistry>,
    ) -> Result<Self, OnlineError> {
        config.validate()?;
        if registry.version() != ckpt.version {
            return Err(OnlineError::InvalidConfig {
                what: "registry",
                detail: format!(
                    "the serving registry is at v{} but the checkpoint is v{}; \
                     a promoted learner must resume from the exact state the \
                     registry serves",
                    registry.version(),
                    ckpt.version
                ),
            });
        }
        if ckpt.config_digest != config.determinism_digest() {
            return Err(OnlineError::InvalidConfig {
                what: "config",
                detail: format!(
                    "the checkpoint was written under a different configuration \
                     (digest {:016x}, this config {:016x}); a resumed run would \
                     silently diverge from the recorded history — changing seed, \
                     epochs, method, thresholds or budget requires a fresh bootstrap",
                    ckpt.config_digest,
                    config.determinism_digest()
                ),
            });
        }
        let mut tracker =
            NoveltyTracker::new(ckpt.known_classes.iter().copied(), config.arrival_threshold);
        // Re-observing the persisted pending labels rebuilds the tracker's
        // counts exactly (one observation per captured sample).
        for &(label, _) in &ckpt.pending {
            tracker.observe(label);
        }
        let pending = ckpt.pending;
        let instruments = Arc::new(Instruments::new(obs));
        // The trainer's arenas restart per process; the durable
        // increment count lives in the version counter.
        let mut trainer = IncrementalTrainer::new();
        trainer.attach_obs(&instruments.registry);
        instruments.version.set(ckpt.version as i64);
        instruments.buffer_entries.set(ckpt.buffer.len() as i64);
        instruments
            .buffer_bits
            .set(ckpt.buffer.footprint().total_bits as i64);
        instruments.pending_samples.set(pending.len() as i64);
        Ok(OnlineLearner {
            config,
            obs: instruments,
            registry,
            network: ckpt.network,
            buffer: ckpt.buffer,
            trainer,
            tracker,
            pending,
            cursor: ckpt.cursor,
            version: ckpt.version,
            event_digest: ckpt.event_digest,
            event_log: Vec::new(),
            pretrain_acc: f64::NAN,
        })
    }

    /// The daemon configuration.
    #[must_use]
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// The registry this learner publishes to — hand it to
    /// `ncl_serve::Server::start` to serve predictions concurrently.
    #[must_use]
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.registry)
    }

    /// The observability registry this learner records into (stage
    /// timings, counters, structured events) — share it with a server
    /// via `Server::start_with_obs` to scrape one merged exposition.
    #[must_use]
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.obs.registry
    }

    /// The current network (the last published model).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The latent replay store.
    #[must_use]
    pub fn buffer(&self) -> &LatentReplayBuffer {
        &self.buffer
    }

    /// Daemon model version (1 = pretrained, +1 per increment).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Next stream sequence number the daemon expects.
    #[must_use]
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Classes learned so far, sorted.
    #[must_use]
    pub fn known_classes(&self) -> &[u16] {
        self.tracker.known_classes()
    }

    /// Pending novel-class samples awaiting the arrival threshold.
    #[must_use]
    pub fn pending_samples(&self) -> usize {
        self.pending.len()
    }

    /// Rolling digest of the applied-event log.
    #[must_use]
    pub fn event_digest(&self) -> u64 {
        self.event_digest
    }

    /// The most recent events applied by *this process* — a bounded tail
    /// (the digest spans the whole lifetime across restarts; the log is
    /// trimmed past [`EVENT_LOG_CAP`] retained records so a lifelong
    /// daemon's memory stays flat).
    #[must_use]
    pub fn event_log(&self) -> &[EventRecord] {
        &self.event_log
    }

    /// Old-class test accuracy of the pre-trained model (NaN after a
    /// resume — the metric belongs to the bootstrap).
    #[must_use]
    pub fn pretrain_acc(&self) -> f64 {
        self.pretrain_acc
    }

    /// The daemon's resumable state as a checkpoint value — including
    /// the pending novel-class latents, so a checkpoint taken between an
    /// arrival and its threshold resumes to exactly the state an
    /// uninterrupted run reaches.
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            version: self.version,
            cursor: self.cursor,
            event_digest: self.event_digest,
            config_digest: self.config.determinism_digest(),
            known_classes: self.tracker.known_classes().to_vec(),
            network: self.network.clone(),
            buffer: self.buffer.clone(),
            pending: self.pending.clone(),
        }
    }

    /// Borrowed checkpoint view — encodes the daemon state without
    /// cloning the model, the store or the pending pool (the per-increment
    /// persistence path).
    fn checkpoint_view(&self) -> crate::checkpoint::CheckpointView<'_> {
        crate::checkpoint::CheckpointView {
            version: self.version,
            cursor: self.cursor,
            event_digest: self.event_digest,
            config_digest: self.config.determinism_digest(),
            known_classes: self.tracker.known_classes(),
            network: &self.network,
            buffer: &self.buffer,
            pending: &self.pending,
        }
    }

    /// Serialized checkpoint bytes (what [`write_checkpoint`] persists).
    ///
    /// [`write_checkpoint`]: OnlineLearner::write_checkpoint
    #[must_use]
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        self.checkpoint_view().to_bytes()
    }

    /// Writes the checkpoint to the configured path (atomic tmp+rename).
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidConfig`] if no path is configured and
    /// [`OnlineError::Io`] for write failures.
    pub fn write_checkpoint(&self) -> Result<PathBuf, OnlineError> {
        let path =
            self.config
                .checkpoint_path
                .as_ref()
                .ok_or_else(|| OnlineError::InvalidConfig {
                    what: "checkpoint_path",
                    detail: "no checkpoint path configured".into(),
                })?;
        self.checkpoint_view().write(path)?;
        Ok(path.clone())
    }

    /// Captures the latent activation of one raw input: decimate to the
    /// method's operating timestep, apply the method's threshold policy to
    /// the frozen stages, read the insertion-layer activation.
    fn capture_latent(&self, raster: &SpikeRaster) -> Result<SpikeRaster, OnlineError> {
        let _span = self.obs.capture.enter();
        let (input, _ops) =
            phases::method_input(raster, &self.config.method, &self.config.scenario)?;
        let base = self.config.scenario.network.lif.v_threshold;
        let schedule = self
            .config
            .method
            .threshold_mode
            .schedule_for(&input, base)?;
        Ok(self.network.activations_at_scheduled(
            self.config.scenario.insertion_layer,
            &input,
            Some(&schedule),
        )?)
    }

    /// Ingests one stream event. Events must arrive in sequence order
    /// (`event.seq == self.cursor()`); a resumed daemon skips consumed
    /// events via [`SampleStream::events_from`].
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::OutOfOrder`] for sequence gaps and
    /// propagates capture/training/swap failures. On error no learner
    /// state changes — the cursor stays, pending/tracker mutations are
    /// rolled back — so the same event can be retried. A *checkpoint
    /// write* failure after a successful increment is deliberately not an
    /// error: the increment is applied and serving, only its durability
    /// lags; it is reported in [`IncrementReport::checkpoint_error`].
    pub fn ingest(&mut self, event: &StreamEvent) -> Result<IngestOutcome, OnlineError> {
        if event.seq != self.cursor {
            return Err(OnlineError::OutOfOrder {
                expected: self.cursor,
                got: event.seq,
            });
        }
        let obs = Arc::clone(&self.obs);
        let _span = obs.ingest.enter();
        obs.events.inc();
        let (mut outcome, action) = if self.tracker.is_known(event.label) {
            let refresh = self.config.capture_every > 0
                && event.seq.is_multiple_of(self.config.capture_every);
            if refresh {
                let latent = self.capture_latent(&event.raster)?;
                let entry =
                    LatentEntry::reduced(latent, self.config.scenario.data.steps, event.label);
                match self.buffer.push(entry) {
                    PushOutcome::Stored { evicted } => (
                        IngestOutcome::Captured { evicted },
                        EventAction::Captured { evicted },
                    ),
                    PushOutcome::Rejected => {
                        (IngestOutcome::CaptureRejected, EventAction::CaptureRejected)
                    }
                }
            } else {
                (IngestOutcome::Observed, EventAction::Observed)
            }
        } else {
            let latent = self.capture_latent(&event.raster)?;
            self.pending.push((event.label, latent));
            match self.tracker.observe(event.label) {
                Observation::Arrived { class } => match self.run_increment(class) {
                    Ok(report) => {
                        let action = EventAction::Increment {
                            version: report.version,
                        };
                        (IngestOutcome::Increment(report), action)
                    }
                    Err(e) => {
                        // Roll back this event's contribution so a retry
                        // of the same event replays cleanly.
                        self.pending.pop();
                        self.tracker.retract(event.label);
                        return Err(e);
                    }
                },
                Observation::Pending { class, pending } => (
                    IngestOutcome::Pending { class, pending },
                    EventAction::Pending { pending },
                ),
                // `is_known` returned false just above and nothing else
                // mutates the tracker in between, so this arm cannot be
                // reached — degrade to the benign outcome anyway rather
                // than panic mid-ingest.
                Observation::Known => (IngestOutcome::Observed, EventAction::Observed),
            }
        };

        self.cursor = event.seq + 1;
        let record = EventRecord {
            seq: event.seq,
            label: event.label,
            action,
        };
        for word in record.digest_words() {
            self.event_digest = fnv1a_fold(self.event_digest, word);
        }
        self.event_log.push(record);
        // The digest carries the full history; the in-memory log is a
        // bounded tail so a lifelong daemon does not grow without limit.
        if self.event_log.len() >= 2 * EVENT_LOG_CAP {
            self.event_log.drain(..EVENT_LOG_CAP);
        }

        // An increment is the durable state change; persist it before the
        // next event so a crash resumes from *after* the increment. A
        // failed write is availability-over-durability: the increment is
        // live, the report says durable state lags.
        if let IngestOutcome::Increment(report) = &mut outcome {
            if self.config.checkpoint_path.is_some() {
                let ckpt_span = obs.checkpoint.enter();
                let started = Instant::now();
                match self.write_checkpoint() {
                    Ok(_) => report.checkpoint_wall = started.elapsed(),
                    Err(e) => {
                        obs.checkpoint_errors.inc();
                        obs.registry.event(
                            Level::Error,
                            "checkpoint write failed after a committed increment",
                            &[
                                ("version", &report.version.to_string()),
                                ("error", &e.to_string()),
                            ],
                        );
                        report.checkpoint_error = Some(e.to_string());
                    }
                }
                drop(ckpt_span);
            }
        }
        obs.version.set(self.version as i64);
        obs.buffer_entries.set(self.buffer.len() as i64);
        obs.buffer_bits
            .set(self.buffer.footprint().total_bits as i64);
        obs.pending_samples.set(self.pending.len() as i64);
        Ok(outcome)
    }

    /// Runs one Replay4NCL increment: train the learning stages on
    /// replay ∪ pending, fold the pending latents into the store, promote
    /// the class, bump the version and hot-swap the result.
    ///
    /// The increment is **transactional**: training runs on a candidate
    /// copy of the network and every fallible step (training, the
    /// registry swap) happens before any learner state is touched — an
    /// error leaves the learner exactly as it was, so the triggering
    /// event can be retried.
    fn run_increment(&mut self, trigger_class: u16) -> Result<IncrementReport, OnlineError> {
        let obs = Arc::clone(&self.obs);
        let scenario = &self.config.scenario;
        let method = &self.config.method;
        let decompress = method.replay.as_ref().is_some_and(|r| r.decompress);
        // The whole increment is one trace: a root span over the
        // replay_mix/train/swap stages, so a slow increment shows its
        // phase breakdown in the daemon's `traces` data alongside the
        // per-stage histograms.
        let tracer = obs.registry.tracer();
        let increment_span = tracer.start_span(&tracer.new_trace(), "increment");
        let stage_ctx = increment_span.context();
        let mix_span = obs.replay_mix.enter_traced(tracer, &stage_ctx);
        let replay = self.buffer.replay_samples(decompress)?;

        // Class-balance the update: the pending pool (arrival_threshold
        // samples) is typically much smaller than the replay store's
        // per-class population, and training on the raw union would
        // drown the new class's gradient signal in replay. Repeat the
        // pending refs round-robin until the new class matches the
        // heaviest stored class — a deterministic function of the store,
        // so checkpoints stay worker-count invariant.
        let heaviest = self
            .buffer
            .class_counts()
            .iter()
            .map(|&(_, count)| count)
            .max()
            .unwrap_or(1);
        let repeats = heaviest.div_ceil(self.pending.len().max(1)).max(1);
        let mut train_set: Vec<(&SpikeRaster, u16)> =
            Vec::with_capacity(self.pending.len() * repeats + replay.len());
        for _ in 0..repeats {
            train_set.extend(self.pending.iter().map(|(l, r)| (r, *l)));
        }
        train_set.extend(replay.iter().map(|(r, l)| (r, *l)));
        drop(mix_span);

        let options = TrainOptions {
            from_stage: scenario.insertion_layer,
            batch_size: scenario.batch_size,
            parallelism: scenario.parallelism,
            threshold_mode: method.threshold_mode,
        };
        // The RNG stream depends only on the scenario seed and the
        // version being produced — identical across worker counts and
        // across crash/resume boundaries.
        let mut rng = Rng::seed_from_u64(scenario.seed ^ INCREMENT_SALT ^ (self.version + 1));
        let lr = scenario.pretrain_lr / method.lr_divisor;

        // Train a candidate, not self.network: a failed epoch may leave
        // partially-applied optimizer steps behind, and the learner must
        // stay untouched for the retry.
        let mut candidate = self.network.clone();
        let train_span = obs.train.enter_traced(tracer, &stage_ctx);
        let train_started = Instant::now();
        let outcome = self.trainer.run_increment(
            &mut candidate,
            &train_set,
            lr,
            scenario.cl_epochs,
            &options,
            &mut rng,
        )?;
        let train_wall = train_started.elapsed();
        drop(train_span);
        drop(train_set);

        // Publish first (the last fallible step), then commit.
        let next_version = self.version + 1;
        let swap_span = obs.swap.enter_traced(tracer, &stage_ctx);
        let swap_started = Instant::now();
        let registry_version = self
            .registry
            .swap_network(candidate.clone(), &format!("increment-{next_version}"))?;
        let swap_latency = swap_started.elapsed();
        drop(swap_span);
        obs.increments.inc();

        // --- commit (infallible from here) -------------------------------
        self.network = candidate;
        self.version = next_version;
        // Fold the pending latents into the store (they are the new
        // class's replay data for *future* increments) and promote every
        // class that contributed. A budget rejection here means the class
        // will have NO replay representation — surfaced in the report so
        // callers can alarm on it.
        let mut classes: Vec<u16> = self.pending.iter().map(|(l, _)| *l).collect();
        classes.sort_unstable();
        classes.dedup();
        let mut stored_entries = 0usize;
        let mut rejected_entries = 0usize;
        for (label, latent) in self.pending.drain(..) {
            match self
                .buffer
                .push(LatentEntry::reduced(latent, scenario.data.steps, label))
            {
                PushOutcome::Stored { .. } => stored_entries += 1,
                PushOutcome::Rejected => rejected_entries += 1,
            }
        }
        for &class in &classes {
            self.tracker.promote(class);
        }
        debug_assert!(classes.contains(&trigger_class));

        Ok(IncrementReport {
            version: self.version,
            registry_version,
            classes,
            train_samples: outcome.samples,
            epoch_losses: outcome.epoch_losses,
            train_wall,
            swap_latency,
            checkpoint_wall: Duration::ZERO,
            stored_entries,
            rejected_entries,
            checkpoint_error: None,
        })
    }

    /// Ingests every not-yet-consumed event of a stream.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ingest`] failure (the cursor stays at the
    /// failed event, so the call is resumable).
    ///
    /// [`ingest`]: OnlineLearner::ingest
    pub fn run_stream(&mut self, stream: &SampleStream) -> Result<RunSummary, OnlineError> {
        let mut summary = RunSummary {
            events_applied: 0,
            increments: Vec::new(),
        };
        let cursor = self.cursor;
        for event in stream.events_from(cursor) {
            let outcome = self.ingest(event)?;
            summary.events_applied += 1;
            if let IngestOutcome::Increment(report) = outcome {
                summary.increments.push(report);
            }
        }
        Ok(summary)
    }

    /// Top-1 accuracy of the *current* model over labeled raw inputs,
    /// evaluated through the method's operating pipeline (decimation +
    /// frozen stages + learning stages) — the metric an increment is
    /// supposed to move.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError`] for simulation failures.
    pub fn evaluate(&self, samples: &[(&SpikeRaster, u16)]) -> Result<f64, OnlineError> {
        let base = self.config.scenario.network.lif.v_threshold;
        let mut correct = 0usize;
        for &(raster, label) in samples {
            let (input, _) =
                phases::method_input(raster, &self.config.method, &self.config.scenario)?;
            let schedule = self
                .config
                .method
                .threshold_mode
                .schedule_for(&input, base)?;
            let logits = self.network.forward_from(0, &input, Some(&schedule))?;
            if ncl_tensor::ops::argmax(&logits) == Some(usize::from(label)) {
                correct += 1;
            }
        }
        Ok(correct as f64 / samples.len().max(1) as f64)
    }

    /// Renders the daemon state as a deterministic JSON object (the
    /// `ncl-learnd` status line and the bench emitter both use it).
    #[must_use]
    pub fn status_json(&self) -> serde_json::Value {
        use serde_json::Value;
        ncl_serve::protocol::object(vec![
            ("version", Value::from(self.version)),
            ("cursor", Value::from(self.cursor)),
            ("increments", Value::from(self.version.saturating_sub(1))),
            (
                "known_classes",
                self.tracker
                    .known_classes()
                    .iter()
                    .map(|&c| Value::from(u64::from(c)))
                    .collect::<Value>(),
            ),
            ("pending_samples", Value::from(self.pending.len() as u64)),
            ("buffer_entries", Value::from(self.buffer.len() as u64)),
            (
                "buffer_bits",
                Value::from(self.buffer.footprint().total_bits),
            ),
            (
                "event_digest",
                Value::from(format!("{:016x}", self.event_digest)),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamConfig;

    fn test_config(dir: &str) -> (OnlineConfig, StreamConfig) {
        let mut config = OnlineConfig::smoke();
        config.scenario.pretrain_epochs = 4;
        config.scenario.cl_epochs = 3;
        config.arrival_threshold = 3;
        let ckpt_dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&ckpt_dir).unwrap();
        config.checkpoint_path = Some(ckpt_dir.join("daemon.ckpt"));
        let mut stream = StreamConfig::smoke();
        stream.scenario = config.scenario.clone();
        stream.warmup_events = 10;
        stream.total_events = 24;
        stream.novel_every = 2;
        (config, stream)
    }

    #[test]
    fn daemon_learns_the_novel_class_and_checkpoints() {
        let (config, stream_config) = test_config("ncl-online-daemon-test");
        let ckpt_path = config.checkpoint_path.clone().unwrap();
        let stream = SampleStream::generate(&stream_config).unwrap();
        let mut learner = OnlineLearner::bootstrap(config.clone()).unwrap();
        assert_eq!(learner.version(), 1);
        assert!(!learner.buffer().is_empty(), "bootstrap seeds the store");
        assert!(learner.pretrain_acc() > 0.0);

        let summary = learner.run_stream(&stream).unwrap();
        assert_eq!(summary.events_applied, stream.len());
        assert!(
            !summary.increments.is_empty(),
            "the novel class must trigger at least one increment"
        );
        let first = &summary.increments[0];
        assert_eq!(first.version, 2);
        assert_eq!(first.classes, vec![stream.novel_class()]);
        assert!(first.train_samples > 0);
        assert_eq!(first.epoch_losses.len(), 3);
        assert!(learner.known_classes().contains(&stream.novel_class()));
        assert_eq!(learner.registry().version(), learner.version());
        assert_eq!(learner.cursor(), stream.len() as u64);
        // The store now holds the novel class too.
        assert!(learner.buffer().class_count(stream.novel_class()) > 0);
        // Budget invariant survives online capture.
        let budget = config.capacity_bits.unwrap();
        assert!(learner.buffer().footprint().total_bits <= budget);
        // The increment checkpointed; the file restores to this state.
        let restored = Checkpoint::read(&ckpt_path).unwrap();
        assert!(restored.version >= 2);

        // The run left a full observability trail: stage timings for
        // every lifecycle phase, counters and gauges matching state.
        let text = learner.obs().render();
        for stage in [
            "ingest",
            "capture",
            "replay_mix",
            "train",
            "swap",
            "checkpoint",
        ] {
            assert!(
                text.contains(&format!("online_stage_us_count{{stage=\"{stage}\"}}")),
                "missing stage {stage}:\n{text}"
            );
        }
        assert!(text.contains(&format!("online_events_total {}", summary.events_applied)));
        assert!(text.contains(&format!(
            "online_increments_total {}",
            summary.increments.len()
        )));
        assert!(text.contains(&format!("online_version {}", learner.version())));
        assert!(learner.obs().spans_recorded() > 0, "spans were recorded");

        // Every committed increment left a trace rooted at `increment`
        // with the lifecycle stages as children (the tail sampler keeps
        // the first completed trace, so at least one survives).
        let captured = learner.obs().tracer().recent(0, usize::MAX);
        let increment_trace = captured
            .iter()
            .find(|f| f.spans.iter().any(|s| s.stage == "increment"))
            .expect("an increment trace was kept");
        let root = increment_trace
            .spans
            .iter()
            .find(|s| s.stage == "increment")
            .unwrap();
        for stage in ["replay_mix", "train", "swap"] {
            let child = increment_trace
                .spans
                .iter()
                .find(|s| s.stage == stage)
                .unwrap_or_else(|| panic!("missing {stage} span in {increment_trace:?}"));
            assert_eq!(child.parent, Some(root.span_id), "{stage} parents the root");
        }
        std::fs::remove_file(&ckpt_path).ok();
    }

    #[test]
    fn out_of_order_events_are_rejected() {
        let (mut config, stream_config) = test_config("ncl-online-order-test");
        config.checkpoint_path = None;
        let stream = SampleStream::generate(&stream_config).unwrap();
        let mut learner = OnlineLearner::bootstrap(config).unwrap();
        let events = stream.events();
        learner.ingest(&events[0]).unwrap();
        let err = learner.ingest(&events[5]).unwrap_err();
        assert!(matches!(
            err,
            OnlineError::OutOfOrder {
                expected: 1,
                got: 5
            }
        ));
        // The cursor did not advance; the right event still applies.
        learner.ingest(&events[1]).unwrap();
    }

    #[test]
    fn validation_rejects_replay_free_methods() {
        let mut config = OnlineConfig::smoke();
        config.method = MethodSpec::baseline();
        assert!(config.validate().is_err());
        let mut config = OnlineConfig::smoke();
        config.arrival_threshold = 0;
        assert!(config.validate().is_err());
    }
}
