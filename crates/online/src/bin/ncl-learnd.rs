//! `ncl-learnd` — the online continual-learning daemon process.
//!
//! Boots (or resumes) an [`OnlineLearner`], starts an `ncl-serve` TCP
//! front end on the same model registry, then ingests a deterministic
//! generated sample stream: known classes flow through (periodically
//! refreshing the latent store), a novel class arrives mid-stream, and
//! once enough of its samples accumulate the daemon trains a Replay4NCL
//! increment and hot-swaps the result — while the server keeps answering
//! predictions. Every increment writes an atomic checkpoint, so killing
//! the process at any point loses at most the events since the last
//! increment; `--resume` picks the stream back up from the cursor.
//!
//! ```sh
//! ncl-learnd [--port N] [--checkpoint PATH] [--resume]
//!            [--events N] [--warmup N] [--novel-every N]
//!            [--arrival-threshold N] [--capture-every N]
//!            [--workers N] [--cl-epochs N] [--pretrain-epochs N]
//!            [--capacity-bits N] [--seed N] [--delta-ring N]
//!            [--exit-after-stream] [--verify-checkpoint] [--quiet]
//! ```
//!
//! `--verify-checkpoint` loads the checkpoint, validates it end to end
//! (CRC, model bytes, RLE frames, budget invariant) and prints a JSON
//! summary — the CI smoke uses it to assert clean restores.

use std::path::PathBuf;
use std::sync::Arc;

use ncl_obs::Level;
use ncl_online::checkpoint::Checkpoint;
use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_serve::protocol::object;
use ncl_serve::server::{Server, ServerConfig};
use serde_json::Value;

struct Args {
    port: u16,
    checkpoint: Option<PathBuf>,
    resume: bool,
    verify_checkpoint: bool,
    events: usize,
    warmup: usize,
    novel_every: usize,
    arrival_threshold: usize,
    capture_every: u64,
    workers: usize,
    cl_epochs: usize,
    pretrain_epochs: usize,
    capacity_bits: Option<u64>,
    seed: u64,
    delta_ring: usize,
    exit_after_stream: bool,
    quiet: bool,
}

fn usage(problem: &str) -> ! {
    eprintln!("ncl-learnd: {problem}");
    eprintln!(
        "usage: ncl-learnd [--port N] [--checkpoint PATH] [--resume] [--events N] \
         [--warmup N] [--novel-every N] [--arrival-threshold N] [--capture-every N] \
         [--workers N] [--cl-epochs N] [--pretrain-epochs N] [--capacity-bits N] \
         [--seed N] [--delta-ring N] [--exit-after-stream] [--verify-checkpoint] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        port: 0,
        checkpoint: None,
        resume: false,
        verify_checkpoint: false,
        events: 60,
        warmup: 24,
        novel_every: 3,
        arrival_threshold: 4,
        capture_every: 4,
        workers: 2,
        cl_epochs: 6,
        pretrain_epochs: 10,
        capacity_bits: None,
        seed: 0x57EA4,
        delta_ring: OnlineConfig::smoke().delta_ring,
        exit_after_stream: false,
        quiet: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        macro_rules! parse {
            ($flag:literal) => {
                value($flag)
                    .parse()
                    .unwrap_or_else(|_| usage(concat!($flag, " must be a non-negative integer")))
            };
        }
        match arg.as_str() {
            "--port" => args.port = parse!("--port"),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            "--resume" => args.resume = true,
            "--verify-checkpoint" => args.verify_checkpoint = true,
            "--events" => args.events = parse!("--events"),
            "--warmup" => args.warmup = parse!("--warmup"),
            "--novel-every" => args.novel_every = parse!("--novel-every"),
            "--arrival-threshold" => args.arrival_threshold = parse!("--arrival-threshold"),
            "--capture-every" => args.capture_every = parse!("--capture-every"),
            "--workers" => args.workers = parse!("--workers"),
            "--cl-epochs" => args.cl_epochs = parse!("--cl-epochs"),
            "--pretrain-epochs" => args.pretrain_epochs = parse!("--pretrain-epochs"),
            "--capacity-bits" => args.capacity_bits = Some(parse!("--capacity-bits")),
            "--seed" => args.seed = parse!("--seed"),
            "--delta-ring" => args.delta_ring = parse!("--delta-ring"),
            "--exit-after-stream" => args.exit_after_stream = true,
            "--quiet" => args.quiet = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    args
}

fn verify_checkpoint(path: &std::path::Path) -> i32 {
    match Checkpoint::read(path) {
        Ok(ckpt) => {
            let summary = object(vec![
                ("ok", Value::from(true)),
                ("version", Value::from(ckpt.version)),
                ("cursor", Value::from(ckpt.cursor)),
                ("increments", Value::from(ckpt.version.saturating_sub(1))),
                ("entries", Value::from(ckpt.buffer.len())),
                (
                    "buffer_bits",
                    Value::from(ckpt.buffer.footprint().total_bits),
                ),
                (
                    "event_digest",
                    Value::from(format!("{:016x}", ckpt.event_digest)),
                ),
                (
                    "known_classes",
                    ckpt.known_classes
                        .iter()
                        .map(|&c| Value::from(u64::from(c)))
                        .collect::<Value>(),
                ),
                (
                    "model_bytes",
                    Value::from(ncl_snn::serialize::to_bytes(&ckpt.network).len()),
                ),
            ]);
            println!("{}", summary.to_json());
            0
        }
        Err(e) => {
            println!(
                "{}",
                object(vec![
                    ("ok", Value::from(false)),
                    ("error", Value::from(e.to_string())),
                ])
                .to_json()
            );
            1
        }
    }
}

fn main() {
    let args = parse_args();
    if args.verify_checkpoint {
        let Some(path) = &args.checkpoint else {
            usage("--verify-checkpoint needs --checkpoint PATH");
        };
        std::process::exit(verify_checkpoint(path));
    }
    if let Err(e) = run(&args) {
        eprintln!("ncl-learnd: {e}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = OnlineConfig::smoke();
    config.scenario.parallelism = args.workers.max(1);
    config.scenario.cl_epochs = args.cl_epochs.max(1);
    config.scenario.pretrain_epochs = args.pretrain_epochs.max(1);
    config.arrival_threshold = args.arrival_threshold;
    config.capture_every = args.capture_every;
    if let Some(bits) = args.capacity_bits {
        config.capacity_bits = Some(bits);
    }
    config.delta_ring = args.delta_ring.max(1);
    config.checkpoint_path = args.checkpoint.clone();

    let stream_config = StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: args.warmup,
        total_events: args.events,
        novel_every: args.novel_every.max(1),
        seed: args.seed,
    };

    // --resume must never silently fall back to a fresh bootstrap: a
    // missing file (typo, unmounted volume) would re-pretrain from
    // scratch and serve a model that forgot every online-learned class.
    if args.resume {
        let Some(path) = &config.checkpoint_path else {
            usage("--resume needs --checkpoint PATH");
        };
        if !path.exists() {
            return Err(format!(
                "--resume: checkpoint {} does not exist; drop --resume to bootstrap fresh",
                path.display()
            )
            .into());
        }
    }
    // One observability registry spans the whole process: the learner's
    // stage timings and events, the trainer's epoch histogram and the
    // server's request metrics all land in it, so one `metrics` scrape
    // covers every layer.
    let obs = Arc::new(ncl_obs::Registry::new());
    let mut learner = if args.resume {
        let learner = OnlineLearner::resume_with_obs(config.clone(), Arc::clone(&obs))?;
        if !args.quiet {
            println!(
                "resumed from checkpoint: model v{}, cursor {}, {} latent entries",
                learner.version(),
                learner.cursor(),
                learner.buffer().len()
            );
        }
        // The daemon config is digest-checked against the checkpoint, but
        // the *stream* is input data the checkpoint cannot vouch for:
        // events before the cursor were consumed from the original run's
        // stream, so the stream flags must match it for the replayed
        // history to be the one the digest records.
        eprintln!(
            "ncl-learnd: note: resuming at cursor {} of a generated stream \
             (--seed {} --events {} --warmup {} --novel-every {}); these flags must \
             match the original run, or the continued history diverges from the \
             recorded one",
            learner.cursor(),
            args.seed,
            args.events,
            args.warmup,
            args.novel_every
        );
        learner
    } else {
        let learner = OnlineLearner::bootstrap_with_obs(config.clone(), Arc::clone(&obs))?;
        if !args.quiet {
            println!(
                "pre-trained on {} classes: {:.1}% test accuracy, {} latent entries seeded",
                learner.known_classes().len(),
                learner.pretrain_acc() * 100.0,
                learner.buffer().len()
            );
        }
        learner
    };

    let server = Server::start_with_obs(
        learner.registry(),
        ServerConfig {
            port: args.port,
            ..ServerConfig::default()
        },
        None,
        Arc::clone(&obs),
    )?;
    println!(
        "listening on {} (model v{})",
        server.local_addr(),
        learner.version()
    );

    let stream = SampleStream::generate(&stream_config)?;
    let mut applied = 0usize;
    let mut increments = 0usize;
    let started = std::time::Instant::now();
    for event in stream.events_from(learner.cursor()) {
        match learner.ingest(event)? {
            IngestOutcome::Increment(report) => {
                increments += 1;
                // Structured events (counted per level in the metric
                // registry; Warn/Error still echo to stderr).
                if let Some(e) = &report.checkpoint_error {
                    obs.event(
                        Level::Warn,
                        "increment applied but its checkpoint write failed; durable state \
                         lags until the next successful write",
                        &[("version", &report.version.to_string()), ("error", e)],
                    );
                }
                if report.rejected_entries > 0 {
                    obs.event(
                        Level::Warn,
                        "the latent budget rejected new-class entries; the class is \
                         under-represented in replay",
                        &[
                            ("rejected", &report.rejected_entries.to_string()),
                            (
                                "produced",
                                &(report.rejected_entries + report.stored_entries).to_string(),
                            ),
                            ("classes", &format!("{:?}", report.classes)),
                        ],
                    );
                }
                if !args.quiet {
                    println!(
                        "increment v{}: learned class(es) {:?} from {} samples in {:.0} ms \
                         (swap {} µs, checkpoint {:.0} ms)",
                        report.version,
                        report.classes,
                        report.train_samples,
                        report.train_wall.as_secs_f64() * 1e3,
                        report.swap_latency.as_micros(),
                        report.checkpoint_wall.as_secs_f64() * 1e3,
                    );
                }
            }
            outcome => {
                if !args.quiet {
                    if let IngestOutcome::Pending { class, pending } = outcome {
                        println!("novel class {class}: {pending} pending sample(s)");
                    }
                }
            }
        }
        applied += 1;
    }
    let elapsed = started.elapsed();
    if learner.config().checkpoint_path.is_some() {
        learner.write_checkpoint()?;
    }
    println!(
        "stream done: {applied} events in {:.1} s ({:.0} events/s), {increments} increment(s), \
         model v{}, event digest {:016x}",
        elapsed.as_secs_f64(),
        applied as f64 / elapsed.as_secs_f64().max(1e-9),
        learner.version(),
        learner.event_digest(),
    );
    if !args.quiet {
        println!("status: {}", learner.status_json().to_json());
    }

    if args.exit_after_stream {
        server.shutdown();
    } else {
        // Keep serving until a client sends the shutdown op.
        server.wait();
    }
    println!("drained and stopped.");
    Ok(())
}
