//! `ncl-online-bench` — measures the online loop end to end and emits
//! `BENCH_online.json`.
//!
//! ```sh
//! ncl-online-bench [--events N] [--workers N] [--cl-epochs N]
//!                  [--quick] [--out BENCH_online.json]
//! ```
//!
//! The run is the real daemon lifecycle, not a synthetic microbenchmark:
//! bootstrap (pre-train + seed the latent store), serve over TCP, ingest
//! a generated stream with a mid-stream novel-class arrival, train the
//! increment, hot-swap — all while two background TCP clients hammer
//! predictions. Reported:
//!
//! * **ingest throughput** — stream events applied per second (capture +
//!   bookkeeping + the amortized increment);
//! * **increment wall time** — the background Replay4NCL update
//!   (training replay ∪ pending on the arena pool);
//! * **stall-free swap latency** — the registry pointer exchange under
//!   live prediction load, with the load's failure count (must be 0:
//!   a swap never drops an in-flight or subsequent request);
//! * **checkpoint cost** — encode/decode wall time, size, and the
//!   canonical-form round-trip check.
//!
//! The binary exits non-zero if any prediction failed or the checkpoint
//! does not round-trip — a benchmark of a broken loop is meaningless.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ncl_online::checkpoint::Checkpoint;
use ncl_online::daemon::{IngestOutcome, OnlineConfig, OnlineLearner};
use ncl_online::stream::{SampleStream, StreamConfig};
use ncl_serve::client::NclClient;
use ncl_serve::protocol::{self, object};
use ncl_serve::server::{Server, ServerConfig};
use serde_json::Value;

struct Args {
    events: usize,
    workers: usize,
    cl_epochs: usize,
    out: String,
}

fn usage(problem: &str) -> ! {
    eprintln!("ncl-online-bench: {problem}");
    eprintln!("usage: ncl-online-bench [--events N] [--workers N] [--cl-epochs N] [--quick] [--out file.json]");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut events: Option<usize> = None;
    let mut cl_epochs: Option<usize> = None;
    let mut workers = 2usize;
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--events" => {
                events = Some(
                    value("--events")
                        .parse()
                        .unwrap_or_else(|_| usage("--events must be a positive integer")),
                );
            }
            "--workers" => {
                workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("--workers must be a positive integer"));
            }
            "--cl-epochs" => {
                cl_epochs = Some(
                    value("--cl-epochs")
                        .parse()
                        .unwrap_or_else(|_| usage("--cl-epochs must be a positive integer")),
                );
            }
            "--quick" => quick = true,
            "--out" => out = Some(value("--out")),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    let (default_events, default_epochs) = if quick { (60, 4) } else { (150, 8) };
    let args = Args {
        events: events.unwrap_or(default_events),
        workers: workers.max(1),
        cl_epochs: cl_epochs.unwrap_or(default_epochs),
        out: out.unwrap_or_else(|| "BENCH_online.json".to_owned()),
    };
    if args.events < 10 {
        usage("--events must be at least 10 (the stream needs a warm phase)");
    }
    args
}

fn main() {
    let args = parse_args();

    let mut config = OnlineConfig::smoke();
    config.scenario.parallelism = args.workers;
    config.scenario.cl_epochs = args.cl_epochs;
    let ckpt_dir = std::env::temp_dir().join("ncl-online-bench");
    std::fs::create_dir_all(&ckpt_dir).expect("temp dir");
    config.checkpoint_path = Some(ckpt_dir.join("bench.ckpt"));

    let stream_config = StreamConfig {
        scenario: config.scenario.clone(),
        warmup_events: args.events / 3,
        total_events: args.events,
        novel_every: 3,
        seed: 0xBE_4C4,
    };
    let stream = SampleStream::generate(&stream_config).expect("stream generates");

    // --- bootstrap -------------------------------------------------------
    let boot_started = Instant::now();
    let mut learner = OnlineLearner::bootstrap(config.clone()).expect("bootstrap");
    let bootstrap_ms = boot_started.elapsed().as_secs_f64() * 1e3;
    println!(
        "bootstrap: {:.0} ms (pretrain acc {:.1}%, {} latent entries)",
        bootstrap_ms,
        learner.pretrain_acc() * 100.0,
        learner.buffer().len()
    );

    // --- serve + background prediction load ------------------------------
    let server = Server::start(learner.registry(), ServerConfig::default()).expect("server");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let probe = stream.events()[0].raster.clone();
    let mut clients = Vec::new();
    for _ in 0..2 {
        let stop = Arc::clone(&stop);
        let ok = Arc::clone(&ok);
        let failed = Arc::clone(&failed);
        let probe = probe.clone();
        clients.push(std::thread::spawn(move || {
            let Ok(mut client) = NclClient::connect(addr) else {
                failed.fetch_add(1, Ordering::Relaxed);
                return;
            };
            let mut id = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match client.round_trip(&protocol::predict_request_line(id, &probe)) {
                    Ok(reply) if reply.get("ok").and_then(Value::as_bool) == Some(true) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                id += 1;
            }
        }));
    }

    // --- ingest the stream -----------------------------------------------
    // The warm phase (known-class traffic only) isolates the steady-state
    // per-event cost; the total includes the increment's training and the
    // fsync'd checkpoint write, which dominate wall time.
    let ingest_started = Instant::now();
    let mut warm_wall = None;
    let mut increments: Vec<(u64, f64, u64, f64)> = Vec::new(); // version, train ms, swap µs, ckpt ms
    for event in stream.events() {
        if event.seq == stream_config.warmup_events as u64 {
            warm_wall = Some(ingest_started.elapsed());
        }
        if let IngestOutcome::Increment(report) = learner.ingest(event).expect("ingest") {
            println!(
                "increment v{}: {} samples, train {:.0} ms, swap {} µs",
                report.version,
                report.train_samples,
                report.train_wall.as_secs_f64() * 1e3,
                report.swap_latency.as_micros()
            );
            increments.push((
                report.version,
                report.train_wall.as_secs_f64() * 1e3,
                report.swap_latency.as_micros() as u64,
                report.checkpoint_wall.as_secs_f64() * 1e3,
            ));
        }
    }
    let ingest_wall = ingest_started.elapsed();
    let events_per_sec = stream.len() as f64 / ingest_wall.as_secs_f64().max(1e-9);
    let warm_events_per_sec = warm_wall.map_or(events_per_sec, |w| {
        stream_config.warmup_events as f64 / w.as_secs_f64().max(1e-9)
    });

    // --- checkpoint round trip -------------------------------------------
    let encode_started = Instant::now();
    let ckpt_bytes = learner.checkpoint_bytes();
    let encode_ms = encode_started.elapsed().as_secs_f64() * 1e3;
    let decode_started = Instant::now();
    let restored = Checkpoint::from_bytes(&ckpt_bytes).expect("checkpoint decodes");
    let decode_ms = decode_started.elapsed().as_secs_f64() * 1e3;
    let round_trip_ok = restored.to_bytes() == ckpt_bytes
        && restored.network == *learner.network()
        && restored.buffer == *learner.buffer();

    // --- drain the load and collect serving counters ----------------------
    // Let the load run a beat against the swapped-in model, so the counter
    // covers traffic before, during and after the swap.
    std::thread::sleep(std::time::Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    for handle in clients {
        let _ = handle.join();
    }
    let requests_ok = ok.load(Ordering::Relaxed);
    let requests_failed = failed.load(Ordering::Relaxed);
    server.shutdown();

    let swap_latency_us_max = increments.iter().map(|&(_, _, s, _)| s).max().unwrap_or(0);
    let report = object(vec![
        ("bench", Value::from("online")),
        (
            "config",
            object(vec![
                ("scenario", Value::from("smoke 48ch x 40 steps, 4 classes")),
                ("events", Value::from(stream.len())),
                ("warmup_events", Value::from(stream_config.warmup_events)),
                ("novel_every", Value::from(stream_config.novel_every)),
                ("workers", Value::from(args.workers)),
                ("cl_epochs", Value::from(args.cl_epochs)),
                ("arrival_threshold", Value::from(config.arrival_threshold)),
                ("capture_every", Value::from(config.capture_every)),
                (
                    "capacity_bits",
                    Value::from(config.capacity_bits.unwrap_or(0)),
                ),
            ]),
        ),
        (
            "ingest",
            object(vec![
                ("events", Value::from(stream.len())),
                ("wall_ms", Value::from(ingest_wall.as_secs_f64() * 1e3)),
                ("events_per_sec", Value::from(events_per_sec)),
                ("warm_events_per_sec", Value::from(warm_events_per_sec)),
            ]),
        ),
        (
            "increments",
            increments
                .iter()
                .map(|&(version, train_ms, swap_us, ckpt_ms)| {
                    object(vec![
                        ("version", Value::from(version)),
                        ("train_wall_ms", Value::from(train_ms)),
                        ("swap_latency_us", Value::from(swap_us)),
                        ("checkpoint_wall_ms", Value::from(ckpt_ms)),
                    ])
                })
                .collect::<Value>(),
        ),
        (
            "swap",
            object(vec![
                ("latency_us_max", Value::from(swap_latency_us_max)),
                ("predictions_ok_during_run", Value::from(requests_ok)),
                ("predictions_failed", Value::from(requests_failed)),
                ("stall_free", Value::from(requests_failed == 0)),
            ]),
        ),
        (
            "checkpoint",
            object(vec![
                ("bytes", Value::from(ckpt_bytes.len())),
                ("encode_ms", Value::from(encode_ms)),
                ("decode_ms", Value::from(decode_ms)),
                ("round_trip_ok", Value::from(round_trip_ok)),
            ]),
        ),
        ("bootstrap_ms", Value::from(bootstrap_ms)),
        ("final_version", Value::from(learner.version())),
        (
            "event_digest",
            Value::from(format!("{:016x}", learner.event_digest())),
        ),
        (
            "buffer_bits",
            Value::from(learner.buffer().footprint().total_bits),
        ),
    ]);
    std::fs::write(&args.out, format!("{}\n", report.to_json())).expect("write report");
    println!(
        "online bench: {:.0} events/s warm ingest ({:.0} overall incl. increments), \
         {} increment(s), swap {} µs max, {} predictions ({} failed), \
         checkpoint {} bytes -> {}",
        warm_events_per_sec,
        events_per_sec,
        increments.len(),
        swap_latency_us_max,
        requests_ok,
        requests_failed,
        ckpt_bytes.len(),
        args.out
    );

    if requests_failed > 0 {
        eprintln!("ncl-online-bench: {requests_failed} prediction(s) failed during the run");
        std::process::exit(1);
    }
    if !round_trip_ok {
        eprintln!("ncl-online-bench: checkpoint did not round-trip bit-exactly");
        std::process::exit(1);
    }
    if increments.is_empty() {
        eprintln!("ncl-online-bench: the stream never triggered an increment");
        std::process::exit(1);
    }
}
