//! Error type for the online-learning layer.

use std::error::Error;
use std::fmt;

use ncl_serve::error::ServeError;
use ncl_snn::SnnError;
use ncl_spike::SpikeError;
use replay4ncl::NclError;

/// Error returned by the online daemon and its components.
#[derive(Debug)]
pub enum OnlineError {
    /// A daemon or stream parameter was invalid.
    InvalidConfig {
        /// Which parameter failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A stream event arrived out of order (its sequence number does not
    /// match the daemon's cursor) — applying it would desynchronize the
    /// deterministic event log.
    OutOfOrder {
        /// The daemon's next expected sequence number.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// A checkpoint could not be decoded (corrupt, truncated, wrong
    /// format version). The daemon state is untouched.
    Checkpoint {
        /// Human-readable detail.
        detail: String,
    },
    /// A checkpoint delta was built on a different base version than the
    /// state it was applied to — replication must fall back to a full
    /// checkpoint instead of guessing.
    DeltaMismatch {
        /// The base version the applying replica holds.
        expected_base: u64,
        /// The base version the delta was built on.
        got_base: u64,
    },
    /// Underlying methodology failure.
    Ncl(NclError),
    /// Underlying network failure.
    Snn(SnnError),
    /// Underlying spike-raster failure.
    Spike(SpikeError),
    /// Underlying serving failure (registry swap).
    Serve(ServeError),
    /// Checkpoint or stream I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::InvalidConfig { what, detail } => write!(f, "invalid {what}: {detail}"),
            OnlineError::OutOfOrder { expected, got } => {
                write!(f, "out-of-order event: expected seq {expected}, got {got}")
            }
            OnlineError::Checkpoint { detail } => write!(f, "bad checkpoint: {detail}"),
            OnlineError::DeltaMismatch {
                expected_base,
                got_base,
            } => write!(
                f,
                "delta base mismatch: built on v{got_base}, this replica holds v{expected_base}"
            ),
            OnlineError::Ncl(e) => write!(f, "methodology failure: {e}"),
            OnlineError::Snn(e) => write!(f, "network failure: {e}"),
            OnlineError::Spike(e) => write!(f, "spike failure: {e}"),
            OnlineError::Serve(e) => write!(f, "serving failure: {e}"),
            OnlineError::Io(e) => write!(f, "i/o failure: {e}"),
        }
    }
}

impl Error for OnlineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OnlineError::Ncl(e) => Some(e),
            OnlineError::Snn(e) => Some(e),
            OnlineError::Spike(e) => Some(e),
            OnlineError::Serve(e) => Some(e),
            OnlineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NclError> for OnlineError {
    fn from(e: NclError) -> Self {
        OnlineError::Ncl(e)
    }
}

impl From<SnnError> for OnlineError {
    fn from(e: SnnError) -> Self {
        OnlineError::Snn(e)
    }
}

impl From<SpikeError> for OnlineError {
    fn from(e: SpikeError) -> Self {
        OnlineError::Spike(e)
    }
}

impl From<ServeError> for OnlineError {
    fn from(e: ServeError) -> Self {
        OnlineError::Serve(e)
    }
}

impl From<std::io::Error> for OnlineError {
    fn from(e: std::io::Error) -> Self {
        OnlineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = OnlineError::OutOfOrder {
            expected: 3,
            got: 7,
        };
        assert!(e.to_string().contains("expected seq 3"));
        assert!(e.source().is_none());
        let e = OnlineError::Checkpoint {
            detail: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("crc mismatch"));
        let e: OnlineError = std::io::Error::other("disk gone").into();
        assert!(e.source().is_some());
        let e: OnlineError = SnnError::InvalidStage {
            stage: 2,
            layers: 1,
        }
        .into();
        assert!(e.to_string().contains("network failure"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<OnlineError>();
    }
}
