//! Novel-class arrival detection.
//!
//! The daemon learns from *labels*: a label outside the known set marks a
//! novel class, and once enough of its samples have been captured (the
//! arrival threshold) a continual-learning increment is worth its cost —
//! one latent sample is not enough signal to train on, and triggering an
//! increment per sample would thrash the learning stages. The tracker is
//! pure bookkeeping (no I/O, no clocks), so its decisions are a
//! deterministic function of the observed label sequence.

use serde::{Deserialize, Serialize};

/// What one observed label means for the learning loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Observation {
    /// The label belongs to an already-learned class.
    Known,
    /// A novel class, still below the arrival threshold.
    Pending {
        /// The novel class.
        class: u16,
        /// Samples of it observed so far (including this one).
        pending: usize,
    },
    /// This sample pushed a novel class to the arrival threshold — run an
    /// increment. The class stays pending until [`NoveltyTracker::promote`]
    /// confirms the increment landed.
    Arrived {
        /// The class that reached the threshold.
        class: u16,
    },
}

/// Tracks which classes are learned and how many samples each novel class
/// has accumulated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoveltyTracker {
    /// Learned classes, sorted.
    known: Vec<u16>,
    /// Per novel class, samples observed so far, sorted by label.
    pending: Vec<(u16, usize)>,
    /// Samples a novel class needs before an increment fires.
    arrival_threshold: usize,
}

impl NoveltyTracker {
    /// Creates a tracker over the given known classes. A zero threshold is
    /// clamped to 1 — an increment needs at least one sample to train on.
    #[must_use]
    pub fn new(known: impl IntoIterator<Item = u16>, arrival_threshold: usize) -> Self {
        let mut known: Vec<u16> = known.into_iter().collect();
        known.sort_unstable();
        known.dedup();
        NoveltyTracker {
            known,
            pending: Vec::new(),
            arrival_threshold: arrival_threshold.max(1),
        }
    }

    /// The learned classes, sorted.
    #[must_use]
    pub fn known_classes(&self) -> &[u16] {
        &self.known
    }

    /// The configured arrival threshold.
    #[must_use]
    pub fn arrival_threshold(&self) -> usize {
        self.arrival_threshold
    }

    /// Whether `label` is a learned class.
    #[must_use]
    pub fn is_known(&self, label: u16) -> bool {
        self.known.binary_search(&label).is_ok()
    }

    /// Pending sample count of a novel class.
    #[must_use]
    pub fn pending(&self, class: u16) -> usize {
        self.pending
            .binary_search_by_key(&class, |&(c, _)| c)
            .map_or(0, |i| self.pending[i].1)
    }

    /// Observes one label, updating pending counts.
    pub fn observe(&mut self, label: u16) -> Observation {
        if self.is_known(label) {
            return Observation::Known;
        }
        let count = match self.pending.binary_search_by_key(&label, |&(c, _)| c) {
            Ok(i) => {
                self.pending[i].1 += 1;
                self.pending[i].1
            }
            Err(i) => {
                self.pending.insert(i, (label, 1));
                1
            }
        };
        if count >= self.arrival_threshold {
            Observation::Arrived { class: label }
        } else {
            Observation::Pending {
                class: label,
                pending: count,
            }
        }
    }

    /// Reverts one [`observe`] of a novel class — the rollback path when
    /// the work the observation triggered (an increment) fails and the
    /// event will be retried.
    ///
    /// [`observe`]: NoveltyTracker::observe
    pub fn retract(&mut self, class: u16) {
        if let Ok(i) = self.pending.binary_search_by_key(&class, |&(c, _)| c) {
            if self.pending[i].1 > 1 {
                self.pending[i].1 -= 1;
            } else {
                self.pending.remove(i);
            }
        }
    }

    /// Marks a class as learned (after a successful increment), clearing
    /// its pending count.
    pub fn promote(&mut self, class: u16) {
        if let Ok(i) = self.pending.binary_search_by_key(&class, |&(c, _)| c) {
            self.pending.remove(i);
        }
        if let Err(i) = self.known.binary_search(&class) {
            self.known.insert(i, class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_labels_pass_through() {
        let mut t = NoveltyTracker::new([0, 1, 2], 3);
        assert!(t.is_known(1));
        assert!(!t.is_known(9));
        assert_eq!(t.observe(2), Observation::Known);
        assert_eq!(t.pending(2), 0);
    }

    #[test]
    fn novel_class_arrives_at_the_threshold() {
        let mut t = NoveltyTracker::new([0, 1], 3);
        assert_eq!(
            t.observe(5),
            Observation::Pending {
                class: 5,
                pending: 1
            }
        );
        assert_eq!(
            t.observe(5),
            Observation::Pending {
                class: 5,
                pending: 2
            }
        );
        assert_eq!(t.observe(5), Observation::Arrived { class: 5 });
        // Until promoted, further samples keep reporting arrival.
        assert_eq!(t.observe(5), Observation::Arrived { class: 5 });
        t.promote(5);
        assert!(t.is_known(5));
        assert_eq!(t.observe(5), Observation::Known);
        assert_eq!(t.known_classes(), &[0, 1, 5]);
    }

    #[test]
    fn independent_novel_classes_accumulate_separately() {
        let mut t = NoveltyTracker::new([0], 2);
        t.observe(3);
        t.observe(7);
        assert_eq!(t.pending(3), 1);
        assert_eq!(t.pending(7), 1);
        assert_eq!(t.observe(7), Observation::Arrived { class: 7 });
        assert_eq!(t.pending(3), 1, "other classes unaffected");
    }

    #[test]
    fn retract_reverts_an_observation() {
        let mut t = NoveltyTracker::new([0], 3);
        t.observe(5);
        t.observe(5);
        t.retract(5);
        assert_eq!(t.pending(5), 1);
        t.retract(5);
        assert_eq!(t.pending(5), 0);
        // Retracting below zero or a known class is a no-op.
        t.retract(5);
        t.retract(0);
        assert_eq!(t.pending(5), 0);
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let mut t = NoveltyTracker::new([], 0);
        assert_eq!(t.arrival_threshold(), 1);
        assert_eq!(t.observe(4), Observation::Arrived { class: 4 });
    }
}
