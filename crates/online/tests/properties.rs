//! Property-based tests for the checkpoint format, mirroring the RLE
//! strictness proptests: encode → corrupt → restore must `Err`, never
//! load a wrong daemon state.

use ncl_online::checkpoint::Checkpoint;
use ncl_online::daemon::EVENT_DIGEST_SEED;
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::codec::{self, CompressionFactor};
use ncl_spike::memory::Alignment;
use ncl_spike::SpikeRaster;
use proptest::prelude::*;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};

/// Builds a structurally varied checkpoint (entry count, labels, raster
/// contents, codec vs reduced storage, counters) from scalar knobs.
fn build_checkpoint(
    seed: u64,
    cursor: u64,
    entries: usize,
    digest_salt: u64,
    bounded: bool,
) -> Checkpoint {
    let mut rng = ncl_tensor::Rng::seed_from_u64(seed);
    let mut network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
    // Perturb one weight so model payloads differ across cases.
    network.layer_mut(0).w_ff_mut().set(0, 0, rng.uniform_f32());
    let capacity = if bounded { Some(1u64 << 20) } else { None };
    let mut buffer = match capacity {
        Some(bits) => LatentReplayBuffer::with_capacity_bits(Alignment::Byte, bits),
        None => LatentReplayBuffer::new(Alignment::Byte),
    };
    for i in 0..entries {
        let raster = SpikeRaster::from_fn(5, 12, |_, _| rng.bernoulli(0.25));
        if i % 2 == 0 {
            buffer.push(LatentEntry::reduced(raster, 24, (i % 4) as u16));
        } else {
            buffer.push(LatentEntry::compressed(
                codec::compress(&raster, CompressionFactor::new(2).unwrap()),
                (i % 4) as u16,
            ));
        }
    }
    let pending = (0..entries % 3)
        .map(|i| {
            (
                10 + i as u16,
                SpikeRaster::from_fn(5, 8, |_, _| rng.bernoulli(0.3)),
            )
        })
        .collect();
    Checkpoint {
        version: 1 + entries as u64,
        cursor,
        event_digest: EVENT_DIGEST_SEED ^ digest_salt,
        config_digest: EVENT_DIGEST_SEED ^ digest_salt.rotate_left(17),
        known_classes: vec![0, 1, 2],
        network,
        buffer,
        pending,
    }
}

/// Strategy producing the checkpoint knobs.
fn knobs() -> impl Strategy<Value = (u64, u64, usize, u64, bool)> {
    (any::<u64>(), 1u64..1000, 0usize..6, any::<u64>(), 0u8..2)
        .prop_map(|(seed, cursor, entries, salt, b)| (seed, cursor, entries, salt, b == 1))
}

proptest! {
    /// The canonical-form guarantee: encode → decode → encode is the
    /// identity on bytes, and decode is the identity on state.
    #[test]
    fn checkpoint_round_trip_is_exact(k in knobs()) {
        let ckpt = build_checkpoint(k.0, k.1, k.2, k.3, k.4);
        let bytes = ckpt.to_bytes();
        let restored = Checkpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&restored, &ckpt);
        prop_assert_eq!(restored.to_bytes(), bytes);
    }

    /// The strictness guarantee: flipping any single byte anywhere in the
    /// encoding — header, counters, model weights, RLE frames, offsets or
    /// the trailing CRC — must fail the restore. A wrong buffer or model
    /// may never load silently.
    #[test]
    fn corrupt_one_byte_never_restores(
        k in knobs(),
        position in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let ckpt = build_checkpoint(k.0, k.1, k.2, k.3, k.4);
        let bytes = ckpt.to_bytes();
        let index = (position % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[index] ^= flip;
        prop_assert!(
            Checkpoint::from_bytes(&corrupt).is_err(),
            "flipping byte {} with {:#04x} was accepted", index, flip
        );
    }

    /// Truncation at any point fails cleanly (no panics, no partial
    /// state).
    #[test]
    fn truncated_checkpoints_never_restore(k in knobs(), cut in any::<u64>()) {
        let ckpt = build_checkpoint(k.0, k.1, k.2, k.3, k.4);
        let bytes = ckpt.to_bytes();
        let cut = (cut % bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err());
    }
}
