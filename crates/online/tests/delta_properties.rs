//! Property-based tests for the checkpoint-delta format, mirroring the
//! checkpoint strictness proptests: a delta must reconstruct its target
//! bit-identically, and any corruption, wrong base, or out-of-order
//! application must `Err` — a follower may never hot-swap wrong bytes.

use ncl_online::checkpoint::Checkpoint;
use ncl_online::daemon::EVENT_DIGEST_SEED;
use ncl_online::delta::CheckpointDelta;
use ncl_online::error::OnlineError;
use ncl_snn::{Network, NetworkConfig};
use ncl_spike::codec::{self, CompressionFactor};
use ncl_spike::memory::Alignment;
use ncl_spike::SpikeRaster;
use proptest::prelude::*;
use replay4ncl::buffer::{LatentEntry, LatentReplayBuffer};

/// Builds a structurally varied base checkpoint from scalar knobs (same
/// construction as the checkpoint proptests).
fn build_base(seed: u64, cursor: u64, entries: usize, bounded: bool) -> Checkpoint {
    let mut rng = ncl_tensor::Rng::seed_from_u64(seed);
    let mut network = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
    network.layer_mut(0).w_ff_mut().set(0, 0, rng.uniform_f32());
    let mut buffer = if bounded {
        LatentReplayBuffer::with_capacity_bits(Alignment::Byte, 1u64 << 20)
    } else {
        LatentReplayBuffer::new(Alignment::Byte)
    };
    for i in 0..entries {
        let raster = SpikeRaster::from_fn(5, 12, |_, _| rng.bernoulli(0.25));
        if i % 2 == 0 {
            buffer.push(LatentEntry::reduced(raster, 24, (i % 4) as u16));
        } else {
            buffer.push(LatentEntry::compressed(
                codec::compress(&raster, CompressionFactor::new(2).unwrap()),
                (i % 4) as u16,
            ));
        }
    }
    Checkpoint {
        version: 2 + entries as u64,
        cursor,
        event_digest: EVENT_DIGEST_SEED ^ seed,
        config_digest: EVENT_DIGEST_SEED ^ seed.rotate_left(17),
        known_classes: vec![0, 1, 2],
        network,
        buffer,
        pending: vec![(3, SpikeRaster::from_fn(5, 8, |n, t| (n + t) % 3 == 0))],
    }
}

/// Evolves `base` the way an increment does: nudge weights in one
/// stage, append store entries, learn a class, advance the counters.
fn evolve(base: &Checkpoint, weight_salt: u64, appended: usize) -> Checkpoint {
    let mut next = base.clone();
    let nudge = (weight_salt % 255) as f32 / 255.0 - 0.5;
    next.network
        .visit_trainable_mut(1, |plane| {
            for w in plane.iter_mut() {
                *w += nudge;
            }
        })
        .unwrap();
    for i in 0..appended {
        let raster = SpikeRaster::from_fn(5, 12, |n, t| (n * 7 + t * 5 + i) % 4 == 0);
        next.buffer.push(LatentEntry::reduced(raster, 24, 3));
    }
    next.version = base.version + 1;
    next.cursor = base.cursor + 1 + appended as u64;
    next.event_digest = base.event_digest.rotate_left(9) ^ weight_salt;
    next.known_classes = vec![0, 1, 2, 3];
    next.pending.clear();
    next
}

/// Strategy producing the (base, evolution) knobs.
fn knobs() -> impl Strategy<Value = (u64, u64, usize, bool, u64, usize)> {
    (
        any::<u64>(),
        1u64..1000,
        0usize..6,
        any::<bool>(),
        any::<u64>(),
        0usize..4,
    )
}

proptest! {
    /// The reconstruction guarantee: between → encode → decode → apply
    /// reproduces the target checkpoint bit-identically.
    #[test]
    fn delta_apply_reconstructs_the_target_bit_identically(k in knobs()) {
        let base = build_base(k.0, k.1, k.2, k.3);
        let next = evolve(&base, k.4, k.5);
        let delta = CheckpointDelta::between(&base, &next).unwrap();
        let decoded = CheckpointDelta::from_bytes(&delta.to_bytes()).unwrap();
        let rebuilt = decoded.apply(&base).unwrap();
        prop_assert_eq!(rebuilt.to_bytes(), next.to_bytes());
    }

    /// The strictness guarantee: flipping any single byte anywhere in
    /// the delta encoding — header, versions, weight planes, the kept
    /// bitmap, tail entries or either CRC — must fail the decode. A
    /// follower can never apply corrupted bytes.
    #[test]
    fn corrupt_one_byte_never_applies(
        k in knobs(),
        position in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let base = build_base(k.0, k.1, k.2, k.3);
        let next = evolve(&base, k.4, k.5);
        let bytes = CheckpointDelta::between(&base, &next).unwrap().to_bytes();
        let index = (position % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[index] ^= flip;
        prop_assert!(
            CheckpointDelta::from_bytes(&corrupt).is_err(),
            "flipping byte {} with {:#04x} was accepted", index, flip
        );
    }

    /// The anchoring guarantee: a delta only applies to the exact base
    /// version it was cut against.
    #[test]
    fn apply_to_any_other_version_is_rejected(k in knobs(), skew in 1u64..5) {
        let base = build_base(k.0, k.1, k.2, k.3);
        let next = evolve(&base, k.4, k.5);
        let delta = CheckpointDelta::between(&base, &next).unwrap();
        let mut wrong = base.clone();
        wrong.version = base.version.wrapping_add(skew);
        match delta.apply(&wrong) {
            Err(OnlineError::DeltaMismatch { expected_base, got_base }) => {
                // `expected_base` reports what the applying replica
                // holds; `got_base` is the base the delta was cut on.
                prop_assert_eq!(expected_base, wrong.version);
                prop_assert_eq!(got_base, base.version);
            }
            other => prop_assert!(false, "expected DeltaMismatch, got {:?}", other.map(|_| ())),
        }
    }
}

/// Out-of-order application across a real chain: skipping a link must
/// be rejected; replaying the chain in order converges bit-exactly.
#[test]
fn out_of_order_chain_application_is_rejected() {
    let v1 = build_base(0xD17A, 10, 4, false);
    let v2 = evolve(&v1, 0xBEEF, 2);
    let v3 = evolve(&v2, 0xF00D, 1);
    let d12 = CheckpointDelta::between(&v1, &v2).unwrap();
    let d23 = CheckpointDelta::between(&v2, &v3).unwrap();

    // Skipping d12: d23 names v2 as its base, v1 is not it.
    assert!(matches!(
        d23.apply(&v1),
        Err(OnlineError::DeltaMismatch { .. })
    ));
    // Replaying d12 onto its own output is equally out of order.
    let at_v2 = d12.apply(&v1).unwrap();
    assert!(matches!(
        d12.apply(&at_v2),
        Err(OnlineError::DeltaMismatch { .. })
    ));
    // In order, the chain lands exactly on v3.
    assert_eq!(d23.apply(&at_v2).unwrap().to_bytes(), v3.to_bytes());
}
