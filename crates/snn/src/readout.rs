//! Leaky-integrator readout layer.
//!
//! The readout accumulates weighted spikes of the last hidden layer into
//! non-spiking, non-resetting membrane potentials; the class logits are the
//! mean membrane potential over time. Averaging (rather than summing) keeps
//! logits comparable across different timestep counts — essential here,
//! because Replay4NCL trains and runs the learning stages at a reduced T*.

use ncl_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::config::ReadoutConfig;
use crate::error::SnnError;

/// Leaky-integrator readout: `u[t] = beta·u[t-1] + Wᵀs[t] + b`, logits =
/// `mean_t u[t]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiReadout {
    /// Weights, `inputs x outputs` (input-major).
    w: Matrix,
    /// Bias per output.
    bias: Vec<f32>,
    config: ReadoutConfig,
}

impl LiReadout {
    /// Creates a readout with Xavier-initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] for zero sizes or invalid decay.
    pub fn new(
        inputs: usize,
        outputs: usize,
        config: ReadoutConfig,
        rng: &mut Rng,
    ) -> Result<Self, SnnError> {
        if inputs == 0 || outputs == 0 {
            return Err(SnnError::InvalidConfig {
                what: "readout size",
                detail: format!("inputs={inputs}, outputs={outputs} (both must be >= 1)"),
            });
        }
        config.validate()?;
        Ok(LiReadout {
            w: Matrix::xavier_uniform(inputs, outputs, rng),
            bias: vec![0.0; outputs],
            config,
        })
    }

    /// Number of pre-synaptic inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.w.rows()
    }

    /// Number of outputs (classes).
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.w.cols()
    }

    /// The readout configuration.
    #[must_use]
    pub fn config(&self) -> &ReadoutConfig {
        &self.config
    }

    /// Borrow of the weights (`inputs x outputs`).
    #[must_use]
    pub fn w(&self) -> &Matrix {
        &self.w
    }

    /// Mutable borrow of the weights.
    pub fn w_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Borrow of the biases.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable borrow of the biases.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Advances the readout one timestep: decays `u`, injects the weighted
    /// active spikes plus bias, and accumulates `u` into `logit_acc`.
    pub fn step(&self, active_in: &[usize], u: &mut [f32], logit_acc: &mut [f32]) {
        debug_assert_eq!(u.len(), self.outputs());
        debug_assert_eq!(logit_acc.len(), self.outputs());
        let beta = self.config.beta;
        for (uj, bj) in u.iter_mut().zip(self.bias.iter()) {
            *uj = beta * *uj + bj;
        }
        for &i in active_in {
            let row = self.w.row(i);
            for (uj, w) in u.iter_mut().zip(row.iter()) {
                *uj += w;
            }
        }
        for (acc, uj) in logit_acc.iter_mut().zip(u.iter()) {
            *acc += uj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn readout() -> LiReadout {
        let mut rng = Rng::seed_from_u64(2);
        LiReadout::new(4, 3, ReadoutConfig::default(), &mut rng).unwrap()
    }

    #[test]
    fn construction_and_shapes() {
        let r = readout();
        assert_eq!(r.inputs(), 4);
        assert_eq!(r.outputs(), 3);
        assert_eq!(r.bias().len(), 3);
        let mut rng = Rng::seed_from_u64(2);
        assert!(LiReadout::new(0, 3, ReadoutConfig::default(), &mut rng).is_err());
        assert!(LiReadout::new(4, 0, ReadoutConfig::default(), &mut rng).is_err());
        assert!(LiReadout::new(4, 3, ReadoutConfig { beta: 1.0 }, &mut rng).is_err());
    }

    #[test]
    fn step_decays_and_injects() {
        let mut r = readout();
        r.w_mut().set(1, 0, 2.0);
        r.bias_mut()[2] = 0.5;
        let beta = r.config().beta;
        let mut u = vec![1.0, 0.0, 0.0];
        let mut acc = vec![0.0; 3];
        r.step(&[1], &mut u, &mut acc);
        // u[0] = beta*1.0 + w[1][0]
        assert!((u[0] - (beta + r.w().get(1, 0))).abs() < 1e-6);
        // u[2] got the bias.
        assert!((u[2] - (0.5 + r.w().get(1, 2))).abs() < 1e-6);
        // Accumulator mirrors u after one step.
        assert_eq!(acc, u);
    }

    #[test]
    fn silent_input_only_decays() {
        let r = readout();
        let mut u = vec![1.0, -2.0, 0.5];
        let before = u.clone();
        let mut acc = vec![0.0; 3];
        r.step(&[], &mut u, &mut acc);
        for (after, b) in u.iter().zip(before.iter()) {
            assert!((after - r.config().beta * b).abs() < 1e-6);
        }
    }
}
