//! Adaptive threshold schedules (Alg. 1 of the paper).
//!
//! Replay4NCL compensates for the reduced spike counts at low timesteps by
//! modulating the firing threshold `V_thr` over time (Alg. 1, lines 10–17
//! during latent-replay generation and 25–30 during NCL training):
//!
//! * at every `adjust_interval`-th timestep, if spikes occur in the
//!   interval, the threshold is *raised* based on the mean spike time:
//!   `V_thr = base + coef·(T − t̄)` — early activity (small `t̄`) means
//!   plenty of drive, so the threshold backs off firing;
//! * at all other timesteps the threshold follows a sigmoidal decay
//!   `V_thr = 1 / (1 + exp(−rate·t))`, i.e. it drops toward ~0.5 so that
//!   the sparser spike streams of the reduced-timestep latent data can
//!   still drive the membrane across it.
//!
//! The schedule is derived from the spike timing of the *input* raster to
//! the learning stages (the latent/current activation data), so it is fully
//! deterministic given the data — see DESIGN.md §4.
//!
//! Alg. 1's pseudocode is ambiguous about *when* the sigmoidal decay
//! applies; both readings are implemented as [`AdaptiveVariant`]s:
//!
//! * [`AdaptiveVariant::IntervalHold`] (default) — the threshold is
//!   piecewise-constant per adjustment interval: intervals containing
//!   spikes hold the raised timing-based value, silent intervals hold the
//!   decayed value. This matches the paper's prose ("if the spikes occur
//!   during the defined interval, V_thr is increased; otherwise ...
//!   decreased") and keeps spiking activity near the pre-trained operating
//!   point.
//! * [`AdaptiveVariant::LiteralAlg1`] — the literal pseudocode: the
//!   timing-based value applies only at interval-boundary timesteps and
//!   every other timestep takes the decayed (~0.5) value. This floods the
//!   network with extra spikes; it is kept as an ablation
//!   (`ablation_knobs` bench).

use ncl_spike::{metrics, SpikeRaster};
use serde::{Deserialize, Serialize};

use crate::error::SnnError;

/// Which reading of Alg. 1's threshold-update loop to use (see the module
/// docs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdaptiveVariant {
    /// Piecewise-constant threshold per adjustment interval (default).
    #[default]
    IntervalHold,
    /// Literal pseudocode: raised value only at boundary timesteps,
    /// decayed value everywhere else.
    LiteralAlg1,
}

/// Parameters of the adaptive-threshold policy (defaults follow Alg. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePolicy {
    /// Interval between threshold adjustments (Alg. 1: 5).
    pub adjust_interval: usize,
    /// Baseline threshold (Alg. 1: 1.0).
    pub base: f32,
    /// Spike-timing coefficient (Alg. 1: 0.01).
    pub timing_coef: f32,
    /// Sigmoid decay rate (Alg. 1: 0.001).
    pub decay_rate: f32,
    /// Pseudocode reading (see [`AdaptiveVariant`]).
    pub variant: AdaptiveVariant,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            adjust_interval: 5,
            base: 1.0,
            timing_coef: 0.01,
            decay_rate: 0.001,
            variant: AdaptiveVariant::IntervalHold,
        }
    }
}

impl AdaptivePolicy {
    /// The literal-pseudocode variant of the default policy.
    #[must_use]
    pub fn literal() -> Self {
        AdaptivePolicy {
            variant: AdaptiveVariant::LiteralAlg1,
            ..AdaptivePolicy::default()
        }
    }
}

impl AdaptivePolicy {
    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SnnError> {
        if self.adjust_interval == 0 {
            return Err(SnnError::InvalidConfig {
                what: "adjust_interval",
                detail: "must be at least 1".into(),
            });
        }
        if self.base <= 0.0 {
            return Err(SnnError::InvalidConfig {
                what: "adaptive base threshold",
                detail: "must be positive".into(),
            });
        }
        if self.decay_rate < 0.0 {
            return Err(SnnError::InvalidConfig {
                what: "decay_rate",
                detail: "must be non-negative".into(),
            });
        }
        Ok(())
    }

    /// Threshold at an adjustment boundary given the interval's mean spike
    /// time, per Alg. 1 line 13 / 27.
    #[must_use]
    pub fn boundary_threshold(&self, total_steps: usize, mean_spike_time: f64) -> f32 {
        self.base + self.timing_coef * (total_steps as f32 - mean_spike_time as f32)
    }

    /// Sigmoidally-decayed threshold at timestep `t`, per Alg. 1 line
    /// 16 / 29.
    #[must_use]
    pub fn decayed_threshold(&self, t: usize) -> f32 {
        1.0 / (1.0 + (-self.decay_rate * t as f32).exp())
    }
}

/// A per-timestep threshold sequence used by one forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSchedule {
    values: Vec<f32>,
}

impl ThresholdSchedule {
    /// An empty schedule, for use as a reusable buffer with
    /// [`ThresholdSchedule::constant_into`] /
    /// [`ThresholdSchedule::adaptive_into`].
    #[must_use]
    pub fn empty() -> Self {
        ThresholdSchedule { values: Vec::new() }
    }

    /// A constant schedule (the pre-training / SpikingLR setting).
    #[must_use]
    pub fn constant(v_threshold: f32, steps: usize) -> Self {
        let mut s = ThresholdSchedule::empty();
        s.constant_into(v_threshold, steps);
        s
    }

    /// Rebuilds `self` as a constant schedule in place, reusing the
    /// allocation (the per-sample path of the training arenas).
    pub fn constant_into(&mut self, v_threshold: f32, steps: usize) {
        self.values.clear();
        self.values.resize(steps, v_threshold);
    }

    /// The Alg. 1 adaptive schedule derived from the spike timing of
    /// `input` (the data entering the learning stages).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the policy is invalid.
    pub fn adaptive(input: &SpikeRaster, policy: &AdaptivePolicy) -> Result<Self, SnnError> {
        let mut s = ThresholdSchedule::empty();
        s.adaptive_into(input, policy)?;
        Ok(s)
    }

    /// Rebuilds `self` as the Alg. 1 adaptive schedule in place, reusing
    /// the allocation. Produces exactly the values of
    /// [`ThresholdSchedule::adaptive`].
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if the policy is invalid.
    pub fn adaptive_into(
        &mut self,
        input: &SpikeRaster,
        policy: &AdaptivePolicy,
    ) -> Result<(), SnnError> {
        policy.validate()?;
        let steps = input.steps();
        let values = &mut self.values;
        values.clear();
        values.reserve(steps);
        let mut current = policy.base;
        for t in 0..steps {
            match policy.variant {
                AdaptiveVariant::IntervalHold => {
                    if t % policy.adjust_interval == 0 {
                        // New interval: pick its held value from the
                        // interval's spike timing.
                        let window_end = (t + policy.adjust_interval).min(steps);
                        current = match metrics::mean_spike_time(input, t, window_end) {
                            Some(mean_t) => policy.boundary_threshold(steps, mean_t),
                            None => policy.decayed_threshold(t),
                        };
                    }
                }
                AdaptiveVariant::LiteralAlg1 => {
                    if t % policy.adjust_interval == 0 {
                        let window_end = (t + policy.adjust_interval).min(steps);
                        current = match metrics::mean_spike_time(input, t, window_end) {
                            Some(mean_t) => policy.boundary_threshold(steps, mean_t),
                            None => policy.decayed_threshold(t),
                        };
                    } else {
                        current = policy.decayed_threshold(t);
                    }
                }
            }
            values.push(current);
        }
        Ok(())
    }

    /// Number of timesteps covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Threshold at timestep `t`; clamps to the last value if `t` runs past
    /// the schedule (robustness for mixed-length batches).
    #[must_use]
    pub fn value_at(&self, t: usize) -> f32 {
        if self.values.is_empty() {
            return 1.0;
        }
        self.values[t.min(self.values.len() - 1)]
    }

    /// Borrow of all values.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Mean threshold over the schedule (reporting/diagnostics).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f32>() / self.values.len() as f32
    }
}

/// How a forward/training pass determines its thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdMode {
    /// Fixed threshold at the layer's configured `v_threshold`.
    Constant,
    /// Alg. 1 adaptive schedule derived from each sample's input raster.
    Adaptive(AdaptivePolicy),
}

impl ThresholdMode {
    /// Builds the concrete schedule for one input raster under this mode,
    /// with `base` as the constant fallback threshold.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if an adaptive policy is
    /// invalid.
    pub fn schedule_for(
        &self,
        input: &SpikeRaster,
        base: f32,
    ) -> Result<ThresholdSchedule, SnnError> {
        let mut out = ThresholdSchedule::empty();
        self.schedule_into(input, base, &mut out)?;
        Ok(out)
    }

    /// In-place variant of [`ThresholdMode::schedule_for`]: rebuilds `out`
    /// for this raster, reusing its allocation (zero-allocation training
    /// hot path).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if an adaptive policy is
    /// invalid.
    pub fn schedule_into(
        &self,
        input: &SpikeRaster,
        base: f32,
        out: &mut ThresholdSchedule,
    ) -> Result<(), SnnError> {
        match self {
            ThresholdMode::Constant => {
                out.constant_into(base, input.steps());
                Ok(())
            }
            ThresholdMode::Adaptive(policy) => out.adaptive_into(input, policy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_alg1_constants() {
        let p = AdaptivePolicy::default();
        assert_eq!(p.adjust_interval, 5);
        assert_eq!(p.base, 1.0);
        assert_eq!(p.timing_coef, 0.01);
        assert_eq!(p.decay_rate, 0.001);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn policy_validation() {
        let p = AdaptivePolicy {
            adjust_interval: 0,
            ..AdaptivePolicy::default()
        };
        assert!(p.validate().is_err());
        let p = AdaptivePolicy {
            base: 0.0,
            ..AdaptivePolicy::default()
        };
        assert!(p.validate().is_err());
        let p = AdaptivePolicy {
            decay_rate: -0.1,
            ..AdaptivePolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn boundary_formula_matches_alg1() {
        let p = AdaptivePolicy::default();
        // V_thr = 1 + 0.01 * (40 - 20) = 1.2
        assert!((p.boundary_threshold(40, 20.0) - 1.2).abs() < 1e-6);
        // Early spikes raise the threshold more than late spikes.
        assert!(p.boundary_threshold(40, 5.0) > p.boundary_threshold(40, 35.0));
    }

    #[test]
    fn decay_formula_matches_alg1() {
        let p = AdaptivePolicy::default();
        // 1 / (1 + exp(0)) = 0.5 at t = 0.
        assert!((p.decayed_threshold(0) - 0.5).abs() < 1e-6);
        // Slowly rises with t but stays near 0.5 for t <= 100.
        let v100 = p.decayed_threshold(100);
        assert!(v100 > 0.5 && v100 < 0.53);
    }

    #[test]
    fn constant_schedule() {
        let s = ThresholdSchedule::constant(1.0, 10);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.value_at(0), 1.0);
        assert_eq!(s.value_at(999), 1.0); // clamps
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn interval_hold_schedule_is_piecewise_constant() {
        // Spikes only in the first interval.
        let mut r = SpikeRaster::new(4, 20);
        r.set(0, 1, true);
        r.set(1, 2, true);
        let p = AdaptivePolicy::default();
        let s = ThresholdSchedule::adaptive(&r, &p).unwrap();
        assert_eq!(s.len(), 20);
        // Interval [0,5) has spikes (mean time 1.5): the raised value holds
        // for all five steps.
        let raised = 1.0 + 0.01 * (20.0 - 1.5);
        for t in 0..5 {
            assert!((s.value_at(t) - raised).abs() < 1e-4, "t={t}");
        }
        // Interval [5,10) is silent: the decayed value (picked at t=5)
        // holds.
        for t in 5..10 {
            assert!(
                (s.value_at(t) - p.decayed_threshold(5)).abs() < 1e-6,
                "t={t}"
            );
        }
    }

    #[test]
    fn literal_variant_decays_between_boundaries() {
        let mut r = SpikeRaster::new(4, 20);
        r.set(0, 1, true);
        r.set(1, 2, true);
        let p = AdaptivePolicy::literal();
        let s = ThresholdSchedule::adaptive(&r, &p).unwrap();
        // t=0 is a boundary with spikes in [0,5): raised threshold.
        let mean_t = 1.5;
        assert!((s.value_at(0) - (1.0 + 0.01 * (20.0 - mean_t))).abs() < 1e-4);
        // t=1..4 follow the sigmoid decay (~0.5).
        assert!((s.value_at(1) - p.decayed_threshold(1)).abs() < 1e-6);
        // t=5 is a boundary with a silent window: decayed.
        assert!((s.value_at(5) - p.decayed_threshold(5)).abs() < 1e-6);
        // The literal variant fires more (lower mean threshold) than
        // interval-hold on spiking data.
        let hold = ThresholdSchedule::adaptive(&r, &AdaptivePolicy::default()).unwrap();
        assert!(s.mean() < hold.mean());
    }

    #[test]
    fn adaptive_on_silent_raster_is_all_decay() {
        let r = SpikeRaster::new(4, 12);
        let p = AdaptivePolicy::default();
        let s = ThresholdSchedule::adaptive(&r, &p).unwrap();
        // Interval-hold: each interval holds the decayed value picked at
        // its boundary.
        for t in 0..12 {
            let boundary = (t / p.adjust_interval) * p.adjust_interval;
            assert!((s.value_at(t) - p.decayed_threshold(boundary)).abs() < 1e-6);
        }
        // Mean is ~0.5: mostly-lowered threshold, the paper's compensation.
        assert!(s.mean() < 0.6);
        // The literal variant decays pointwise.
        let s = ThresholdSchedule::adaptive(&r, &AdaptivePolicy::literal()).unwrap();
        for t in 0..12 {
            assert!((s.value_at(t) - p.decayed_threshold(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn mode_builds_matching_schedule() {
        let r = SpikeRaster::new(2, 8);
        let s = ThresholdMode::Constant.schedule_for(&r, 0.9).unwrap();
        assert_eq!(s.value_at(3), 0.9);
        let s = ThresholdMode::Adaptive(AdaptivePolicy::default())
            .schedule_for(&r, 1.0)
            .unwrap();
        assert_eq!(s.len(), 8);
        let bad = AdaptivePolicy {
            adjust_interval: 0,
            ..AdaptivePolicy::default()
        };
        assert!(ThresholdMode::Adaptive(bad).schedule_for(&r, 1.0).is_err());
    }

    #[test]
    fn empty_schedule_value_defaults() {
        let s = ThresholdSchedule::constant(1.0, 0);
        assert!(s.is_empty());
        assert_eq!(s.value_at(0), 1.0);
        assert_eq!(s.mean(), 0.0);
    }
}
