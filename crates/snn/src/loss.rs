//! Softmax cross-entropy loss on the readout logits.

use ncl_tensor::ops;

use crate::error::SnnError;

/// Computes softmax cross-entropy against an integer target and its
/// gradient with respect to the logits (`p − onehot(target)`).
///
/// # Errors
///
/// Returns [`SnnError::ShapeMismatch`] if `target` is out of range or the
/// logits are empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), ncl_snn::SnnError> {
/// let (loss, grad) = ncl_snn::loss::cross_entropy(&[2.0, 0.0, 0.0], 0)?;
/// assert!(loss < 0.5); // confident and correct -> small loss
/// assert!(grad[0] < 0.0); // push the target logit up
/// assert!(grad[1] > 0.0 && grad[2] > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn cross_entropy(logits: &[f32], target: usize) -> Result<(f32, Vec<f32>), SnnError> {
    let mut grad = Vec::new();
    let loss = cross_entropy_into(logits, target, &mut grad)?;
    Ok((loss, grad))
}

/// In-place variant of [`cross_entropy`]: writes the logit gradient into
/// `grad` (cleared and resized, reusing its allocation) and returns the
/// loss. Produces exactly the values of [`cross_entropy`]; this is the
/// per-sample path of the zero-allocation training arenas.
///
/// # Errors
///
/// Same conditions as [`cross_entropy`].
pub fn cross_entropy_into(
    logits: &[f32],
    target: usize,
    grad: &mut Vec<f32>,
) -> Result<f32, SnnError> {
    if logits.is_empty() {
        return Err(SnnError::ShapeMismatch {
            op: "cross_entropy",
            expected: 1,
            actual: 0,
        });
    }
    if target >= logits.len() {
        return Err(SnnError::ShapeMismatch {
            op: "cross_entropy",
            expected: logits.len() - 1,
            actual: target,
        });
    }
    grad.clear();
    grad.resize(logits.len(), 0.0);
    ops::softmax(logits, grad).map_err(SnnError::from)?;
    let loss = -(grad[target].max(1e-12)).ln();
    grad[target] -= 1.0;
    Ok(loss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_n() {
        let (loss, grad) = cross_entropy(&[0.0; 4], 2).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        assert!((grad[2] - (0.25 - 1.0)).abs() < 1e-5);
        assert!((grad[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn grad_sums_to_zero() {
        let (_, grad) = cross_entropy(&[1.0, -2.0, 0.5, 3.0], 1).unwrap();
        let sum: f32 = grad.iter().sum();
        assert!(sum.abs() < 1e-5);
    }

    #[test]
    fn confident_correct_is_cheap_wrong_is_expensive() {
        let (right, _) = cross_entropy(&[5.0, 0.0], 0).unwrap();
        let (wrong, _) = cross_entropy(&[5.0, 0.0], 1).unwrap();
        assert!(right < 0.1);
        assert!(wrong > 2.0);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(cross_entropy(&[], 0).is_err());
        assert!(cross_entropy(&[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = [0.3f32, -0.7, 1.2];
        let target = 2;
        let (_, grad) = cross_entropy(&logits, target).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut plus = logits;
            plus[i] += eps;
            let mut minus = logits;
            minus[i] -= eps;
            let (lp, _) = cross_entropy(&plus, target).unwrap();
            let (lm, _) = cross_entropy(&minus, target).unwrap();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad[i]).abs() < 1e-3,
                "logit {i}: fd={fd}, grad={}",
                grad[i]
            );
        }
    }
}
