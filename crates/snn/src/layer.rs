//! Recurrent leaky integrate-and-fire layer.
//!
//! Weight layout convention: matrices are **input-major** (`pre x post`),
//! so row `i` holds the outgoing weights of pre-synaptic neuron `i`. This
//! makes both the event-driven forward pass (gather active rows) and the
//! event-driven weight-gradient update (scatter into active rows)
//! contiguous-memory operations.

use ncl_tensor::{Matrix, Rng};
use serde::{Deserialize, Serialize};

use crate::config::LifConfig;
use crate::error::SnnError;
use crate::surrogate::Surrogate;

/// A recurrent LIF layer: feed-forward weights from the previous stage,
/// optional recurrent weights from the layer's own previous spikes, a bias
/// current, and shared neuron parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecurrentLifLayer {
    /// Feed-forward weights, `inputs x neurons`.
    w_ff: Matrix,
    /// Recurrent weights, `neurons x neurons` (input-major), if enabled.
    w_rec: Option<Matrix>,
    /// Bias current per neuron.
    bias: Vec<f32>,
    lif: LifConfig,
    surrogate: Surrogate,
}

impl RecurrentLifLayer {
    /// Creates a layer with Xavier-initialized feed-forward weights and
    /// (optionally) small recurrent weights.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidConfig`] if sizes are zero or the LIF
    /// parameters are invalid.
    pub fn new(
        inputs: usize,
        neurons: usize,
        recurrent: bool,
        lif: LifConfig,
        rng: &mut Rng,
    ) -> Result<Self, SnnError> {
        if inputs == 0 || neurons == 0 {
            return Err(SnnError::InvalidConfig {
                what: "layer size",
                detail: format!("inputs={inputs}, neurons={neurons} (both must be >= 1)"),
            });
        }
        lif.validate()?;
        let w_ff = Matrix::xavier_uniform(inputs, neurons, rng);
        // Recurrent weights start an order of magnitude smaller so early
        // training is dominated by the feed-forward pathway (standard
        // practice for recurrent SNNs).
        let w_rec = recurrent.then(|| {
            let mut m = Matrix::xavier_uniform(neurons, neurons, rng);
            m.map_inplace(|v| v * 0.1);
            m
        });
        Ok(RecurrentLifLayer {
            w_ff,
            w_rec,
            bias: vec![0.0; neurons],
            lif,
            surrogate: Surrogate::new(lif.surrogate_kind, lif.surrogate_scale),
        })
    }

    /// Number of pre-synaptic inputs.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.w_ff.rows()
    }

    /// Number of neurons.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.w_ff.cols()
    }

    /// Whether the layer has recurrent weights.
    #[must_use]
    pub fn is_recurrent(&self) -> bool {
        self.w_rec.is_some()
    }

    /// The neuron parameters.
    #[must_use]
    pub fn lif(&self) -> &LifConfig {
        &self.lif
    }

    /// The surrogate-gradient function.
    #[must_use]
    pub fn surrogate(&self) -> &Surrogate {
        &self.surrogate
    }

    /// Borrow of the feed-forward weights (`inputs x neurons`).
    #[must_use]
    pub fn w_ff(&self) -> &Matrix {
        &self.w_ff
    }

    /// Mutable borrow of the feed-forward weights.
    pub fn w_ff_mut(&mut self) -> &mut Matrix {
        &mut self.w_ff
    }

    /// Borrow of the recurrent weights, if enabled.
    #[must_use]
    pub fn w_rec(&self) -> Option<&Matrix> {
        self.w_rec.as_ref()
    }

    /// Mutable borrow of the recurrent weights, if enabled.
    pub fn w_rec_mut(&mut self) -> Option<&mut Matrix> {
        self.w_rec.as_mut()
    }

    /// Borrow of the bias currents.
    #[must_use]
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Mutable borrow of the bias currents.
    pub fn bias_mut(&mut self) -> &mut [f32] {
        &mut self.bias
    }

    /// Computes the input current for one timestep, event-driven:
    /// `current[j] = bias[j] + Σ_{i ∈ active_in} w_ff[i][j]
    ///             + Σ_{k ∈ active_rec} w_rec[k][j]`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `current.len() != neurons` or any index is
    /// out of range (callers are internal and size-checked).
    pub fn input_current(&self, active_in: &[usize], active_rec: &[usize], current: &mut [f32]) {
        debug_assert_eq!(current.len(), self.neurons());
        current.copy_from_slice(&self.bias);
        for &i in active_in {
            let row = self.w_ff.row(i);
            for (c, w) in current.iter_mut().zip(row.iter()) {
                *c += w;
            }
        }
        if let Some(w_rec) = &self.w_rec {
            for &k in active_rec {
                let row = w_rec.row(k);
                for (c, w) in current.iter_mut().zip(row.iter()) {
                    *c += w;
                }
            }
        }
    }

    /// Advances the membrane one timestep in place and reports spikes.
    ///
    /// `v` holds post-reset potentials from the previous step and is
    /// updated to this step's **post-reset** potentials. `v_pre_out`, when
    /// provided, receives the **pre-reset** potentials (needed by BPTT for
    /// the surrogate derivative). Spiking neuron indices are appended to
    /// `spikes_out`.
    pub fn membrane_step(
        &self,
        current: &[f32],
        threshold: f32,
        v: &mut [f32],
        v_pre_out: Option<&mut [f32]>,
        spikes_out: &mut Vec<usize>,
    ) {
        debug_assert_eq!(current.len(), self.neurons());
        debug_assert_eq!(v.len(), self.neurons());
        let beta = self.lif.beta;
        spikes_out.clear();
        // Two zipped loops (with and without the pre-reset tap) instead of
        // one indexed loop with a per-element branch: identical per-element
        // arithmetic, no bounds checks in the hot path.
        match v_pre_out {
            Some(out) => {
                debug_assert_eq!(out.len(), self.neurons());
                for (j, ((vj, &cj), oj)) in v
                    .iter_mut()
                    .zip(current.iter())
                    .zip(out.iter_mut())
                    .enumerate()
                {
                    let v_pre = beta * *vj + cj;
                    *oj = v_pre;
                    if v_pre > threshold {
                        spikes_out.push(j);
                        *vj = 0.0; // hard reset
                    } else {
                        *vj = v_pre;
                    }
                }
            }
            None => {
                for (j, (vj, &cj)) in v.iter_mut().zip(current.iter()).enumerate() {
                    let v_pre = beta * *vj + cj;
                    if v_pre > threshold {
                        spikes_out.push(j);
                        *vj = 0.0; // hard reset
                    } else {
                        *vj = v_pre;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(inputs: usize, neurons: usize, recurrent: bool) -> RecurrentLifLayer {
        let mut rng = Rng::seed_from_u64(1);
        RecurrentLifLayer::new(inputs, neurons, recurrent, LifConfig::default(), &mut rng).unwrap()
    }

    #[test]
    fn construction_and_shapes() {
        let l = layer(10, 4, true);
        assert_eq!(l.inputs(), 10);
        assert_eq!(l.neurons(), 4);
        assert!(l.is_recurrent());
        assert_eq!(l.w_ff().rows(), 10);
        assert_eq!(l.w_ff().cols(), 4);
        assert_eq!(l.w_rec().unwrap().rows(), 4);
        assert_eq!(l.bias().len(), 4);
        let nf = layer(10, 4, false);
        assert!(!nf.is_recurrent());
        assert!(nf.w_rec().is_none());
    }

    #[test]
    fn invalid_sizes_rejected() {
        let mut rng = Rng::seed_from_u64(1);
        assert!(RecurrentLifLayer::new(0, 4, true, LifConfig::default(), &mut rng).is_err());
        assert!(RecurrentLifLayer::new(4, 0, true, LifConfig::default(), &mut rng).is_err());
        let bad = LifConfig {
            beta: 1.5,
            ..LifConfig::default()
        };
        assert!(RecurrentLifLayer::new(4, 4, true, bad, &mut rng).is_err());
    }

    #[test]
    fn input_current_is_event_driven_sum() {
        let mut l = layer(3, 2, false);
        l.w_ff_mut().set(0, 0, 1.0);
        l.w_ff_mut().set(0, 1, 2.0);
        l.w_ff_mut().set(2, 0, -0.5);
        l.w_ff_mut().set(2, 1, 0.25);
        l.bias_mut()[1] = 0.5;
        let mut current = vec![0.0; 2];
        l.input_current(&[0, 2], &[], &mut current);
        // Only active rows 0 and 2 contribute.
        let w = l.w_ff();
        assert!((current[0] - (w.get(0, 0) + w.get(2, 0))).abs() < 1e-6);
        assert!((current[1] - (0.5 + w.get(0, 1) + w.get(2, 1))).abs() < 1e-6);
    }

    #[test]
    fn recurrent_current_contributes() {
        let mut l = layer(2, 2, true);
        l.w_rec_mut().unwrap().set(1, 0, 3.0);
        let mut with_rec = vec![0.0; 2];
        l.input_current(&[], &[1], &mut with_rec);
        let mut without = vec![0.0; 2];
        l.input_current(&[], &[], &mut without);
        assert!((with_rec[0] - without[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn membrane_integrates_decays_and_resets() {
        let l = layer(1, 1, false);
        let beta = l.lif().beta;
        let mut v = vec![0.0f32];
        let mut spikes = Vec::new();

        // Sub-threshold accumulation with decay.
        l.membrane_step(&[0.4], 1.0, &mut v, None, &mut spikes);
        assert!(spikes.is_empty());
        assert!((v[0] - 0.4).abs() < 1e-6);
        l.membrane_step(&[0.4], 1.0, &mut v, None, &mut spikes);
        assert!((v[0] - (beta * 0.4 + 0.4)).abs() < 1e-6);

        // Crossing the threshold spikes and hard-resets.
        let mut v_pre = vec![0.0f32];
        l.membrane_step(&[2.0], 1.0, &mut v, Some(&mut v_pre), &mut spikes);
        assert_eq!(spikes, vec![0]);
        assert_eq!(v[0], 0.0, "hard reset to 0");
        assert!(v_pre[0] > 1.0, "pre-reset potential recorded");
    }

    #[test]
    fn threshold_controls_firing() {
        let l = layer(1, 1, false);
        let mut v = vec![0.0f32];
        let mut spikes = Vec::new();
        // Current 0.8 fires at threshold 0.5 but not at 1.0.
        l.membrane_step(&[0.8], 1.0, &mut v, None, &mut spikes);
        assert!(spikes.is_empty());
        v[0] = 0.0;
        l.membrane_step(&[0.8], 0.5, &mut v, None, &mut spikes);
        assert_eq!(spikes, vec![0]);
    }

    #[test]
    fn deterministic_construction() {
        let a = layer(8, 4, true);
        let b = layer(8, 4, true);
        assert_eq!(a, b);
    }
}
