//! Gradient-descent optimizers: SGD (with momentum) and Adam.
//!
//! Optimizer state is keyed by the fixed parameter-visitation order shared
//! between [`Network::visit_trainable_mut`] and
//! [`crate::bptt::Gradients::visit`]. One optimizer instance therefore
//! belongs to one training phase (one `from_stage`); constructing a fresh
//! optimizer when the trainable set changes is required and cheap.

use serde::{Deserialize, Serialize};

use crate::bptt::Gradients;
use crate::error::SnnError;
use crate::network::Network;

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

/// A first-order optimizer for SNN parameters.
///
/// # Example
///
/// ```
/// use ncl_snn::optimizer::Optimizer;
///
/// let mut opt = Optimizer::adam(1e-3);
/// assert!((opt.learning_rate() - 1e-3).abs() < 1e-9);
/// opt.set_learning_rate(1e-5); // the paper's eta_cl = eta_pre / 100
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Optimizer {
    /// Plain/momentum SGD.
    Sgd(Sgd),
    /// Adam.
    Adam(Adam),
}

impl Optimizer {
    /// Plain SGD.
    #[must_use]
    pub fn sgd(learning_rate: f32) -> Self {
        Optimizer::Sgd(Sgd {
            learning_rate,
            momentum: 0.0,
            velocity: Vec::new(),
        })
    }

    /// SGD with momentum.
    #[must_use]
    pub fn sgd_with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Optimizer::Sgd(Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        })
    }

    /// Adam with the standard hyper-parameters (β₁ = 0.9, β₂ = 0.999).
    #[must_use]
    pub fn adam(learning_rate: f32) -> Self {
        Optimizer::Adam(Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        })
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f32 {
        match self {
            Optimizer::Sgd(s) => s.learning_rate,
            Optimizer::Adam(a) => a.learning_rate,
        }
    }

    /// Updates the learning rate (used for the paper's `η_cl = η_pre/100`
    /// adjustment; momentum/moment state is preserved).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        match self {
            Optimizer::Sgd(s) => s.learning_rate = learning_rate,
            Optimizer::Adam(a) => a.learning_rate = learning_rate,
        }
    }

    /// Applies one update step of `grads` to the trainable parameters of
    /// `net` (those from `grads.from_stage`).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the gradient shapes do not
    /// match the network (or a previously-seen parameterization).
    pub fn step(&mut self, net: &mut Network, grads: &Gradients) -> Result<(), SnnError> {
        self.step_scaled(net, grads, 1.0)
    }

    /// Applies one update step of `scale · grads` (scale-at-apply). The
    /// trainer passes the raw batch-summed gradients with
    /// `scale = 1/batch`, which removes the O(params) `Gradients::scale`
    /// sweep per batch; the result is bit-identical to scaling first
    /// (`g[j] * scale` is rounded once, then used exactly as the
    /// pre-scaled value was).
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::ShapeMismatch`] if the gradient shapes do not
    /// match the network (or a previously-seen parameterization).
    pub fn step_scaled(
        &mut self,
        net: &mut Network,
        grads: &Gradients,
        scale: f32,
    ) -> Result<(), SnnError> {
        // Ordering contract: Gradients::visit and visit_trainable_mut use
        // the same documented slice order, so gradients and parameters can
        // be walked in lockstep without copying the gradients.
        let mut slices: Vec<&[f32]> = Vec::with_capacity(16);
        grads.visit(|s| slices.push(s));

        match self {
            Optimizer::Sgd(sgd) => {
                if sgd.velocity.is_empty() {
                    sgd.velocity = slices.iter().map(|s| vec![0.0; s.len()]).collect();
                }
                if sgd.velocity.len() != slices.len() {
                    return Err(SnnError::ShapeMismatch {
                        op: "Optimizer::step",
                        expected: sgd.velocity.len(),
                        actual: slices.len(),
                    });
                }
                let mut idx = 0;
                let mut failed = None;
                net.visit_trainable_mut(grads.from_stage, |params| {
                    if idx >= slices.len() || params.len() != slices[idx].len() {
                        failed = Some(idx);
                        idx += 1;
                        return;
                    }
                    let g = slices[idx];
                    let vel = &mut sgd.velocity[idx];
                    if sgd.momentum > 0.0 {
                        for ((p, gv), v) in params.iter_mut().zip(g.iter()).zip(vel.iter_mut()) {
                            *v = sgd.momentum * *v + gv * scale;
                            *p -= sgd.learning_rate * *v;
                        }
                    } else {
                        for (p, gv) in params.iter_mut().zip(g.iter()) {
                            *p -= sgd.learning_rate * (gv * scale);
                        }
                    }
                    idx += 1;
                })?;
                if let Some(i) = failed {
                    return Err(SnnError::ShapeMismatch {
                        op: "Optimizer::step",
                        expected: slices.get(i).map_or(0, |s| s.len()),
                        actual: i,
                    });
                }
                if idx != slices.len() {
                    return Err(SnnError::ShapeMismatch {
                        op: "Optimizer::step",
                        expected: slices.len(),
                        actual: idx,
                    });
                }
            }
            Optimizer::Adam(adam) => {
                if adam.m.is_empty() {
                    adam.m = slices.iter().map(|s| vec![0.0; s.len()]).collect();
                    adam.v = slices.iter().map(|s| vec![0.0; s.len()]).collect();
                }
                if adam.m.len() != slices.len() {
                    return Err(SnnError::ShapeMismatch {
                        op: "Optimizer::step",
                        expected: adam.m.len(),
                        actual: slices.len(),
                    });
                }
                adam.step_count += 1;
                let t = adam.step_count;
                let bc1 = 1.0 - adam.beta1.powi(t as i32);
                let bc2 = 1.0 - adam.beta2.powi(t as i32);
                let mut idx = 0;
                let mut failed = None;
                net.visit_trainable_mut(grads.from_stage, |params| {
                    if idx >= slices.len() || params.len() != slices[idx].len() {
                        failed = Some(idx);
                        idx += 1;
                        return;
                    }
                    let g = slices[idx];
                    let m = &mut adam.m[idx];
                    let v = &mut adam.v[idx];
                    // Lockstep zips: no bounds checks in the O(params)
                    // loop, so the (element-independent, rounding-
                    // preserving) update autovectorizes.
                    for (((p, &gr), mj), vj) in params
                        .iter_mut()
                        .zip(g.iter())
                        .zip(m.iter_mut())
                        .zip(v.iter_mut())
                    {
                        let gj = gr * scale;
                        *mj = adam.beta1 * *mj + (1.0 - adam.beta1) * gj;
                        *vj = adam.beta2 * *vj + (1.0 - adam.beta2) * gj * gj;
                        let m_hat = *mj / bc1;
                        let v_hat = *vj / bc2;
                        *p -= adam.learning_rate * m_hat / (v_hat.sqrt() + adam.epsilon);
                    }
                    idx += 1;
                })?;
                if let Some(i) = failed {
                    return Err(SnnError::ShapeMismatch {
                        op: "Optimizer::step",
                        expected: slices.get(i).map_or(0, |s| s.len()),
                        actual: i,
                    });
                }
                if idx != slices.len() {
                    return Err(SnnError::ShapeMismatch {
                        op: "Optimizer::step",
                        expected: slices.len(),
                        actual: idx,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bptt;
    use crate::config::NetworkConfig;
    use ncl_spike::SpikeRaster;
    use ncl_tensor::Rng;

    fn setup() -> (Network, SpikeRaster) {
        let net = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        let mut rng = Rng::seed_from_u64(3);
        let input = SpikeRaster::from_fn(6, 12, |_, _| rng.bernoulli(0.4));
        (net, input)
    }

    fn one_grad(net: &Network) -> (f32, bptt::Gradients) {
        let (_, input) = setup();
        let h = net.record_from(0, &input, None).unwrap();
        bptt::backward(net, &h, 1).unwrap()
    }

    #[test]
    fn learning_rate_roundtrip() {
        let mut o = Optimizer::adam(1e-3);
        o.set_learning_rate(1e-5);
        assert!((o.learning_rate() - 1e-5).abs() < 1e-12);
        let mut o = Optimizer::sgd(0.1);
        o.set_learning_rate(0.01);
        assert!((o.learning_rate() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let (mut net, _) = setup();
        let (_, grads) = one_grad(&net);
        let before = net.readout().w().as_slice().to_vec();
        let mut opt = Optimizer::sgd(0.1);
        opt.step(&mut net, &grads).unwrap();
        let after = net.readout().w().as_slice();
        for ((b, a), g) in before
            .iter()
            .zip(after.iter())
            .zip(grads.readout_w.as_slice())
        {
            assert!((a - (b - 0.1 * g)).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates() {
        let (mut net, _) = setup();
        let (_, grads) = one_grad(&net);
        let mut plain = net.clone();
        let mut opt_m = Optimizer::sgd_with_momentum(0.1, 0.9);
        let mut opt_p = Optimizer::sgd(0.1);
        // Two identical steps: momentum moves further on the second.
        opt_m.step(&mut net, &grads).unwrap();
        opt_m.step(&mut net, &grads).unwrap();
        opt_p.step(&mut plain, &grads).unwrap();
        opt_p.step(&mut plain, &grads).unwrap();
        let g0 = grads.readout_w.get(0, 0);
        if g0.abs() > 1e-9 {
            let moved_m = (net.readout().w().get(0, 0)).abs();
            let moved_p = (plain.readout().w().get(0, 0)).abs();
            // With momentum the second step adds 1.9x the gradient.
            assert_ne!(moved_m, moved_p);
        }
    }

    #[test]
    fn adam_reduces_loss_over_steps() {
        let (mut net, input) = setup();
        let mut opt = Optimizer::adam(5e-3);
        let target = 2usize;
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let h = net.record_from(0, &input, None).unwrap();
            let (l, g) = bptt::backward(&net, &h, target).unwrap();
            first.get_or_insert(l);
            last = l;
            opt.step(&mut net, &g).unwrap();
        }
        assert!(
            last < first.unwrap(),
            "Adam should reduce loss: {first:?} -> {last}"
        );
    }

    #[test]
    fn step_rejects_mismatched_gradients() {
        let (mut net, _) = setup();
        let other = Network::new(NetworkConfig::tiny(9, 3)).unwrap();
        let (_, input) = setup();
        let mut rng = Rng::seed_from_u64(5);
        let big_input = SpikeRaster::from_fn(9, 12, |_, _| rng.bernoulli(0.4));
        let h = other.record_from(0, &big_input, None).unwrap();
        let (_, grads) = bptt::backward(&other, &h, 0).unwrap();
        let mut opt = Optimizer::sgd(0.1);
        assert!(opt.step(&mut net, &grads).is_err());
        let _ = input;
    }

    #[test]
    fn optimizer_state_is_per_phase() {
        // Stepping with from_stage=0 then from_stage=1 grads must fail
        // (different slice counts) rather than silently corrupt state.
        let (mut net, input) = setup();
        let mut opt = Optimizer::adam(1e-3);
        let h = net.record_from(0, &input, None).unwrap();
        let (_, g0) = bptt::backward(&net, &h, 0).unwrap();
        opt.step(&mut net, &g0).unwrap();
        let act = net.activations_at(1, &input).unwrap();
        let h1 = net.record_from(1, &act, None).unwrap();
        let (_, g1) = bptt::backward(&net, &h1, 0).unwrap();
        assert!(opt.step(&mut net, &g1).is_err());
    }
}
