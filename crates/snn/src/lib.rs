//! Recurrent spiking-neural-network simulator with surrogate-gradient BPTT
//! training — the substrate the Replay4NCL methodology runs on.
//!
//! This crate reimplements, from scratch and CPU-only, everything the paper
//! obtained from snnTorch + CUDA:
//!
//! * [`layer::RecurrentLifLayer`] — event-driven recurrent LIF layers
//!   (hard reset, Eq. (1)–(2) of the paper);
//! * [`readout::LiReadout`] — leaky-integrator readout with mean-membrane
//!   logits;
//! * [`network::Network`] — the stage-indexed 700‑200‑100‑50‑20 stack of
//!   Fig. 6, with frozen/learning splitting for latent replay;
//! * [`surrogate::FastSigmoid`] — the fast-sigmoid surrogate gradient
//!   (Fig. 5);
//! * [`bptt`] — full backpropagation through time, validated against
//!   finite differences and single-sample overfitting tests;
//! * [`adaptive`] — the Alg. 1 adaptive-threshold schedules of Replay4NCL;
//! * [`optimizer`] / [`trainer`] — Adam/SGD and parallel mini-batch loops;
//! * [`serialize`] — compact binary model checkpoints.
//!
//! # Example: train a small SNN
//!
//! ```
//! use ncl_snn::{Network, NetworkConfig};
//! use ncl_snn::optimizer::Optimizer;
//! use ncl_snn::trainer::{self, TrainOptions};
//! use ncl_spike::SpikeRaster;
//! use ncl_tensor::Rng;
//!
//! # fn main() -> Result<(), ncl_snn::SnnError> {
//! let mut net = Network::new(NetworkConfig::tiny(8, 2))?;
//! let mut rng = Rng::seed_from_u64(1);
//! // Two trivially-separable classes of spike rasters.
//! let data: Vec<(SpikeRaster, u16)> = (0..8)
//!     .map(|i| {
//!         let label = (i % 2) as u16;
//!         let r = SpikeRaster::from_fn(8, 10, |n, _| (n < 4) == (label == 0));
//!         (r, label)
//!     })
//!     .collect();
//! let refs: Vec<(&SpikeRaster, u16)> = data.iter().map(|(r, l)| (r, *l)).collect();
//! let mut opt = Optimizer::adam(1e-2);
//! let mut report = None;
//! for _ in 0..3 {
//!     report = Some(trainer::train_epoch(
//!         &mut net, &refs, &mut opt, &TrainOptions::default(), &mut rng,
//!     )?);
//! }
//! assert!(report.unwrap().mean_loss.is_finite());
//! # Ok(())
//! # }
//! ```

pub mod adaptive;
pub mod bptt;
pub mod config;
pub mod error;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optimizer;
pub mod readout;
pub mod serialize;
pub mod surrogate;
pub mod trainer;

pub use adaptive::{AdaptivePolicy, ThresholdMode, ThresholdSchedule};
pub use bptt::{BpttScratch, Gradients};
pub use config::{LifConfig, NetworkConfig, ReadoutConfig};
pub use error::SnnError;
pub use network::{ForwardActivity, ForwardScratch, History, Network, StageActivity};
pub use trainer::{EpochReport, TrainOptions, TrainScratch};
