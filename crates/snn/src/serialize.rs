//! Binary model serialization.
//!
//! A dependency-light fixed binary format (little-endian, versioned magic)
//! so pre-trained models can be cached to disk between experiment runs —
//! the pre-training phase is by far the most expensive part of every
//! figure regeneration.

use bytes::{Buf, BufMut};

use crate::config::{LifConfig, NetworkConfig, ReadoutConfig};
use crate::error::SnnError;
use crate::network::Network;
use crate::surrogate::SurrogateKind;

/// Stable on-disk tag of a surrogate kind.
fn surrogate_kind_tag(kind: SurrogateKind) -> u8 {
    match kind {
        SurrogateKind::FastSigmoid => 0,
        SurrogateKind::ArcTan => 1,
        SurrogateKind::Triangular => 2,
        SurrogateKind::Gaussian => 3,
    }
}

/// Inverse of [`surrogate_kind_tag`].
fn surrogate_kind_from_tag(tag: u8) -> Result<SurrogateKind, SnnError> {
    match tag {
        0 => Ok(SurrogateKind::FastSigmoid),
        1 => Ok(SurrogateKind::ArcTan),
        2 => Ok(SurrogateKind::Triangular),
        3 => Ok(SurrogateKind::Gaussian),
        other => Err(SnnError::Deserialize {
            detail: format!("unknown surrogate kind tag {other}"),
        }),
    }
}

/// Magic + version prefix of the model format.
pub const MAGIC: &[u8; 8] = b"NCLSNN02";

/// Serializes a network (architecture + all weights) to bytes.
///
/// # Example
///
/// ```
/// use ncl_snn::{Network, NetworkConfig, serialize};
///
/// # fn main() -> Result<(), ncl_snn::SnnError> {
/// let net = Network::new(NetworkConfig::tiny(4, 2))?;
/// let bytes = serialize::to_bytes(&net);
/// let restored = serialize::from_bytes(&bytes)?;
/// assert_eq!(net, restored);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_bytes(net: &Network) -> Vec<u8> {
    let config = net.config();
    let mut buf = Vec::with_capacity(64 + net.trainable_params(0).unwrap_or(0) * 4);
    buf.put_slice(MAGIC);
    buf.put_u64_le(config.input_size as u64);
    buf.put_u32_le(config.hidden_sizes.len() as u32);
    for &h in &config.hidden_sizes {
        buf.put_u64_le(h as u64);
    }
    buf.put_u64_le(config.output_size as u64);
    buf.put_u8(u8::from(config.recurrent));
    buf.put_f32_le(config.lif.beta);
    buf.put_f32_le(config.lif.v_threshold);
    buf.put_f32_le(config.lif.surrogate_scale);
    buf.put_u8(surrogate_kind_tag(config.lif.surrogate_kind));
    buf.put_f32_le(config.readout.beta);
    buf.put_u64_le(config.seed);

    // Weights in the canonical visitation order (stage 0 = everything).
    net.visit_trainable(0, |slice| {
        for &v in slice.iter() {
            buf.put_f32_le(v);
        }
    })
    .expect("stage 0 is always valid");
    buf
}

/// Deserializes a network from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`SnnError::Deserialize`] for malformed/truncated bytes and
/// [`SnnError::InvalidConfig`] if the embedded configuration is invalid.
pub fn from_bytes(mut bytes: &[u8]) -> Result<Network, SnnError> {
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<(), SnnError> {
        if buf.remaining() < n {
            return Err(SnnError::Deserialize {
                detail: format!("truncated while reading {what}"),
            });
        }
        Ok(())
    };

    need(&bytes, 8, "magic")?;
    let mut magic = [0u8; 8];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnnError::Deserialize {
            detail: "bad magic (not an NCLSNN02 model)".into(),
        });
    }

    need(&bytes, 8, "input size")?;
    let input_size = bytes.get_u64_le() as usize;
    need(&bytes, 4, "hidden count")?;
    let n_hidden = bytes.get_u32_le() as usize;
    if n_hidden > 1024 {
        return Err(SnnError::Deserialize {
            detail: format!("implausible hidden layer count {n_hidden}"),
        });
    }
    let mut hidden_sizes = Vec::with_capacity(n_hidden);
    for _ in 0..n_hidden {
        need(&bytes, 8, "hidden size")?;
        hidden_sizes.push(bytes.get_u64_le() as usize);
    }
    need(&bytes, 8 + 1 + 17 + 8, "parameters")?;
    let output_size = bytes.get_u64_le() as usize;
    let recurrent = bytes.get_u8() != 0;
    let beta = bytes.get_f32_le();
    let v_threshold = bytes.get_f32_le();
    let surrogate_scale = bytes.get_f32_le();
    let surrogate_kind = surrogate_kind_from_tag(bytes.get_u8())?;
    let lif = LifConfig {
        beta,
        v_threshold,
        surrogate_scale,
        surrogate_kind,
    };
    let readout = ReadoutConfig {
        beta: bytes.get_f32_le(),
    };
    let seed = bytes.get_u64_le();

    let config = NetworkConfig {
        input_size,
        hidden_sizes,
        output_size,
        recurrent,
        lif,
        readout,
        seed,
    };
    let mut net = Network::new(config)?;
    let expected = net.trainable_params(0)?;
    if bytes.remaining() != expected * 4 {
        return Err(SnnError::Deserialize {
            detail: format!(
                "weight payload mismatch: expected {} bytes, found {}",
                expected * 4,
                bytes.remaining()
            ),
        });
    }
    net.visit_trainable_mut(0, |slice| {
        for v in slice.iter_mut() {
            *v = bytes.get_f32_le();
        }
    })?;
    Ok(net)
}

/// Writes a network checkpoint to `path` (the [`to_bytes`] format).
///
/// The write goes through a uniquely named sibling temp file plus
/// rename, so a reader (e.g. a serving process hot-loading the
/// checkpoint) never observes a half-written model, and concurrent
/// writers (the runtime engine's worker pool) never collide on a shared
/// temp name.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn to_file(net: &Network, path: &std::path::Path) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
        })?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(
        "{file_name}.{}.{}.tmp",
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, to_bytes(net))?;
    std::fs::rename(&tmp, path)
}

/// Reads a network checkpoint written by [`to_file`] (or any
/// [`to_bytes`] payload).
///
/// # Errors
///
/// Returns [`SnnError::Deserialize`] for I/O failures (wrapped with the
/// path) and for malformed bytes.
pub fn from_file(path: &std::path::Path) -> Result<Network, SnnError> {
    let bytes = std::fs::read(path).map_err(|e| SnnError::Deserialize {
        detail: format!("reading {}: {e}", path.display()),
    })?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    #[test]
    fn round_trip_exact() {
        let net = Network::new(NetworkConfig::tiny(7, 4)).unwrap();
        let bytes = to_bytes(&net);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(net, restored);
    }

    #[test]
    fn round_trip_after_training_changes() {
        let mut net = Network::new(NetworkConfig::tiny(7, 4)).unwrap();
        net.layer_mut(0).w_ff_mut().set(0, 0, 123.456);
        net.readout_mut().bias_mut()[2] = -9.0;
        let restored = from_bytes(&to_bytes(&net)).unwrap();
        assert_eq!(restored.layer(0).w_ff().get(0, 0), 123.456);
        assert_eq!(restored.readout().bias()[2], -9.0);
    }

    #[test]
    fn rejects_bad_magic() {
        let net = Network::new(NetworkConfig::tiny(4, 2)).unwrap();
        let mut bytes = to_bytes(&net);
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnnError::Deserialize { .. })
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let net = Network::new(NetworkConfig::tiny(4, 2)).unwrap();
        let bytes = to_bytes(&net);
        // Any strict prefix must fail cleanly, never panic.
        for cut in [0, 4, 8, 12, 20, 40, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let net = Network::new(NetworkConfig::tiny(4, 2)).unwrap();
        let mut bytes = to_bytes(&net);
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn file_round_trip_and_missing_file_error() {
        let net = Network::new(NetworkConfig::tiny(6, 3)).unwrap();
        let dir = std::env::temp_dir().join("ncl-snn-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        to_file(&net, &path).unwrap();
        assert_eq!(from_file(&path).unwrap(), net);
        // No temp sibling lingers after a successful write.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(leftovers, 0);
        let missing = dir.join("nope.bin");
        assert!(matches!(
            from_file(&missing),
            Err(SnnError::Deserialize { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_sibling_checkpoints_do_not_collide() {
        // Multi-dot stems ("model.v2") used to map onto one shared
        // "model.tmp", letting parallel writers install each other's
        // bytes. Unique temp names keep every checkpoint intact.
        let dir = std::env::temp_dir().join("ncl-snn-serialize-concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let nets: Vec<Network> = (0..4)
            .map(|i| {
                let mut c = NetworkConfig::tiny(5, 2);
                c.seed = 100 + i;
                Network::new(c).unwrap()
            })
            .collect();
        std::thread::scope(|scope| {
            for (i, net) in nets.iter().enumerate() {
                let path = dir.join(format!("model.v{i}.bin"));
                scope.spawn(move || {
                    for _ in 0..20 {
                        to_file(net, &path).unwrap();
                    }
                });
            }
        });
        for (i, net) in nets.iter().enumerate() {
            let path = dir.join(format!("model.v{i}.bin"));
            assert_eq!(&from_file(&path).unwrap(), net, "checkpoint {i} corrupted");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn paper_architecture_round_trips() {
        let net = Network::new(NetworkConfig::paper()).unwrap();
        let bytes = to_bytes(&net);
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(net, restored);
        // ~ (700*200 + 200*200 + 200 + ...) weights: format is compact.
        assert!(bytes.len() < 2 * 1024 * 1024);
    }
}
